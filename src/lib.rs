//! Umbrella crate for the *Snapshot Semantics for Temporal Multiset
//! Relations* reproduction (Dignös, Glavic, Niu, Böhlen, Gamper — PVLDB
//! 12(6), 2019).
//!
//! Re-exports every layer of the system so examples and integration tests
//! can use a single dependency:
//!
//! * [`timeline`] — time domains and interval algebra,
//! * [`semiring`] — the K-relation annotation framework,
//! * [`snapshot_core`] — temporal K-elements, K-coalescing, period semirings,
//!   snapshot/period K-relations (the paper's abstract + logical models),
//! * [`storage`] — values, rows, schemas, period relations, catalog,
//! * [`index`] — sweep-line interval indexes (endpoint event lists,
//!   interval trees, coalescing accelerators) over stored period tables,
//! * [`algebra`] — logical plans and scalar expressions,
//! * [`engine`] — the embedded multiset execution engine,
//! * [`sql`] — the SQL dialect with `SEQ VT (...)` snapshot blocks (plus
//!   `AS OF`/`BETWEEN` windows) and temporal DDL/DML,
//! * [`rewrite`] — `PERIODENC` and the `REWR` rewriting scheme,
//! * [`wal`] — the durability subsystem (binary codec, write-ahead log,
//!   catalog checkpoints, crash recovery, SQL dumps),
//! * [`txn`] — the MVCC concurrency subsystem (copy-on-write catalog
//!   snapshots, snapshot-isolation transactions, the transaction manager
//!   with its first-committer-wins commit path),
//! * [`session`] — the statement-level database subsystem (`Database`,
//!   `SharedDatabase`, `Session::execute` with `BEGIN`/`COMMIT`/
//!   `ROLLBACK`; durable when opened on a database directory),
//! * [`server`] — the network subsystem: a threaded TCP server speaking a
//!   length-prefixed CRC32-framed binary protocol, the `Client` library
//!   type, and the `snapshot_server` / `snapshot_db` binaries,
//! * [`baseline`] — comparator implementations (point-wise oracle, ATSQL
//!   interval preservation, alignment-based native evaluation),
//! * [`datagen`] — synthetic Employees / TPC-BiH-style datasets.

pub use algebra;
pub use baseline;
pub use datagen;
pub use engine;
pub use index;
pub use rewrite;
pub use semiring;
pub use snapshot_core;
pub use snapshot_server as server;
pub use snapshot_session as session;
pub use snapshot_txn as txn;
pub use snapshot_wal as wal;
pub use sql;
pub use storage;
pub use timeline;
