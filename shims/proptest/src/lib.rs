//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with `prop_map`, range and
//! tuple strategies, [`Just`](strategy::Just), [`prop_oneof!`], and the
//! `collection::{vec, btree_map, btree_set}` strategies.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministically seeded cases (seeded from the test's name,
//! so failures are reproducible run-to-run).

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Object-safe strategy, used by [`Union`] (`prop_oneof!`).
    pub trait DynStrategy<V> {
        /// Draws one value.
        fn dyn_generate(&self, rng: &mut StdRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice between heterogeneous strategies with one value type
    /// (the result of `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        /// A union of the given arms; panics on an empty list.
        pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].dyn_generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};

    /// Number-of-elements specification (`usize` or a `usize` range).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet` (size is an upper bound: duplicates collapse).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`btree_set`] strategy.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` (size is an upper bound: key clashes collapse).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// The [`btree_map`] strategy.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test RNG, seeded from the test's name.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs, platforms, and compilers.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

pub mod prelude {
    //! The conventional `use proptest::prelude::*` import surface.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..100, v in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one `fn` item per recursion step.
/// The argument list is captured as a token tree and re-parsed by
/// [`__proptest_bind!`], because `expr` fragments may not be followed by `)`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $crate::__proptest_bind! { __rng; $($args)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds `name in strategy` args.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = ($strat).generate(&mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = ($strat).generate(&mut $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}

/// `assert!` under a property test (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::strategy::DynStrategy<_>>),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = i64> {
        (0i64..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(x in 0i64..10, e in evens(), v in crate::collection::vec(0u64..4, 0..6)) {
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(e % 2, 0);
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&u| u < 4));
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(-1i64), 0i64..5]) {
            prop_assert!(v == -1 || (0i64..5).contains(&v));
        }

        #[test]
        fn tuples(p in (0i64..3, 0u64..2, 1i64..4)) {
            prop_assert!(p.0 < 3 && p.1 < 2 && p.2 >= 1);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let a: Vec<u64> = {
            let mut r = crate::test_rng("x");
            (0..5).map(|_| r.gen_range(0..1000u64)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::test_rng("x");
            (0..5).map(|_| r.gen_range(0..1000u64)).collect()
        };
        assert_eq!(a, b);
    }
}
