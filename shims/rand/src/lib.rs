//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides exactly the API surface the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), [`Rng::gen_range`] over
//! integer and float ranges, and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded via splitmix64 — high-quality enough for synthetic
//! data generation, and stable across runs and platforms.

/// Low-level entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value in the given range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A type with a uniform sampler over a bounded range.
///
/// Mirroring real rand's structure matters for type inference: a single
/// blanket `SampleRange` impl per range shape lets `Range<{integer}>` force
/// the output type (e.g. `i64 + rng.gen_range(1..120)` infers `i64`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Maps 64 random bits to `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, as the real rand crate does.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty gen_range");
                let v = (rng.next_u64() as u128) % (span as u128);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty gen_range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 (the shim's stand-in for
    /// `rand::rngs::StdRng`). Deterministic and platform-independent.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<i64> = (0..20).map(|_| c.gen_range(0..1_000_000i64)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<i64> = (0..20).map(|_| d.gen_range(0..1_000_000i64)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(5..10i64);
            assert!((5..10).contains(&v));
            let v = r.gen_range(3..=5u64);
            assert!((3..=5).contains(&v));
            let f = r.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let u = r.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
