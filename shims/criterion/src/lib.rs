//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], group configuration (sample size, warm-up
//! and measurement time, throughput), [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock sampling: after a warm-up period, each
//! sample runs a batch of iterations sized so one sample lasts roughly
//! `measurement_time / sample_size`; the per-iteration mean, median, and
//! min/max over the samples are printed in a criterion-like format. There
//! are no statistical refinements, plots, or baselines — just honest,
//! reproducible timings for relative comparisons.

use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is only a parameter (used inside a named group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to the bench closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `f`, running it repeatedly; called once per bench target.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_count as f64;
        self.iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Summary statistics of one bench target, in seconds per iteration.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full bench id (`group/function/parameter`).
    pub id: String,
    /// Minimum over samples.
    pub min: f64,
    /// Mean over samples.
    pub mean: f64,
    /// Median over samples.
    pub median: f64,
    /// Maximum over samples.
    pub max: f64,
}

fn summarize(id: String, samples: &[Duration]) -> Summary {
    let mut secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
    secs.sort_by(f64::total_cmp);
    let mean = secs.iter().sum::<f64>() / secs.len().max(1) as f64;
    Summary {
        id,
        min: secs.first().copied().unwrap_or(0.0),
        mean,
        median: secs.get(secs.len() / 2).copied().unwrap_or(0.0),
        max: secs.last().copied().unwrap_or(0.0),
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// A named group of related bench targets with shared configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per target.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per target.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent targets with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_count,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut b, input);
        self.report(id, &b);
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_count,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        self.report(id, &b);
        self
    }

    fn report(&mut self, id: BenchmarkId, b: &Bencher) {
        let full = format!("{}/{}", self.name, id.name);
        let s = summarize(full, &b.samples);
        let mut line = format!(
            "{:<56} time: [{} {} {}]",
            s.id,
            format_duration(s.min),
            format_duration(s.median),
            format_duration(s.max),
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let eps = n as f64 / s.median.max(1e-12);
            line.push_str(&format!("  thrpt: {eps:.0} elem/s"));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let bps = n as f64 / s.median.max(1e-12);
            line.push_str(&format!("  thrpt: {bps:.0} B/s"));
        }
        println!("{line}");
        self.criterion.summaries.push(s);
    }

    /// Ends the group (separator line, matching criterion's output rhythm).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    summaries: Vec<Summary>,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_count: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from(""), f);
        self
    }

    /// All summaries recorded so far (used by benches that emit JSON
    /// reports).
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_produces_summary() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("f", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
            g.finish();
        }
        assert_eq!(c.summaries().len(), 1);
        let s = &c.summaries()[0];
        assert_eq!(s.id, "g/f/10");
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(2.0).ends_with(" s"));
        assert!(format_duration(2e-3).ends_with(" ms"));
        assert!(format_duration(2e-6).ends_with(" µs"));
        assert!(format_duration(2e-9).ends_with(" ns"));
    }
}
