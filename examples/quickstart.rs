//! Quickstart: load a period table, run a snapshot query, print the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use snapshot_semantics::engine::Engine;
use snapshot_semantics::rewrite::SnapshotCompiler;
use snapshot_semantics::sql::{bind_statement, parse_statement};
use snapshot_semantics::storage::{row, Catalog, Schema, SqlType, Table};
use snapshot_semantics::timeline::TimeDomain;

fn main() -> Result<(), String> {
    // 1. A period table: rooms and who reserved them, hour by hour.
    //    The period columns `ts`/`te` are declared once, on the table.
    let schema = Schema::of(&[
        ("room", SqlType::Str),
        ("who", SqlType::Str),
        ("ts", SqlType::Int),
        ("te", SqlType::Int),
    ]);
    let mut reservations = Table::with_period(schema, 2, 3);
    reservations.push(row!["blue", "ada", 9, 12]);
    reservations.push(row!["blue", "bob", 11, 14]); // overlaps ada's booking!
    reservations.push(row!["green", "cyd", 10, 11]);
    reservations.push(row!["blue", "ada", 15, 17]);

    let mut catalog = Catalog::new();
    catalog.register("reservations", reservations);

    // 2. A snapshot query: how many reservations are active per room, at
    //    every moment of the day? `SEQ VT (...)` switches the query to
    //    snapshot semantics; the period columns are managed by the system.
    let sql = "SEQ VT (SELECT room, count(*) AS active FROM reservations GROUP BY room)";

    // 3. Parse, bind, rewrite (the paper's REWR), execute.
    let domain = TimeDomain::new(8, 18); // business hours
    let stmt = parse_statement(sql)?;
    let bound = bind_statement(&stmt, &catalog)?;
    let plan = SnapshotCompiler::new(domain).compile_statement(&bound, &catalog)?;
    let result = Engine::new().execute(&plan, &catalog)?;

    println!("query: {sql}\n");
    println!("{}", result.canonicalized().to_pretty_string());
    println!("note the row (blue, 2, [11,12)): the double-booking interval.");
    Ok(())
}
