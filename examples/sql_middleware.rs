//! The middleware view: what `REWR` actually does to your SQL.
//!
//! Shows, for a few `SEQ VT` queries, the bound snapshot plan, the
//! rewritten executable plan (Figure 4 + Section 9 optimizations), and the
//! result — the full journey a query takes through the system.
//!
//! ```text
//! cargo run --example sql_middleware
//! ```

use snapshot_semantics::engine::{Engine, ExecStats};
use snapshot_semantics::rewrite::{RewriteOptions, SnapshotCompiler};
use snapshot_semantics::sql::{bind_statement, parse_statement, BoundStatement};
use snapshot_semantics::storage::{row, Catalog, Schema, SqlType, Table};
use snapshot_semantics::timeline::TimeDomain;

fn main() -> Result<(), String> {
    let works = Schema::of(&[
        ("name", SqlType::Str),
        ("skill", SqlType::Str),
        ("ts", SqlType::Int),
        ("te", SqlType::Int),
    ]);
    let mut w = Table::with_period(works, 2, 3);
    w.push(row!["Ann", "SP", 3, 10]);
    w.push(row!["Joe", "NS", 8, 16]);
    w.push(row!["Sam", "SP", 8, 16]);
    w.push(row!["Ann", "SP", 18, 20]);
    let mut catalog = Catalog::new();
    catalog.register("works", w);
    let domain = TimeDomain::new(0, 24);

    let queries = [
        "SEQ VT (SELECT name FROM works WHERE skill = 'SP')",
        "SEQ VT (SELECT skill, count(*) AS cnt FROM works GROUP BY skill)",
        "SEQ VT (SELECT w1.name, w2.name AS colleague FROM works w1 \
         JOIN works w2 ON w1.skill = w2.skill WHERE w1.name <> w2.name)",
    ];

    for sql in queries {
        println!("================================================================");
        println!("SQL: {sql}\n");
        let stmt = parse_statement(sql)?;
        let bound = bind_statement(&stmt, &catalog)?;
        let BoundStatement::Snapshot { plan, .. } = &bound else {
            unreachable!()
        };
        println!("bound snapshot plan (period columns hidden from the query):");
        println!("{}", indent(&plan.explain()));

        let optimized = SnapshotCompiler::new(domain).compile_statement(&bound, &catalog)?;
        println!("REWR, optimized (single final coalesce, fused operators):");
        println!("{}", indent(&optimized.explain()));

        let naive = SnapshotCompiler::with_options(
            domain,
            RewriteOptions {
                final_coalesce_only: false,
                fused_split: false,
                ..RewriteOptions::default()
            },
        )
        .compile_statement(&bound, &catalog)?;
        println!("REWR, literal Figure 4 (coalesce after every operator):");
        println!("{}", indent(&naive.explain()));

        let mut stats = ExecStats::default();
        let out = Engine::new().execute_with_stats(&optimized, &catalog, &mut stats)?;
        println!("result ({} rows):", out.len());
        println!("{}", indent(&out.canonicalized().to_pretty_string()));
        println!("operator row counts:");
        for (op, (calls, rows)) in stats.iter() {
            println!("    {op:<18} calls={calls:<3} rows_out={rows}");
        }
        println!();
    }
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
