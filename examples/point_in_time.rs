//! Point-in-time queries over the temporal index subsystem.
//!
//! ```text
//! cargo run --example point_in_time
//! ```
//!
//! Builds a small staffing database, registers table indexes, and then:
//! 1. answers "who is on duty at hour t?" via the indexed timeslice,
//! 2. runs a temporal join through the indexed endpoint sweep,
//! 3. shows the engine falling back to the naive path after a mutation.

use snapshot_semantics::engine::{Engine, ExecStats};
use snapshot_semantics::index::IndexCatalog;
use snapshot_semantics::rewrite::SnapshotCompiler;
use snapshot_semantics::sql::{bind_statement, parse_statement, BoundStatement};
use snapshot_semantics::storage::{row, Catalog, Schema, SqlType, Table};
use snapshot_semantics::timeline::TimeDomain;

fn main() -> Result<(), String> {
    // The paper's running example: who works with which skill, when.
    let schema = Schema::of(&[
        ("name", SqlType::Str),
        ("skill", SqlType::Str),
        ("ts", SqlType::Int),
        ("te", SqlType::Int),
    ]);
    let mut works = Table::with_period(schema.clone(), 2, 3);
    works.push(row!["Ann", "SP", 3, 10]);
    works.push(row!["Joe", "NS", 8, 16]);
    works.push(row!["Sam", "SP", 8, 16]);
    works.push(row!["Ann", "SP", 18, 20]);
    let mut catalog = Catalog::new();
    catalog.register("works", works);

    // One-time index construction: endpoint event lists, an interval tree,
    // and the coalescing accelerator, per period table.
    let indexes = IndexCatalog::build_all(&catalog);
    println!(
        "indexed tables: {:?}\n",
        indexes.table_names().collect::<Vec<_>>()
    );

    let domain = TimeDomain::new(0, 24);
    let compiler = SnapshotCompiler::new(domain);

    // 1. Point-in-time: the snapshot of a snapshot query at one instant.
    //    compile_timeslice pushes the timeslice to the leaves (the paper's
    //    timeslice homomorphism), so each table access becomes an
    //    O(log n + k) interval-tree stab.
    let sql = "SEQ VT (SELECT name, skill FROM works)";
    let stmt = parse_statement(sql)?;
    let BoundStatement::Snapshot { plan, .. } = bind_statement(&stmt, &catalog)? else {
        unreachable!()
    };
    for at in [4, 9, 17] {
        let point_plan = compiler.compile_timeslice(&plan, &catalog, at)?;
        let mut stats = ExecStats::default();
        let out = Engine::new().execute_indexed_with_stats(
            &point_plan,
            &catalog,
            &indexes,
            &mut stats,
        )?;
        let names: Vec<String> = out.rows().iter().map(|r| r.get(0).to_string()).collect();
        println!(
            "on duty at {at:>2}: {:<20} (IndexTimeslice: {:?})",
            names.join(", "),
            stats.get("IndexTimeslice")
        );
    }

    // 2. A temporal self-join: pairs of people working at the same time
    //    (pure overlap join — no equality keys, so with both inputs indexed
    //    the engine picks the endpoint-sweep sort-merge join and reuses the
    //    prebuilt begin order).
    let join_sql = "SEQ VT (SELECT a.name, b.name \
                    FROM works a JOIN works b ON a.name < b.name)";
    let stmt = parse_statement(join_sql)?;
    let bound = bind_statement(&stmt, &catalog)?;
    let join_plan = compiler.compile_statement(&bound, &catalog)?;
    let mut stats = ExecStats::default();
    let out =
        Engine::new().execute_indexed_with_stats(&join_plan, &catalog, &indexes, &mut stats)?;
    println!(
        "\ntemporal self-join: {} rows (IndexSweepJoin: {:?}, IndexCoalesce: {:?})",
        out.len(),
        stats.get("IndexSweepJoin"),
        stats.get("IndexCoalesce"),
    );

    // 3. Mutate the table: the registered index is now stale, so the same
    //    call silently falls back to the naive operators — same answer.
    let mut works2 = catalog.get("works").unwrap().clone();
    works2.push(row!["Eve", "SP", 0, 2]);
    catalog.register("works", works2);
    let mut stats = ExecStats::default();
    let out2 =
        Engine::new().execute_indexed_with_stats(&join_plan, &catalog, &indexes, &mut stats)?;
    println!(
        "after mutation:     {} rows (IndexSweepJoin: {:?} — stale index, naive fallback)",
        out2.len(),
        stats.get("IndexSweepJoin"),
    );

    // Index maintenance: rebuild the stale entry and the fast path returns.
    let mut indexes = indexes;
    indexes.ensure("works", catalog.get("works").unwrap());
    let mut stats = ExecStats::default();
    let out3 =
        Engine::new().execute_indexed_with_stats(&join_plan, &catalog, &indexes, &mut stats)?;
    println!(
        "after ensure():     {} rows (IndexSweepJoin: {:?})",
        out3.len(),
        stats.get("IndexSweepJoin"),
    );
    assert_eq!(out2.canonicalized(), out3.canonicalized());
    Ok(())
}
