//! The session subsystem as a library: a whole database life cycle —
//! temporal DDL, DML, snapshot queries, windows, mutation, and index
//! maintenance — driven through `Session::execute` alone.
//!
//! ```text
//! cargo run --example sql_shell
//! ```
//!
//! (The same statements run interactively under
//! `cargo run --bin snapshot_db`, or scripted via `--script file.sql`.)

use snapshot_semantics::session::{Database, Session, SessionOptions};

fn main() -> Result<(), String> {
    // Cross-check every indexed query against the naive route: any index
    // that survived a mutation it shouldn't have would fail the run.
    let mut session = Session::with_options(
        Database::new(),
        SessionOptions {
            verify_indexed: true,
            ..SessionOptions::default()
        },
    );

    // 1. DDL + DML: build the paper's Figure 1a database through SQL.
    session.execute_script(
        "CREATE TABLE works (name TEXT, skill TEXT, ts INT, te INT) PERIOD (ts, te);
         INSERT INTO works VALUES
           ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
           ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);",
    )?;

    // 2. The Figure 1b query, over the live table.
    let q_onduty = "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
    let result = session.execute(q_onduty)?;
    println!("{q_onduty}\n{}", result.rows().unwrap().canonicalized());

    // 3. Windows: one snapshot (AS OF), and a restricted range (BETWEEN).
    for sql in [
        "SEQ VT AS OF 9 (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')",
        "SEQ VT BETWEEN 5 AND 12 (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')",
    ] {
        let result = session.execute(sql)?;
        println!("{sql}\n{}", result.rows().unwrap().canonicalized());
    }

    // 4. Mutate and re-query: the table version bumps, the index registry
    //    notices, and the append-only insert is folded into the index
    //    incrementally at the next query.
    session.execute("INSERT INTO works VALUES ('Eve', 'SP', 0, 6)")?;
    let result = session.execute(q_onduty)?;
    println!("after INSERT:\n{}", result.rows().unwrap().canonicalized());

    // A non-sequenced UPDATE is structural — the next query rebuilds.
    session.execute("UPDATE works SET te = 12 WHERE name = 'Sam'")?;
    let result = session.execute(q_onduty)?;
    println!("after UPDATE:\n{}", result.rows().unwrap().canonicalized());

    let stats = session.database().index_maintenance();
    println!(
        "index maintenance: {} full build(s), {} incremental extension(s)",
        stats.full_builds, stats.incremental_builds
    );
    assert_eq!((stats.full_builds, stats.incremental_builds), (2, 1));
    Ok(())
}
