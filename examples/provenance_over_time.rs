//! Beyond multisets: the period construction `K^T` works for *any*
//! semiring `K` (paper Sections 6 and 11). Here the same temporal query is
//! annotated three ways — multiplicities (`N`), lineage, and why-provenance
//! — answering not just *when* an answer holds, but *which facts support
//! it at which times*.
//!
//! ```text
//! cargo run --example provenance_over_time
//! ```

use snapshot_semantics::semiring::{Lineage, Natural, Why};
use snapshot_semantics::snapshot_core::PeriodRelation;
use snapshot_semantics::timeline::{Interval, TimeDomain};

fn main() {
    let domain = TimeDomain::new(0, 24);
    let iv = |b: i64, e: i64| Interval::new(b, e);

    // The works relation, annotated with multiplicities (multisets).
    let works_n: PeriodRelation<(&str, &str), Natural> = PeriodRelation::from_facts(
        domain,
        [
            (("Ann", "SP"), iv(3, 10), Natural(1)),
            (("Joe", "NS"), iv(8, 16), Natural(1)),
            (("Sam", "SP"), iv(8, 16), Natural(1)),
            (("Ann", "SP"), iv(18, 20), Natural(1)),
        ],
    );
    let skills_n = works_n.project(|t| t.1);
    println!("Π_skill(works) under N^T (how many, when):");
    for (skill, ann) in skills_n.iter() {
        println!("  {skill:3} ↦ {ann}");
    }

    // The same relation annotated with lineage: tuple ids 1..4.
    let works_lin: PeriodRelation<(&str, &str), Lineage> = PeriodRelation::from_facts(
        domain,
        [
            (("Ann", "SP"), iv(3, 10), Lineage::of(1)),
            (("Joe", "NS"), iv(8, 16), Lineage::of(2)),
            (("Sam", "SP"), iv(8, 16), Lineage::of(3)),
            (("Ann", "SP"), iv(18, 20), Lineage::of(4)),
        ],
    );
    let skills_lin = works_lin.project(|t| t.1);
    println!("\nΠ_skill(works) under Lineage^T (which base facts, when):");
    for (skill, ann) in skills_lin.iter() {
        println!("  {skill:3} ↦ {ann}");
    }

    // Why-provenance distinguishes *alternative* derivations per interval.
    let works_why: PeriodRelation<(&str, &str), Why> = PeriodRelation::from_facts(
        domain,
        [
            (("Ann", "SP"), iv(3, 10), Why::of(1)),
            (("Joe", "NS"), iv(8, 16), Why::of(2)),
            (("Sam", "SP"), iv(8, 16), Why::of(3)),
            (("Ann", "SP"), iv(18, 20), Why::of(4)),
        ],
    );
    let skills_why = works_why.project(|t| t.1);
    println!("\nΠ_skill(works) under Why^T (alternative witnesses, when):");
    for (skill, ann) in skills_why.iter() {
        println!("  {skill:3} ↦ {ann}");
    }

    println!(
        "\nReading the SP row: during [8,10) the answer SP has two\n\
         witnesses (Ann's fact t1 and Sam's fact t3) — remove either and\n\
         SP still holds; during [3,8) only t1 supports it. The timeslice\n\
         homomorphism guarantees these annotations agree with evaluating\n\
         the query snapshot-by-snapshot (Theorem 6.3)."
    );
}
