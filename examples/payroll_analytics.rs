//! HR analytics over the synthetic Employees dataset: the workload class
//! the paper's evaluation is built on (Section 10.1), at laptop scale.
//!
//! ```text
//! cargo run --release --example payroll_analytics
//! ```

use snapshot_semantics::engine::Engine;
use snapshot_semantics::rewrite::SnapshotCompiler;
use snapshot_semantics::sql::{bind_statement, parse_statement};

fn main() -> Result<(), String> {
    let scale = 0.001;
    let catalog = snapshot_semantics::datagen::employees::generate(scale, 42);
    let domain = snapshot_semantics::datagen::employees::domain();
    println!(
        "generated employees dataset at scale {scale}: {} rows total\n",
        catalog.total_rows()
    );

    let compiler = SnapshotCompiler::new(domain);
    let engine = Engine::new();
    let run = |title: &str, sql: &str, preview: usize| -> Result<(), String> {
        let stmt = parse_statement(sql)?;
        let bound = bind_statement(&stmt, &catalog)?;
        let plan = compiler.compile_statement(&bound, &catalog)?;
        let start = std::time::Instant::now();
        let out = engine.execute(&plan, &catalog)?.canonicalized();
        let secs = start.elapsed().as_secs_f64();
        println!("--- {title} ({} rows, {secs:.3}s)", out.len());
        for r in out.rows().iter().take(preview) {
            println!("    {r}");
        }
        if out.len() > preview {
            println!("    ... ({} more)", out.len() - preview);
        }
        println!();
        Ok(())
    };

    // How did each department's average salary evolve?
    run(
        "average salary per department over time (agg-1)",
        "SEQ VT (SELECT d.dept_no, avg(s.salary) AS avg_salary \
         FROM salaries s JOIN dept_emp d ON s.emp_no = d.emp_no \
         GROUP BY d.dept_no)",
        6,
    )?;

    // When was each department large? (gap-free counting per group)
    run(
        "departments with more than 21 employees, over time (agg-3)",
        "SEQ VT (SELECT count(*) AS big_depts FROM \
         (SELECT d.dept_no, count(*) AS c FROM dept_emp d GROUP BY d.dept_no) x \
         WHERE x.c > 21)",
        6,
    )?;

    // Which employees were, at some time, not managing anything?
    run(
        "non-manager head count history (diff-1, snapshot bag difference)",
        "SEQ VT (SELECT count(*) AS non_managers FROM \
         (SELECT emp_no FROM employees EXCEPT ALL SELECT emp_no FROM dept_manager) x)",
        6,
    )?;

    // Top earner story: who earned the departmental maximum, and when.
    run(
        "employees earning their department's top salary (agg-join)",
        "SEQ VT (SELECT e.name \
         FROM employees e \
         JOIN dept_emp de ON e.emp_no = de.emp_no \
         JOIN salaries s ON e.emp_no = s.emp_no \
         JOIN (SELECT d2.dept_no AS dept_no, max(s2.salary) AS msal \
               FROM salaries s2 JOIN dept_emp d2 ON s2.emp_no = d2.emp_no \
               GROUP BY d2.dept_no) m ON de.dept_no = m.dept_no \
         WHERE s.salary = m.msal)",
        6,
    )?;

    Ok(())
}
