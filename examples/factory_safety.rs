//! The paper's running example (Figure 1), end to end — including how the
//! native-style approaches get it wrong.
//!
//! A factory requires at least one specialized (SP) worker on duty at all
//! times, and machines need workers with matching skills. Two snapshot
//! queries check this: `Q_onduty` (snapshot aggregation) and `Q_skillreq`
//! (snapshot bag difference).
//!
//! ```text
//! cargo run --example factory_safety
//! ```

use snapshot_semantics::baseline::{BaselineKind, NativeEvaluator};
use snapshot_semantics::engine::Engine;
use snapshot_semantics::rewrite::SnapshotCompiler;
use snapshot_semantics::sql::{bind_statement, parse_statement, BoundStatement};
use snapshot_semantics::storage::{row, Catalog, Schema, SqlType, Table};
use snapshot_semantics::timeline::TimeDomain;

fn catalog() -> Catalog {
    let works = Schema::of(&[
        ("name", SqlType::Str),
        ("skill", SqlType::Str),
        ("ts", SqlType::Int),
        ("te", SqlType::Int),
    ]);
    let assign = Schema::of(&[
        ("mach", SqlType::Str),
        ("skill", SqlType::Str),
        ("ts", SqlType::Int),
        ("te", SqlType::Int),
    ]);
    let mut w = Table::with_period(works, 2, 3);
    w.push(row!["Ann", "SP", 3, 10]);
    w.push(row!["Joe", "NS", 8, 16]);
    w.push(row!["Sam", "SP", 8, 16]);
    w.push(row!["Ann", "SP", 18, 20]);
    let mut a = Table::with_period(assign, 2, 3);
    a.push(row!["M1", "SP", 3, 12]);
    a.push(row!["M2", "SP", 6, 14]);
    a.push(row!["M3", "NS", 3, 16]);
    let mut c = Catalog::new();
    c.register("works", w);
    c.register("assign", a);
    c
}

fn main() -> Result<(), String> {
    let catalog = catalog();
    let domain = TimeDomain::new(0, 24);
    let compiler = SnapshotCompiler::new(domain);
    let engine = Engine::new();

    // --- Q_onduty: SP workers on duty, at every hour (Figure 1b) --------
    let q_onduty = "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
    let stmt = parse_statement(q_onduty)?;
    let bound = bind_statement(&stmt, &catalog)?;
    let plan = compiler.compile_statement(&bound, &catalog)?;
    let ours = engine.execute(&plan, &catalog)?.canonicalized();
    println!("Q_onduty (our approach — matches Figure 1b, gaps included):\n");
    println!("{}", ours.to_pretty_string());

    // The same query through an alignment-style native implementation.
    let BoundStatement::Snapshot {
        plan: snapshot_plan,
        ..
    } = bind_statement(&parse_statement(q_onduty)?, &catalog)?
    else {
        unreachable!()
    };
    let native = NativeEvaluator::new(BaselineKind::Alignment)
        .eval(&snapshot_plan, &catalog)?
        .canonicalized();
    println!("Q_onduty (alignment-style native — the AG bug):\n");
    println!("{}", native.to_pretty_string());
    println!(
        "The native result has no rows for [0,3), [16,18), [20,24): the\n\
         safety violations (zero SP workers!) are silently invisible.\n"
    );

    // --- Q_skillreq: missing skills per moment (Figure 1c) --------------
    let q_skillreq = "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)";
    let stmt = parse_statement(q_skillreq)?;
    let bound = bind_statement(&stmt, &catalog)?;
    let plan = compiler.compile_statement(&bound, &catalog)?;
    let ours = engine.execute(&plan, &catalog)?.canonicalized();
    println!("Q_skillreq (our approach — matches Figure 1c):\n");
    println!("{}", ours.to_pretty_string());

    let BoundStatement::Snapshot {
        plan: snapshot_plan,
        ..
    } = bind_statement(&parse_statement(q_skillreq)?, &catalog)?
    else {
        unreachable!()
    };
    let native = NativeEvaluator::new(BaselineKind::Alignment)
        .eval(&snapshot_plan, &catalog)?
        .canonicalized();
    println!("Q_skillreq (native NOT-EXISTS difference — the BD bug):\n");
    println!("{}", native.to_pretty_string());
    println!(
        "The SP shortages during [6,8) and [10,12) are gone: because *an*\n\
         SP worker exists at those times, bag difference collapsed to set\n\
         difference and under-reported demand."
    );
    Ok(())
}
