//! Row production for the introspection virtual tables.
//!
//! The engine materializes `snapshot_stat_*` rows at execution time from
//! two kinds of state: process-global observability (the metrics
//! registry, statement statistics, slow-query log — all in `snapshot_obs`)
//! and the session-visible storage state the engine already holds (the
//! catalog snapshot and the index catalog). Schemas are fixed in
//! [`algebra::vtab`]; rows here must match them column for column.

use index::IndexCatalog;
use snapshot_obs as obs;
use storage::{Catalog, Row, Value};

fn opt_f64(v: Option<f64>) -> Value {
    v.map(Value::Double).unwrap_or(Value::Null)
}

fn opt_u64(v: Option<u64>) -> Value {
    v.map(|n| Value::Int(n as i64)).unwrap_or(Value::Null)
}

/// Materialize the rows of virtual table `table`.
///
/// `indexes` is the engine's index catalog when the session runs with
/// indexes enabled; without it, `snapshot_stat_indexes` is simply empty.
pub fn virtual_table_rows(
    table: &str,
    catalog: &Catalog,
    indexes: Option<&IndexCatalog>,
) -> Result<Vec<Row>, String> {
    match table {
        "snapshot_stat_metrics" => {
            obs::refresh_process_metrics();
            Ok(obs::registry()
                .snapshot()
                .into_iter()
                .map(|s| {
                    Row::new(vec![
                        Value::str(&s.name),
                        Value::str(s.kind),
                        opt_f64(s.value),
                        opt_u64(s.count),
                        opt_f64(s.sum),
                        opt_f64(s.p50),
                        opt_f64(s.p95),
                        opt_f64(s.p99),
                    ])
                })
                .collect())
        }
        "snapshot_stat_statements" => Ok(obs::statement_stats()
            .into_iter()
            .map(|s| {
                Row::new(vec![
                    Value::str(&s.fingerprint),
                    Value::Int(s.calls as i64),
                    Value::Int(s.rows as i64),
                    Value::Double(s.total_seconds * 1e3),
                    Value::Double(s.mean_seconds * 1e3),
                    opt_f64(s.p95_seconds.map(|p| p * 1e3)),
                ])
            })
            .collect()),
        "snapshot_stat_tables" => Ok(catalog
            .table_names()
            .map(|name| {
                let t = catalog.get(name).expect("listed table present");
                Row::new(vec![
                    Value::str(name),
                    Value::Int(t.len() as i64),
                    Value::Int(t.schema().arity() as i64),
                    Value::Bool(t.period().is_some()),
                    Value::Int(t.version() as i64),
                ])
            })
            .collect()),
        "snapshot_stat_indexes" => {
            let Some(reg) = indexes else {
                return Ok(Vec::new());
            };
            let maint = reg.maintenance();
            Ok(reg
                .table_names()
                .map(|name| {
                    let idx = reg.get(name).expect("listed index present");
                    let fresh = catalog.get(name).is_some_and(|t| idx.is_fresh(t));
                    Row::new(vec![
                        Value::str(name),
                        Value::Bool(fresh),
                        Value::Int(idx.version() as i64),
                        Value::Int(idx.events().len() as i64),
                        Value::Int(maint.full_builds as i64),
                        Value::Int(maint.incremental_builds as i64),
                    ])
                })
                .collect())
        }
        "snapshot_stat_activity" => Ok(obs::sessions_snapshot()
            .into_iter()
            .map(|s| {
                Row::new(vec![
                    Value::Int(s.session_id as i64),
                    Value::str(s.backend),
                    s.remote_addr
                        .as_deref()
                        .map(Value::str)
                        .unwrap_or(Value::Null),
                    Value::str(s.state),
                    Value::Bool(s.in_txn),
                    Value::str(s.phase.as_str()),
                    s.statement
                        .as_deref()
                        .map(Value::str)
                        .unwrap_or(Value::Null),
                    s.fingerprint
                        .as_deref()
                        .map(Value::str)
                        .unwrap_or(Value::Null),
                    opt_f64(s.elapsed_ms),
                    Value::Int(s.usage.rows_emitted as i64),
                ])
            })
            .collect()),
        "snapshot_stat_progress" => Ok(obs::sessions_snapshot()
            .into_iter()
            .map(|s| {
                Row::new(vec![
                    Value::Int(s.session_id as i64),
                    Value::str(s.phase.as_str()),
                    opt_f64(s.elapsed_ms),
                    Value::Int(s.usage.rows_scanned as i64),
                    Value::Int(s.usage.rows_emitted as i64),
                    Value::Int(s.usage.join_pairs as i64),
                    Value::Int(s.usage.index_probes as i64),
                    Value::Int(s.usage.bytes_materialized as i64),
                ])
            })
            .collect()),
        "snapshot_stat_transactions" => {
            // Name/value pairs over the registry's transaction-layer
            // counters. The engine has no session state, so this is the
            // process-wide view — which is also what a shared database's
            // sessions want to see.
            let reg = obs::registry();
            let counter = |name: &str| reg.get_counter(name).map_or(0, |c| c.get()) as f64;
            let stats = [
                ("snapshots", counter("txn_snapshots_total")),
                ("commits", counter("txn_commits_total")),
                ("conflicts", counter("txn_conflicts_total")),
                ("rollbacks", counter("txn_rollbacks_total")),
                ("retries", counter("session_retries_total")),
                ("retry_give_ups", counter("session_retry_give_ups_total")),
            ];
            Ok(stats
                .into_iter()
                .map(|(name, value)| Row::new(vec![Value::str(name), Value::Double(value)]))
                .collect())
        }
        "snapshot_stat_slow_queries" => Ok(obs::slow_queries()
            .into_iter()
            .map(|q| {
                Row::new(vec![
                    Value::Int(q.seq as i64),
                    Value::str(&q.statement),
                    Value::Double(q.total_ms),
                    Value::Double(q.parse_ms),
                    Value::Double(q.bind_ms),
                    Value::Double(q.rewrite_ms),
                    Value::Double(q.index_ms),
                    Value::Double(q.execute_ms),
                    Value::Double(q.commit_ms),
                    opt_u64(q.rows),
                    q.plan.as_deref().map(Value::str).unwrap_or(Value::Null),
                    q.cancelled
                        .as_deref()
                        .map(Value::str)
                        .unwrap_or(Value::Null),
                ])
            })
            .collect()),
        other => Err(format!("unknown virtual table '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::vtab;
    use storage::{Schema, SqlType, Table};

    fn catalog_with_table() -> Catalog {
        let mut catalog = Catalog::new();
        let mut t = Table::with_period(
            Schema::of(&[
                ("x", SqlType::Int),
                ("ts", SqlType::Int),
                ("te", SqlType::Int),
            ]),
            1,
            2,
        );
        t.push(Row::new(vec![Value::Int(1), Value::Int(0), Value::Int(5)]));
        catalog.register("t", t);
        catalog
    }

    #[test]
    fn rows_match_the_declared_schemas() {
        let catalog = catalog_with_table();
        let indexes = IndexCatalog::build_all(&catalog);
        for name in vtab::VIRTUAL_TABLES {
            let schema = vtab::virtual_table_schema(name).unwrap();
            let rows = virtual_table_rows(name, &catalog, Some(&indexes)).unwrap();
            for row in &rows {
                assert_eq!(row.arity(), schema.arity(), "arity of {name}");
            }
        }
        assert!(virtual_table_rows("nope", &catalog, None).is_err());
    }

    #[test]
    fn stat_tables_reports_the_catalog_snapshot() {
        let catalog = catalog_with_table();
        let rows = virtual_table_rows("snapshot_stat_tables", &catalog, None).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.values()[0], Value::str("t"));
        assert_eq!(r.values()[1], Value::Int(1));
        assert_eq!(r.values()[2], Value::Int(3));
        assert_eq!(r.values()[3], Value::Bool(true));
    }

    #[test]
    fn stat_indexes_reports_freshness() {
        let mut catalog = catalog_with_table();
        let indexes = IndexCatalog::build_all(&catalog);
        let rows = virtual_table_rows("snapshot_stat_indexes", &catalog, Some(&indexes)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values()[1], Value::Bool(true), "fresh after build");
        // Mutate the table: the registered index goes stale but stays listed.
        catalog.get_mut("t").unwrap().push(Row::new(vec![
            Value::Int(2),
            Value::Int(3),
            Value::Int(9),
        ]));
        let rows = virtual_table_rows("snapshot_stat_indexes", &catalog, Some(&indexes)).unwrap();
        assert_eq!(rows[0].values()[1], Value::Bool(false), "stale after write");
        // And without an index catalog the table is empty, not an error.
        assert!(virtual_table_rows("snapshot_stat_indexes", &catalog, None)
            .unwrap()
            .is_empty());
    }
}
