//! The split operator `N_G` (paper Definition 8.3).
//!
//! `N_G(R1, R2)` refines the validity intervals of `R1`'s rows at every
//! interval endpoint occurring in `R1 ∪ R2` within the same group `G`. After
//! splitting, any two intervals within a group are either identical or
//! disjoint — which is what lets snapshot aggregation and snapshot bag
//! difference be evaluated per-interval instead of per-time-point
//! (Sections 7–8).

use std::collections::HashMap;
use storage::{Row, Value};

/// Applies `N_G(left, right)`.
///
/// Both inputs carry the period in their last two columns; `group_cols`
/// are data-column positions meaningful in both schemas (union-compatible
/// inputs). Returns the refined version of `left`.
pub fn split_rows(left: &[Row], right: &[Row], group_cols: &[usize], arity: usize) -> Vec<Row> {
    let (ts, te) = (arity - 2, arity - 1);
    let key_of = |r: &Row| -> Vec<Value> { group_cols.iter().map(|&i| r.get(i).clone()).collect() };

    // Endpoint sets per group, from both inputs (EP_G of Def. 8.3).
    let mut endpoints: HashMap<Vec<Value>, Vec<i64>> = HashMap::new();
    for r in left.iter().chain(right.iter()) {
        let ep = endpoints.entry(key_of(r)).or_default();
        ep.push(r.int(ts));
        ep.push(r.int(te));
    }
    for ep in endpoints.values_mut() {
        ep.sort_unstable();
        ep.dedup();
    }

    let mut out = Vec::with_capacity(left.len());
    for r in left {
        let ep = &endpoints[&key_of(r)];
        let (b, e) = (r.int(ts), r.int(te));
        // Walk the endpoints inside (b, e) and cut the row at each.
        let mut cur = b;
        let start = ep.partition_point(|&p| p <= b);
        for &p in &ep[start..] {
            if p >= e {
                break;
            }
            out.push(with_period(r, ts, cur, p));
            cur = p;
        }
        out.push(with_period(r, ts, cur, e));
    }
    out
}

fn with_period(r: &Row, ts: usize, b: i64, e: i64) -> Row {
    let mut values = r.values().to_vec();
    values[ts] = Value::Int(b);
    values[ts + 1] = Value::Int(e);
    Row::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::row;

    #[test]
    fn splits_at_partner_endpoints() {
        // left: x over [0,10); right: x over [3,7) → left splits at 3 and 7.
        let left = vec![row!["x", 0, 10]];
        let right = vec![row!["x", 3, 7]];
        let out = split_rows(&left, &right, &[0], 3);
        assert_eq!(
            out,
            vec![row!["x", 0, 3], row!["x", 3, 7], row!["x", 7, 10]]
        );
    }

    #[test]
    fn groups_are_independent() {
        let left = vec![row!["x", 0, 10], row!["y", 0, 10]];
        let right = vec![row!["x", 5, 6]];
        let mut out = split_rows(&left, &right, &[0], 3);
        out.sort();
        // y is untouched: its group has no extra endpoints.
        assert_eq!(
            out,
            vec![
                row!["x", 0, 5],
                row!["x", 5, 6],
                row!["x", 6, 10],
                row!["y", 0, 10],
            ]
        );
    }

    #[test]
    fn empty_group_cols_is_global_split() {
        let left = vec![row!["a", 0, 4], row!["b", 2, 6]];
        let right: Vec<Row> = vec![];
        let mut out = split_rows(&left, &right, &[], 3);
        out.sort();
        // Global endpoints {0,2,4,6}: both rows split at interior points.
        assert_eq!(
            out,
            vec![
                row!["a", 0, 2],
                row!["a", 2, 4],
                row!["b", 2, 4],
                row!["b", 4, 6],
            ]
        );
    }

    #[test]
    fn after_split_intervals_identical_or_disjoint() {
        let left = vec![
            row!["g", 0, 10],
            row!["g", 3, 12],
            row!["g", 3, 12],
            row!["g", 5, 6],
        ];
        let out = split_rows(&left, &left, &[0], 3);
        for a in &out {
            for b in &out {
                let (ab, ae) = (a.int(1), a.int(2));
                let (bb, be) = (b.int(1), b.int(2));
                let overlap = ab < be && bb < ae;
                let identical = ab == bb && ae == be;
                assert!(
                    !overlap || identical,
                    "intervals [{ab},{ae}) and [{bb},{be}) overlap but differ"
                );
            }
        }
    }

    #[test]
    fn multiplicities_preserved_pointwise() {
        let left = vec![row!["g", 0, 8], row!["g", 0, 8], row!["g", 4, 12]];
        let right = vec![row!["g", 2, 5]];
        let out = split_rows(&left, &right, &[0], 3);
        for t in 0..14 {
            let before = left
                .iter()
                .filter(|r| r.int(1) <= t && t < r.int(2))
                .count();
            let after = out.iter().filter(|r| r.int(1) <= t && t < r.int(2)).count();
            assert_eq!(before, after, "multiplicity changed at {t}");
        }
    }

    #[test]
    fn duplicates_split_identically() {
        let left = vec![row!["g", 0, 10], row!["g", 0, 10]];
        let right = vec![row!["g", 5, 7]];
        let out = split_rows(&left, &right, &[0], 3);
        assert_eq!(out.len(), 6);
    }
}
