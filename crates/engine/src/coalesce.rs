//! Multiset temporal coalescing (paper Sections 8–9).
//!
//! The coalesce operator `C` (Definition 8.2) brings a `PERIODENC`-encoded
//! relation into the unique normal form of N-coalescing: for every group of
//! value-equivalent rows it emits, per maximal interval over which the
//! multiplicity is constant, exactly that multiplicity of duplicate rows.
//!
//! The algorithm mirrors the paper's analytic-window SQL implementation
//! (Section 9, after [Zhou et al.]): per value-equivalent group, count open
//! intervals per endpoint (+m at begin, −m at end), detect changepoints
//! where the count changes, and emit maximal constant segments. One sort per
//! group: `O(n log n)` overall.

use std::collections::HashMap;
use storage::Row;

/// Coalesces a multiset of period rows.
///
/// `rows` must carry the period in the last two (integer) columns; data
/// columns are everything before. The output is canonically ordered (sorted
/// rows), making the encoding unique per Definition 4.5.
pub fn coalesce_rows(rows: &[Row], arity: usize) -> Vec<Row> {
    assert!(
        arity >= 2,
        "period rows need at least the two period columns"
    );
    let data_cols = arity - 2;

    // Group rows by their data columns.
    let mut groups: HashMap<Vec<storage::Value>, Vec<(i64, i64)>> = HashMap::new();
    for r in rows {
        debug_assert_eq!(r.arity(), arity);
        let key: Vec<storage::Value> = r.values()[..data_cols].to_vec();
        groups
            .entry(key)
            .or_default()
            .push((r.int(data_cols), r.int(data_cols + 1)));
    }

    let mut out: Vec<Row> = Vec::with_capacity(rows.len());
    for (key, intervals) in groups {
        // Events: +1 at begin, −1 at end, per duplicate interval.
        let mut events: Vec<(i64, i64)> = Vec::with_capacity(intervals.len() * 2);
        for (b, e) in intervals {
            events.push((b, 1));
            events.push((e, -1));
        }
        events.sort_unstable();

        let mut depth: i64 = 0;
        let mut seg_start: i64 = 0;
        let mut i = 0usize;
        while i < events.len() {
            let t = events[i].0;
            let mut delta = 0;
            while i < events.len() && events[i].0 == t {
                delta += events[i].1;
                i += 1;
            }
            if delta == 0 {
                continue; // equal opens and closes: multiplicity unchanged
            }
            if depth > 0 {
                // Close the maximal segment [seg_start, t) at depth `depth`.
                emit(&mut out, &key, seg_start, t, depth);
            }
            depth += delta;
            seg_start = t;
        }
        debug_assert_eq!(depth, 0, "unbalanced interval events");
    }
    out.sort_unstable();
    out
}

fn emit(out: &mut Vec<Row>, key: &[storage::Value], b: i64, e: i64, mult: i64) {
    debug_assert!(b < e && mult > 0);
    let mut values = Vec::with_capacity(key.len() + 2);
    values.extend_from_slice(key);
    values.push(storage::Value::Int(b));
    values.push(storage::Value::Int(e));
    let row = Row::new(values);
    for _ in 0..mult {
        out.push(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::row;

    #[test]
    fn example_5_3_multiset_coalescing() {
        // S = {(30k,[3,13)), (30k,[3,10))}  ==>  30k×2 on [3,10), 30k×1 on [10,13)
        let rows = vec![row![30, 3, 13], row![30, 3, 10]];
        let out = coalesce_rows(&rows, 3);
        assert_eq!(
            out,
            vec![row![30, 3, 10], row![30, 3, 10], row![30, 10, 13],]
        );
    }

    #[test]
    fn merges_adjacent_equal_multiplicity() {
        // [1,5) and [5,9) with equal multiplicity merge into [1,9).
        let rows = vec![row!["a", 1, 5], row!["a", 5, 9]];
        assert_eq!(coalesce_rows(&rows, 3), vec![row!["a", 1, 9]]);
    }

    #[test]
    fn distinct_values_do_not_merge() {
        let rows = vec![row!["a", 1, 5], row!["b", 5, 9]];
        let out = coalesce_rows(&rows, 3);
        assert_eq!(out, vec![row!["a", 1, 5], row!["b", 5, 9]]);
    }

    #[test]
    fn idempotent() {
        let rows = vec![
            row!["x", 0, 10],
            row!["x", 5, 15],
            row!["x", 5, 15],
            row!["y", 2, 4],
        ];
        let once = coalesce_rows(&rows, 3);
        let twice = coalesce_rows(&once, 3);
        assert_eq!(once, twice);
    }

    #[test]
    fn unique_encoding_of_equivalent_inputs() {
        // Same temporal content presented two ways.
        let a = vec![row!["x", 0, 10]];
        let b = vec![row!["x", 0, 6], row!["x", 6, 10]];
        assert_eq!(coalesce_rows(&a, 3), coalesce_rows(&b, 3));
    }

    #[test]
    fn figure_1b_shape_counts() {
        // works SP rows: Ann [3,10), Sam [8,16), Ann [18,20) — projecting to
        // skill only, coalescing yields the multiplicity profile of Π_skill.
        let rows = vec![row!["SP", 3, 10], row!["SP", 8, 16], row!["SP", 18, 20]];
        let out = coalesce_rows(&rows, 3);
        assert_eq!(
            out,
            vec![
                row!["SP", 3, 8],
                row!["SP", 8, 10],
                row!["SP", 8, 10],
                row!["SP", 10, 16],
                row!["SP", 18, 20],
            ]
        );
    }

    #[test]
    fn empty_input() {
        assert!(coalesce_rows(&[], 3).is_empty());
    }

    #[test]
    fn equal_open_close_at_same_point_does_not_split() {
        // [0,5) and [5,5+5): one closes exactly where another opens with the
        // same multiplicity — stays merged ([0,10) ×1).
        let rows = vec![row!["k", 0, 5], row!["k", 5, 10]];
        assert_eq!(coalesce_rows(&rows, 3), vec![row!["k", 0, 10]]);
    }

    /// Reference implementation: per-point multiplicity counting.
    fn pointwise(rows: &[Row], arity: usize, horizon: i64) -> Vec<(Vec<storage::Value>, i64, i64)> {
        let data = arity - 2;
        let mut acc = Vec::new();
        let mut keys: Vec<Vec<storage::Value>> =
            rows.iter().map(|r| r.values()[..data].to_vec()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            for t in 0..horizon {
                let m = rows
                    .iter()
                    .filter(|r| {
                        r.values()[..data] == key[..] && r.int(data) <= t && t < r.int(data + 1)
                    })
                    .count() as i64;
                if m > 0 {
                    acc.push((key.clone(), t, m));
                }
            }
        }
        acc
    }

    #[test]
    fn agrees_with_pointwise_reference() {
        use rand_like::*;
        // Deterministic pseudo-random rows (no rand dependency in engine).
        let mut state = 42u64;
        let mut rows = Vec::new();
        for _ in 0..200 {
            let v = (next(&mut state) % 3) as i64;
            let b = (next(&mut state) % 20) as i64;
            let len = 1 + (next(&mut state) % 8) as i64;
            rows.push(row![v, b, b + len]);
        }
        let out = coalesce_rows(&rows, 3);
        // Compare point-wise multiplicity of input and output.
        assert_eq!(pointwise(&rows, 3, 40), pointwise(&out, 3, 40));
        // Output must be normal form: per key, intervals disjoint and
        // adjacent segments have different multiplicities.
        let mut per_key: std::collections::BTreeMap<Vec<storage::Value>, Vec<(i64, i64, i64)>> =
            Default::default();
        for r in &out {
            let key = r.values()[..1].to_vec();
            let entry = per_key.entry(key).or_default();
            if let Some(last) = entry.last_mut() {
                if last.0 == r.int(1) && last.1 == r.int(2) {
                    last.2 += 1;
                    continue;
                }
            }
            entry.push((r.int(1), r.int(2), 1));
        }
        for (_, segs) in per_key {
            for w in segs.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping output segments");
                if w[0].1 == w[1].0 {
                    assert_ne!(w[0].2, w[1].2, "adjacent equal-multiplicity segments");
                }
            }
        }
    }

    mod rand_like {
        /// xorshift64* — deterministic pseudo-random for tests.
        pub fn next(state: &mut u64) -> u64 {
            let mut x = *state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            *state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}
