//! Scalar expression evaluation with SQL three-valued logic.

use algebra::{BinOp, Expr};
use std::cmp::Ordering;
use storage::{Row, Value};

/// Evaluates an expression against a row. NULL propagates through
/// arithmetic and comparisons; `AND`/`OR` use Kleene three-valued logic
/// (with "unknown" represented as [`Value::Null`]).
pub fn eval_expr(expr: &Expr, row: &Row) -> Value {
    match expr {
        Expr::Col(i) => row.get(*i).clone(),
        Expr::Lit(v) => v.clone(),
        Expr::Binary { op, left, right } => {
            let l = eval_expr(left, row);
            // Short-circuit logical operators (three-valued).
            match op {
                BinOp::And => {
                    if l == Value::Bool(false) {
                        return Value::Bool(false);
                    }
                    let r = eval_expr(right, row);
                    return match (l, r) {
                        (_, Value::Bool(false)) => Value::Bool(false),
                        (Value::Bool(true), Value::Bool(true)) => Value::Bool(true),
                        _ => Value::Null,
                    };
                }
                BinOp::Or => {
                    if l == Value::Bool(true) {
                        return Value::Bool(true);
                    }
                    let r = eval_expr(right, row);
                    return match (l, r) {
                        (_, Value::Bool(true)) => Value::Bool(true),
                        (Value::Bool(false), Value::Bool(false)) => Value::Bool(false),
                        _ => Value::Null,
                    };
                }
                _ => {}
            }
            let r = eval_expr(right, row);
            if op.is_comparison() {
                return match l.sql_cmp(&r) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::Neq => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::Leq => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::Geq => ord != Ordering::Less,
                        _ => unreachable!(),
                    }),
                };
            }
            arithmetic(*op, &l, &r)
        }
        Expr::Not(e) => match eval_expr(e, row) {
            Value::Bool(b) => Value::Bool(!b),
            _ => Value::Null,
        },
        Expr::IsNull { expr, negated } => {
            let isnull = eval_expr(expr, row).is_null();
            Value::Bool(isnull != *negated)
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, result) in branches {
                if eval_expr(cond, row) == Value::Bool(true) {
                    return eval_expr(result, row);
                }
            }
            else_expr
                .as_ref()
                .map(|e| eval_expr(e, row))
                .unwrap_or(Value::Null)
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => match eval_expr(expr, row) {
            Value::Str(s) => Value::Bool(like_match(pattern, &s) != *negated),
            _ => Value::Null,
        },
        Expr::Least(es) => fold_extreme(es, row, Ordering::Less),
        Expr::Greatest(es) => fold_extreme(es, row, Ordering::Greater),
    }
}

/// Evaluates a predicate: a row passes only when the expression evaluates to
/// `TRUE` (NULL/unknown filters the row out, as in SQL `WHERE`).
#[inline]
pub fn eval_predicate(expr: &Expr, row: &Row) -> bool {
    eval_expr(expr, row) == Value::Bool(true)
}

fn arithmetic(op: BinOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            BinOp::Add => Value::Int(a + b),
            BinOp::Sub => Value::Int(a - b),
            BinOp::Mul => Value::Int(a * b),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
            _ => unreachable!("non-arithmetic op {op} reached arithmetic"),
        },
        _ => {
            let (Some(a), Some(b)) = (l.as_double(), r.as_double()) else {
                return Value::Null;
            };
            match op {
                BinOp::Add => Value::Double(a + b),
                BinOp::Sub => Value::Double(a - b),
                BinOp::Mul => Value::Double(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a / b)
                    }
                }
                _ => unreachable!("non-arithmetic op {op} reached arithmetic"),
            }
        }
    }
}

fn fold_extreme(es: &[Expr], row: &Row, keep: Ordering) -> Value {
    // Postgres semantics: NULL arguments are ignored; all-NULL gives NULL.
    let mut best = Value::Null;
    for e in es {
        let v = eval_expr(e, row);
        if v.is_null() {
            continue;
        }
        if best.is_null() || v.sql_cmp(&best) == Some(keep) {
            best = v;
        }
    }
    best
}

/// SQL `LIKE` pattern matching: `%` matches any sequence, `_` any single
/// character. Case-sensitive, no escape support (not needed by the
/// workloads).
pub fn like_match(pattern: &str, s: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    // Classic two-pointer wildcard matcher with backtracking to the last %.
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_t = ti;
            pi += 1;
        } else if star_p != usize::MAX {
            pi = star_p + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::row;

    #[test]
    fn comparisons() {
        let r = row![5, "abc"];
        assert_eq!(
            eval_expr(&Expr::col(0).eq(Expr::lit(5)), &r),
            Value::Bool(true)
        );
        assert_eq!(
            eval_expr(&Expr::col(0).lt(Expr::lit(3)), &r),
            Value::Bool(false)
        );
        assert_eq!(
            eval_expr(&Expr::col(1).eq(Expr::lit("abc")), &r),
            Value::Bool(true)
        );
    }

    #[test]
    fn null_propagation() {
        let r = Row::new(vec![Value::Null, Value::Int(1)]);
        assert_eq!(eval_expr(&Expr::col(0).eq(Expr::lit(1)), &r), Value::Null);
        assert_eq!(
            eval_expr(&Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1)), &r),
            Value::Null
        );
        assert!(!eval_predicate(&Expr::col(0).eq(Expr::lit(1)), &r));
    }

    #[test]
    fn three_valued_logic() {
        let r = Row::new(vec![Value::Null]);
        let null_cmp = Expr::col(0).eq(Expr::lit(1)); // unknown
                                                      // false AND unknown = false
        let e = Expr::binary(BinOp::And, Expr::lit(false), null_cmp.clone());
        assert_eq!(eval_expr(&e, &r), Value::Bool(false));
        // true OR unknown = true
        let e = Expr::binary(BinOp::Or, Expr::lit(true), null_cmp.clone());
        assert_eq!(eval_expr(&e, &r), Value::Bool(true));
        // true AND unknown = unknown
        let e = Expr::binary(BinOp::And, Expr::lit(true), null_cmp.clone());
        assert_eq!(eval_expr(&e, &r), Value::Null);
        // NOT unknown = unknown
        assert_eq!(eval_expr(&Expr::Not(Box::new(null_cmp)), &r), Value::Null);
    }

    #[test]
    fn is_null() {
        let r = Row::new(vec![Value::Null, Value::Int(1)]);
        let e = Expr::IsNull {
            expr: Box::new(Expr::col(0)),
            negated: false,
        };
        assert_eq!(eval_expr(&e, &r), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(Expr::col(1)),
            negated: true,
        };
        assert_eq!(eval_expr(&e, &r), Value::Bool(true));
    }

    #[test]
    fn arithmetic_types() {
        let r = row![7, 2, 1.5];
        let div = Expr::binary(BinOp::Div, Expr::col(0), Expr::col(1));
        assert_eq!(eval_expr(&div, &r), Value::Int(3)); // integer division
        let mixed = Expr::binary(BinOp::Mul, Expr::col(0), Expr::col(2));
        assert_eq!(eval_expr(&mixed, &r), Value::Double(10.5));
        let div0 = Expr::binary(BinOp::Div, Expr::col(0), Expr::lit(0));
        assert_eq!(eval_expr(&div0, &r), Value::Null);
    }

    #[test]
    fn case_expression() {
        let r = row![5];
        let e = Expr::Case {
            branches: vec![
                (Expr::col(0).lt(Expr::lit(3)), Expr::lit("low")),
                (Expr::col(0).lt(Expr::lit(10)), Expr::lit("mid")),
            ],
            else_expr: Some(Box::new(Expr::lit("high"))),
        };
        assert_eq!(eval_expr(&e, &r), Value::str("mid"));
        let no_else = Expr::Case {
            branches: vec![(Expr::col(0).lt(Expr::lit(3)), Expr::lit("low"))],
            else_expr: None,
        };
        assert_eq!(eval_expr(&no_else, &r), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("PROMO%", "PROMO BURNISHED"));
        assert!(!like_match("PROMO%", "STANDARD"));
        assert!(like_match("%BRASS", "SMALL BRASS"));
        assert!(like_match("%ECONOMY%", "LARGE ECONOMY CASE"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%", ""));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
        assert!(like_match("a%b%c", "aXXbYYc"));
    }

    #[test]
    fn least_greatest() {
        let r = row![5, 3];
        let least = Expr::Least(vec![Expr::col(0), Expr::col(1), Expr::lit(9)]);
        assert_eq!(eval_expr(&least, &r), Value::Int(3));
        let greatest = Expr::Greatest(vec![Expr::col(0), Expr::col(1)]);
        assert_eq!(eval_expr(&greatest, &r), Value::Int(5));
        // NULLs ignored.
        let r = Row::new(vec![Value::Null, Value::Int(3)]);
        let least = Expr::Least(vec![Expr::col(0), Expr::col(1)]);
        assert_eq!(eval_expr(&least, &r), Value::Int(3));
        let all_null = Expr::Least(vec![Expr::col(0)]);
        assert_eq!(eval_expr(&all_null, &r), Value::Null);
    }
}
