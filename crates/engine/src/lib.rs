//! The embedded multiset execution engine.
//!
//! This crate plays the role of the DBMS underneath the paper's middleware:
//! it executes the logical plans of the `algebra` crate over the period
//! tables of the `storage` crate. It implements
//!
//! * the classic operators — filter, project, hash/nested-loop joins (plus a
//!   merge interval join, the strategy the paper observed in system DBX),
//!   union all, bag difference, hash aggregation, distinct, sort — with SQL
//!   NULL semantics, and
//! * the temporal operators of the paper's implementation layer:
//!   multiset coalescing ([`coalesce`], Section 9's analytic-window
//!   algorithm), the split operator `N_G` ([`split`], Definition 8.3), and
//!   the fused pre-aggregating forms of snapshot aggregation and snapshot
//!   bag difference ([`temporal`], Section 9).
//!
//! The engine is in-memory and, by default, single-threaded: the paper's
//! contribution is the *rewriting* and *encoding*, and keeping the substrate
//! simple lets the benchmark harness compare approaches rather than
//! runtimes-of-substrates. The one multi-core path is opt-in and
//! bag-equivalent to its sequential twin: with
//! [`EngineConfig::parallelism`] above 1, interval-overlap joins take the
//! slab-parallel endpoint sweep of the `index` crate (elementary-interval
//! partitioning over scoped worker threads).

pub mod coalesce;
mod eval;
mod exec;
pub mod sliding;
pub mod split;
pub mod temporal;
pub mod vtab;

pub use eval::{eval_expr, eval_predicate, like_match};
pub use exec::{
    explain_analyzed, resolve_parallelism, Engine, EngineConfig, ExecContext, ExecStats,
    JoinStrategy, NodeActuals, NodeStats,
};
