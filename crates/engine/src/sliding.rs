//! Sliding aggregate state supporting add *and remove*.
//!
//! The fused temporal aggregation of Section 9 sweeps the time axis,
//! maintaining the aggregate over the intervals active at the sweep
//! position. `count`/`sum`/`avg` subtract directly; `min`/`max` keep a value
//! multiset so arbitrary removal stays `O(log n)`.

use algebra::AggFunc;
use std::collections::BTreeMap;
use storage::{SqlType, Value};

/// A partial aggregate contribution: what one (pre-aggregated) input unit
/// adds to the sliding state.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial {
    /// Rows covered (for `count(*)`).
    pub rows: i64,
    /// Non-NULL argument values covered (for `count(e)`, `avg` denominator).
    pub non_null: i64,
    /// Sum of argument values (ints exact, doubles approximate).
    pub sum_int: i64,
    /// Sum for double arguments.
    pub sum_double: f64,
    /// Minimum argument value, when any.
    pub min: Option<Value>,
    /// Maximum argument value, when any.
    pub max: Option<Value>,
}

impl Partial {
    /// The neutral partial.
    pub fn new() -> Self {
        Partial {
            rows: 0,
            non_null: 0,
            sum_int: 0,
            sum_double: 0.0,
            min: None,
            max: None,
        }
    }

    /// Folds one argument value (possibly NULL) into the partial.
    pub fn add_value(&mut self, v: &Value) {
        self.rows += 1;
        if v.is_null() {
            return;
        }
        self.non_null += 1;
        match v {
            Value::Int(i) => self.sum_int += i,
            Value::Double(d) => self.sum_double += d,
            _ => {}
        }
        if self
            .min
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less))
        {
            self.min = Some(v.clone());
        }
        if self
            .max
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
        {
            self.max = Some(v.clone());
        }
    }

    /// Merges another partial into this one.
    pub fn merge(&mut self, other: &Partial) {
        self.rows += other.rows;
        self.non_null += other.non_null;
        self.sum_int += other.sum_int;
        self.sum_double += other.sum_double;
        if let Some(m) = &other.min {
            if self
                .min
                .as_ref()
                .is_none_or(|cur| m.sql_cmp(cur) == Some(std::cmp::Ordering::Less))
            {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self
                .max
                .as_ref()
                .is_none_or(|cur| m.sql_cmp(cur) == Some(std::cmp::Ordering::Greater))
            {
                self.max = Some(m.clone());
            }
        }
    }
}

impl Default for Partial {
    fn default() -> Self {
        Self::new()
    }
}

/// Sliding (add/remove) aggregate state for one aggregate function.
#[derive(Debug)]
pub struct SlidingAgg {
    func: AggFunc,
    arg_type: SqlType,
    rows: i64,
    non_null: i64,
    sum_int: i64,
    sum_double: f64,
    /// Multiset of partial minima (each active partial contributes one).
    mins: BTreeMap<Value, u64>,
    /// Multiset of partial maxima.
    maxs: BTreeMap<Value, u64>,
}

impl SlidingAgg {
    /// Fresh state for `func` whose argument has type `arg_type`.
    pub fn new(func: AggFunc, arg_type: SqlType) -> Self {
        SlidingAgg {
            func,
            arg_type,
            rows: 0,
            non_null: 0,
            sum_int: 0,
            sum_double: 0.0,
            mins: BTreeMap::new(),
            maxs: BTreeMap::new(),
        }
    }

    /// Adds a partial to the active set.
    pub fn add(&mut self, p: &Partial) {
        self.rows += p.rows;
        self.non_null += p.non_null;
        self.sum_int += p.sum_int;
        self.sum_double += p.sum_double;
        if let Some(m) = &p.min {
            *self.mins.entry(m.clone()).or_insert(0) += 1;
        }
        if let Some(m) = &p.max {
            *self.maxs.entry(m.clone()).or_insert(0) += 1;
        }
    }

    /// Removes a previously added partial.
    pub fn remove(&mut self, p: &Partial) {
        self.rows -= p.rows;
        self.non_null -= p.non_null;
        self.sum_int -= p.sum_int;
        self.sum_double -= p.sum_double;
        if let Some(m) = &p.min {
            if let Some(c) = self.mins.get_mut(m) {
                *c -= 1;
                if *c == 0 {
                    self.mins.remove(m);
                }
            }
        }
        if let Some(m) = &p.max {
            if let Some(c) = self.maxs.get_mut(m) {
                *c -= 1;
                if *c == 0 {
                    self.maxs.remove(m);
                }
            }
        }
    }

    /// Whether any rows are active.
    pub fn is_active(&self) -> bool {
        self.rows > 0
    }

    /// The current aggregate value (SQL semantics: empty/all-NULL input
    /// yields NULL, except `count`, which yields 0).
    pub fn current(&self) -> Value {
        match self.func {
            AggFunc::CountStar => Value::Int(self.rows),
            AggFunc::Count => Value::Int(self.non_null),
            AggFunc::Sum => {
                if self.non_null == 0 {
                    Value::Null
                } else if self.arg_type == SqlType::Double {
                    Value::Double(self.sum_double)
                } else {
                    Value::Int(self.sum_int)
                }
            }
            AggFunc::Avg => {
                if self.non_null == 0 {
                    Value::Null
                } else {
                    let total = self.sum_double + self.sum_int as f64;
                    Value::Double(total / self.non_null as f64)
                }
            }
            AggFunc::Min => self.mins.keys().next().cloned().unwrap_or(Value::Null),
            AggFunc::Max => self.maxs.keys().next_back().cloned().unwrap_or(Value::Null),
        }
    }

    /// The value this aggregate reports for a *gap* (no input at all):
    /// `count` is 0, everything else NULL — the behaviour the neutral-tuple
    /// union of Figure 4 produces in SQL.
    pub fn gap_value(func: &AggFunc) -> Value {
        match func {
            AggFunc::CountStar | AggFunc::Count => Value::Int(0),
            _ => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partial_of(vals: &[Value]) -> Partial {
        let mut p = Partial::new();
        for v in vals {
            p.add_value(v);
        }
        p
    }

    #[test]
    fn count_and_sum_slide() {
        let mut s = SlidingAgg::new(AggFunc::Sum, SqlType::Int);
        let p1 = partial_of(&[Value::Int(10), Value::Int(20)]);
        let p2 = partial_of(&[Value::Int(5)]);
        s.add(&p1);
        s.add(&p2);
        assert_eq!(s.current(), Value::Int(35));
        s.remove(&p1);
        assert_eq!(s.current(), Value::Int(5));
        s.remove(&p2);
        assert_eq!(s.current(), Value::Null); // sum of empty = NULL
        assert!(!s.is_active());
    }

    #[test]
    fn count_ignores_then_counts_nulls_properly() {
        let mut c = SlidingAgg::new(AggFunc::Count, SqlType::Int);
        let p = partial_of(&[Value::Int(1), Value::Null]);
        c.add(&p);
        assert_eq!(c.current(), Value::Int(1));
        let mut cs = SlidingAgg::new(AggFunc::CountStar, SqlType::Int);
        cs.add(&p);
        assert_eq!(cs.current(), Value::Int(2));
    }

    #[test]
    fn min_max_with_removal() {
        let mut m = SlidingAgg::new(AggFunc::Min, SqlType::Int);
        let p1 = partial_of(&[Value::Int(7)]);
        let p2 = partial_of(&[Value::Int(3)]);
        let p3 = partial_of(&[Value::Int(3)]);
        m.add(&p1);
        m.add(&p2);
        m.add(&p3);
        assert_eq!(m.current(), Value::Int(3));
        m.remove(&p2);
        assert_eq!(m.current(), Value::Int(3)); // duplicate 3 still active
        m.remove(&p3);
        assert_eq!(m.current(), Value::Int(7));
    }

    #[test]
    fn avg_mixed_int_double() {
        let mut a = SlidingAgg::new(AggFunc::Avg, SqlType::Double);
        a.add(&partial_of(&[Value::Int(1), Value::Double(2.0)]));
        assert_eq!(a.current(), Value::Double(1.5));
    }

    #[test]
    fn partial_merge() {
        let mut p = partial_of(&[Value::Int(1)]);
        p.merge(&partial_of(&[Value::Int(5), Value::Null]));
        assert_eq!(p.rows, 3);
        assert_eq!(p.non_null, 2);
        assert_eq!(p.sum_int, 6);
        assert_eq!(p.min, Some(Value::Int(1)));
        assert_eq!(p.max, Some(Value::Int(5)));
    }

    #[test]
    fn gap_values() {
        assert_eq!(SlidingAgg::gap_value(&AggFunc::Count), Value::Int(0));
        assert_eq!(SlidingAgg::gap_value(&AggFunc::CountStar), Value::Int(0));
        assert_eq!(SlidingAgg::gap_value(&AggFunc::Sum), Value::Null);
        assert_eq!(SlidingAgg::gap_value(&AggFunc::Avg), Value::Null);
    }
}
