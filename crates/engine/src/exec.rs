//! Plan execution.

use crate::coalesce::coalesce_rows;
use crate::eval::{eval_expr, eval_predicate};
use crate::sliding::{Partial, SlidingAgg};
use crate::split::split_rows;
use crate::temporal::{agg_arg_types, temporal_aggregate, temporal_except_all};
use algebra::{BinOp, Expr, JoinAlgo, Plan, PlanNode, TimesliceAlgo};
use index::{
    choose_cuts, elementary_boundaries, elementary_boundaries_from_events,
    parallel_sweep_join_presorted, sweep_join_presorted, try_parallel_sweep_join_presorted,
    try_sweep_join_presorted, IndexCatalog,
};
use snapshot_obs as obs;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use storage::{Catalog, Row, Table, Value};

/// Join-pair interval between cooperative cancellation checks: frequent
/// enough that a runaway join reacts within microseconds, rare enough
/// that the per-pair cost is one counter bump.
const CANCEL_CHECK_INTERVAL: u64 = 1024;

/// Per-statement execution context: the live [`obs::ResourceAccount`]
/// the operators bump and the [`obs::CancelToken`] they check at batch
/// boundaries. Shared (`Arc`) with the owning session's entry in the
/// activity registry, so `snapshot_stat_progress` sees counters move
/// while the statement runs and `.kill` can reach into the executor.
#[derive(Debug, Clone)]
pub struct ExecContext {
    account: Arc<obs::ResourceAccount>,
    token: Arc<obs::CancelToken>,
}

impl ExecContext {
    /// Context over a session's shared account and token.
    pub fn new(account: Arc<obs::ResourceAccount>, token: Arc<obs::CancelToken>) -> Self {
        ExecContext { account, token }
    }

    /// The live resource counters.
    pub fn account(&self) -> &obs::ResourceAccount {
        &self.account
    }

    /// The cooperative check (see [`obs::CancelToken::check`]).
    fn check(&self) -> Result<(), String> {
        self.token.check(&self.account)
    }
}

/// Join strategy for the non-temporal part of join conditions.
///
/// The paper's experiments observed PostgreSQL and DBY using hash joins on
/// the non-temporal attributes, while DBX used merge joins over the interval
/// overlap predicate; both strategies are available here so the benchmark
/// harness can reproduce that comparison. [`JoinStrategy::IndexSweep`]
/// additionally enables the endpoint-sweep temporal join of the `index`
/// crate even for non-indexed inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Hash join on equality conjuncts, residual predicate after (PG/DBY).
    #[default]
    Hash,
    /// Forward-scan plane sweep over the interval overlap predicate (DBX),
    /// falling back to hash when no overlap pattern is present.
    MergeInterval,
    /// Endpoint-sweep (sort-merge) temporal join over the interval overlap
    /// predicate, falling back to hash when no overlap pattern is present.
    IndexSweep,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Join strategy.
    pub join_strategy: JoinStrategy,
    /// Worker threads for parallel operators (currently the parallel
    /// endpoint-sweep temporal join). `0` and `1` both mean sequential
    /// execution; values above `1` make [`JoinAlgo::Auto`] prefer
    /// [`JoinAlgo::ParallelSweep`] wherever it would pick the sequential
    /// sweep, and set the slab count of explicit `ParallelSweep` hints.
    pub parallelism: usize,
}

/// Per-operator execution counters (operator name → (invocations, rows
/// produced)); useful for explaining benchmark results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    counters: BTreeMap<&'static str, (u64, u64)>,
}

impl ExecStats {
    fn record(&mut self, op: &'static str, rows: usize) {
        let e = self.counters.entry(op).or_insert((0, 0));
        e.0 += 1;
        e.1 += rows as u64;
    }

    /// `(invocations, rows produced)` for an operator name.
    pub fn get(&self, op: &str) -> Option<(u64, u64)> {
        self.counters.get(op).copied()
    }

    /// All counters, sorted by operator name.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, (u64, u64))> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Publish these counters into the global metrics registry as
    /// `engine_<op>_invocations_total` / `engine_<op>_rows_total` (operator
    /// names lower-cased). The session layer calls this once per statement
    /// when metrics collection is on, so the per-operator hot path stays a
    /// plain `BTreeMap` bump.
    pub fn publish_to_registry(&self) {
        let reg = obs::registry();
        // lint:allow(cancellation) bounded by the number of operator kinds
        for (op, (invocations, rows)) in self.iter() {
            let op = op.to_lowercase();
            reg.counter(&format!("engine_{op}_invocations_total"))
                .add(invocations);
            reg.counter(&format!("engine_{op}_rows_total")).add(rows);
        }
    }
}

/// Actual execution figures for one plan node, as collected by
/// [`Engine::execute_analyzed`] for `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeActuals {
    /// Times the node produced its output (re-runs under retries add up).
    pub calls: u64,
    /// Total rows produced across calls.
    pub rows: u64,
    /// Total wall-clock nanoseconds, inclusive of children.
    pub nanos: u64,
}

/// Per-plan-node actuals keyed by node *identity* (not operator name, so
/// two `Scan`s of the same table report separately). Valid only for the
/// exact [`Plan`] value that was executed.
#[derive(Debug, Default)]
pub struct NodeStats {
    map: HashMap<usize, NodeActuals>,
}

impl NodeStats {
    fn record(&mut self, plan: &Plan, rows: usize, elapsed: Duration) {
        let e = self.map.entry(plan_key(plan)).or_default();
        e.calls += 1;
        e.rows += rows as u64;
        e.nanos += elapsed.as_nanos() as u64;
    }

    /// Actuals for a node of the executed plan; `None` when the node was
    /// never executed (e.g. an input short-circuited by an indexed route).
    pub fn get(&self, plan: &Plan) -> Option<NodeActuals> {
        self.map.get(&plan_key(plan)).copied()
    }
}

fn plan_key(plan: &Plan) -> usize {
    plan as *const Plan as usize
}

/// Renders `plan` as its EXPLAIN tree with per-node actuals appended:
/// `(actual rows=R calls=C time=T ms)`, or `(never executed)` for nodes an
/// accelerated route short-circuited (e.g. the scan under an indexed
/// timeslice).
pub fn explain_analyzed(plan: &Plan, nodes: &NodeStats) -> String {
    fn walk(out: &mut String, plan: &Plan, depth: usize, nodes: &NodeStats) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&plan.node_label());
        match nodes.get(plan) {
            Some(a) => {
                out.push_str(&format!(
                    " (actual rows={} calls={} time={:.3} ms)",
                    a.rows,
                    a.calls,
                    a.nanos as f64 / 1e6
                ));
            }
            None => out.push_str(" (never executed)"),
        }
        out.push('\n');
        // lint:allow(cancellation) bounded by plan size
        for child in plan.children() {
            walk(out, child, depth + 1, nodes);
        }
    }
    let mut out = String::new();
    walk(&mut out, plan, 0, nodes);
    out
}

/// Resolves a user-facing parallelism setting to a worker count: `0`
/// means one worker per hardware thread (the convention shared by the
/// shell's `--parallelism 0`, the `SNAPSHOT_PARALLELISM` environment
/// variable, and the test harness), anything else passes through.
pub fn resolve_parallelism(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        n
    }
}

/// The in-memory plan executor. Operators run on the calling thread,
/// except the parallel sweep join, which fans slab workers out over
/// `std::thread::scope` when [`EngineConfig::parallelism`] asks for it.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
    /// Resource accounting + cooperative cancellation for the statement
    /// being executed; `None` (engines built outside a session) keeps the
    /// hot path at a single branch per operator.
    ctx: Option<ExecContext>,
}

impl Engine {
    /// Engine with default configuration (hash joins, sequential).
    pub fn new() -> Self {
        Engine::default()
    }

    /// Engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine { config, ctx: None }
    }

    /// Engine with default strategy and the given worker-thread count.
    pub fn with_parallelism(parallelism: usize) -> Self {
        Engine::with_config(EngineConfig {
            parallelism,
            ..EngineConfig::default()
        })
    }

    /// Attach a per-statement execution context: operators bump its
    /// resource account and honor its cancellation token.
    pub fn with_context(mut self, ctx: ExecContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Executes a plan against a catalog, producing a result table.
    pub fn execute(&self, plan: &Plan, catalog: &Catalog) -> Result<Table, String> {
        let mut stats = ExecStats::default();
        self.execute_with_stats(plan, catalog, &mut stats)
    }

    /// Executes a plan, recording per-operator counters.
    pub fn execute_with_stats(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        stats: &mut ExecStats,
    ) -> Result<Table, String> {
        let rows = self.run(plan, catalog, None, stats, None)?;
        let mut table = Table::new(plan.schema.clone());
        table.extend(rows);
        Ok(table)
    }

    /// Executes a plan with a table-index registry: joins, timeslices, and
    /// coalescing over indexed base tables dispatch to the `index` crate's
    /// operators; everything else (and any stale index) falls back to the
    /// naive paths.
    pub fn execute_indexed(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        indexes: &IndexCatalog,
    ) -> Result<Table, String> {
        let mut stats = ExecStats::default();
        self.execute_indexed_with_stats(plan, catalog, indexes, &mut stats)
    }

    /// [`Engine::execute_indexed`], recording per-operator counters (the
    /// indexed dispatches appear as `IndexSweepJoin`, `IndexTimeslice`, and
    /// `IndexCoalesce`).
    pub fn execute_indexed_with_stats(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        indexes: &IndexCatalog,
        stats: &mut ExecStats,
    ) -> Result<Table, String> {
        let rows = self.run(plan, catalog, Some(indexes), stats, None)?;
        let mut table = Table::new(plan.schema.clone());
        table.extend(rows);
        Ok(table)
    }

    /// Executes a plan while collecting per-node actuals (row counts,
    /// call counts, inclusive wall-clock) keyed by node identity — the
    /// execution mode behind `EXPLAIN ANALYZE`. Pass `indexes` to take the
    /// same dispatch routes as [`Engine::execute_indexed`].
    pub fn execute_analyzed(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        indexes: Option<&IndexCatalog>,
        stats: &mut ExecStats,
        nodes: &mut NodeStats,
    ) -> Result<Table, String> {
        let rows = self.run(plan, catalog, indexes, stats, Some(nodes))?;
        let mut table = Table::new(plan.schema.clone());
        table.extend(rows);
        Ok(table)
    }

    fn run(
        &self,
        plan: &Plan,
        catalog: &Catalog,
        indexes: Option<&IndexCatalog>,
        stats: &mut ExecStats,
        mut nodes: Option<&mut NodeStats>,
    ) -> Result<Vec<Row>, String> {
        // Per-node clock reads only in analyze mode; the span and profile
        // guards are each a single relaxed atomic load when disabled.
        let started = nodes.as_ref().map(|_| Instant::now());
        let mut span = obs::Span::enter(op_name(&plan.node));
        let _frame = obs::ProfileSpan::enter(op_name(&plan.node));
        // Operator boundary: a cancelled statement stops before producing
        // another node's output.
        if let Some(ctx) = &self.ctx {
            ctx.check()?;
        }
        let rows = match &plan.node {
            PlanNode::Scan { table } => {
                let t = catalog.require(table)?;
                if t.schema().arity() != plan.schema.arity() {
                    return Err(format!(
                        "table '{table}' changed since binding: arity {} vs {}",
                        t.schema().arity(),
                        plan.schema.arity()
                    ));
                }
                t.rows().to_vec()
            }
            PlanNode::VirtualScan { table } => {
                crate::vtab::virtual_table_rows(table, catalog, indexes)?
            }
            PlanNode::Values { rows } => rows.clone(),
            PlanNode::Filter { input, predicate } => {
                let input_rows = self.run(input, catalog, indexes, stats, nodes.as_deref_mut())?;
                input_rows
                    .into_iter()
                    .filter(|r| eval_predicate(predicate, r))
                    .collect()
            }
            PlanNode::Project { input, exprs } => {
                let input_rows = self.run(input, catalog, indexes, stats, nodes.as_deref_mut())?;
                input_rows
                    .iter()
                    .map(|r| Row::new(exprs.iter().map(|e| eval_expr(e, r)).collect()))
                    .collect()
            }
            PlanNode::Join {
                left,
                right,
                condition,
                algo,
            } => {
                let l = self.run(left, catalog, indexes, stats, nodes.as_deref_mut())?;
                let r = self.run(right, catalog, indexes, stats, nodes.as_deref_mut())?;
                self.join(
                    JoinInputs {
                        left_plan: left,
                        right_plan: right,
                        left_rows: &l,
                        right_rows: &r,
                    },
                    condition,
                    *algo,
                    catalog,
                    indexes,
                    stats,
                )?
            }
            PlanNode::Union { left, right } => {
                let mut l = self.run(left, catalog, indexes, stats, nodes.as_deref_mut())?;
                let r = self.run(right, catalog, indexes, stats, nodes.as_deref_mut())?;
                l.extend(r);
                l
            }
            PlanNode::ExceptAll { left, right } => {
                let l = self.run(left, catalog, indexes, stats, nodes.as_deref_mut())?;
                let r = self.run(right, catalog, indexes, stats, nodes.as_deref_mut())?;
                except_all(l, &r)
            }
            PlanNode::Aggregate {
                input,
                group_cols,
                aggs,
            } => {
                let input_rows = self.run(input, catalog, indexes, stats, nodes.as_deref_mut())?;
                let arg_types = agg_arg_types(aggs, &input.schema)?;
                hash_aggregate(&input_rows, group_cols, aggs, &arg_types)
            }
            PlanNode::Distinct { input } => {
                let input_rows = self.run(input, catalog, indexes, stats, nodes.as_deref_mut())?;
                let set: std::collections::BTreeSet<Row> = input_rows.into_iter().collect();
                set.into_iter().collect()
            }
            PlanNode::Sort { input, keys } => {
                let mut input_rows =
                    self.run(input, catalog, indexes, stats, nodes.as_deref_mut())?;
                input_rows.sort_by(|a, b| {
                    // lint:allow(cancellation) bounded by sort-key arity
                    for (e, asc) in keys {
                        let (va, vb) = (eval_expr(e, a), eval_expr(e, b));
                        let ord = va.cmp(&vb);
                        let ord = if *asc { ord } else { ord.reverse() };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                input_rows
            }
            PlanNode::Coalesce { input } => {
                // Coalescing accelerator: a scan of an indexed period-last
                // table has its per-group events presorted at index-build
                // time; emit segments directly instead of re-sorting.
                if let Some(accel) =
                    indexed_scan(input, catalog, indexes)?.and_then(|(idx, _)| idx.coalesce())
                {
                    let rows = accel.coalesced_rows();
                    stats.record("IndexCoalesce", rows.len());
                    if let Some(ctx) = &self.ctx {
                        ctx.account.add_index_probes(1);
                    }
                    rows
                } else {
                    let input_rows =
                        self.run(input, catalog, indexes, stats, nodes.as_deref_mut())?;
                    let rows = coalesce_rows(&input_rows, input.schema.arity());
                    stats.record("NaiveCoalesce", rows.len());
                    rows
                }
            }
            PlanNode::Timeslice { input, at, algo } => {
                // Indexed route: interval-tree stabbing on a scanned table
                // whose period sits in the trailing two columns.
                let indexed = (*algo != TimesliceAlgo::Linear)
                    .then(|| indexed_scan(input, catalog, indexes))
                    .transpose()?
                    .flatten()
                    .filter(|(idx, _)| {
                        let n = input.schema.arity();
                        n >= 2 && idx.period() == (n - 2, n - 1)
                    });
                if let Some((idx, table)) = indexed {
                    let rows = idx.timeslice_rows(table, *at);
                    stats.record("IndexTimeslice", rows.len());
                    if let Some(ctx) = &self.ctx {
                        ctx.account.add_index_probes(1);
                    }
                    rows
                } else {
                    let input_rows =
                        self.run(input, catalog, indexes, stats, nodes.as_deref_mut())?;
                    let n = input.schema.arity();
                    let rows: Vec<Row> = input_rows
                        .into_iter()
                        .filter(|r| r.int(n - 2) <= *at && *at < r.int(n - 1))
                        .collect();
                    stats.record("NaiveTimeslice", rows.len());
                    rows
                }
            }
            PlanNode::TimeRange { input, range, algo } => {
                // Indexed route: interval-tree overlap probing on a scanned
                // table whose period sits in the trailing two columns.
                let (b, e) = *range;
                let indexed = (*algo != TimesliceAlgo::Linear)
                    .then(|| indexed_scan(input, catalog, indexes))
                    .transpose()?
                    .flatten()
                    .filter(|(idx, _)| {
                        let n = input.schema.arity();
                        n >= 2 && idx.period() == (n - 2, n - 1)
                    });
                if let Some((idx, table)) = indexed {
                    let rows = idx.overlapping_rows(table, b, e);
                    stats.record("IndexTimeRange", rows.len());
                    if let Some(ctx) = &self.ctx {
                        ctx.account.add_index_probes(1);
                    }
                    rows
                } else {
                    let input_rows =
                        self.run(input, catalog, indexes, stats, nodes.as_deref_mut())?;
                    let n = input.schema.arity();
                    let rows: Vec<Row> = input_rows
                        .into_iter()
                        .filter(|r| r.int(n - 2) < e && b < r.int(n - 1))
                        .collect();
                    stats.record("NaiveTimeRange", rows.len());
                    rows
                }
            }
            PlanNode::Split {
                left,
                right,
                group_cols,
            } => {
                let l = self.run(left, catalog, indexes, stats, nodes.as_deref_mut())?;
                let r = self.run(right, catalog, indexes, stats, nodes.as_deref_mut())?;
                split_rows(&l, &r, group_cols, left.schema.arity())
            }
            PlanNode::TemporalAggregate {
                input,
                group_cols,
                aggs,
                add_gap_neutral,
                domain,
            } => {
                let input_rows = self.run(input, catalog, indexes, stats, nodes.as_deref_mut())?;
                let arg_types = agg_arg_types(aggs, &input.schema)?;
                temporal_aggregate(
                    &input_rows,
                    input.schema.arity(),
                    group_cols,
                    aggs,
                    &arg_types,
                    *add_gap_neutral,
                    *domain,
                )
            }
            PlanNode::TemporalExceptAll { left, right } => {
                let l = self.run(left, catalog, indexes, stats, nodes.as_deref_mut())?;
                let r = self.run(right, catalog, indexes, stats, nodes.as_deref_mut())?;
                temporal_except_all(&l, &r, left.schema.arity())
            }
        };
        span.record_rows(rows.len() as u64);
        stats.record(op_name(&plan.node), rows.len());
        if let (Some(nodes), Some(started)) = (nodes, started) {
            nodes.record(plan, rows.len(), started.elapsed());
        }
        if let Some(ctx) = &self.ctx {
            let n = rows.len() as u64;
            ctx.account.add_rows_emitted(n);
            // Approximate materialization: rows × arity × a 16-byte value.
            ctx.account
                .add_bytes_materialized(n * plan.schema.arity() as u64 * 16);
            if matches!(
                plan.node,
                PlanNode::Scan { .. } | PlanNode::VirtualScan { .. } | PlanNode::Values { .. }
            ) {
                ctx.account.add_rows_scanned(n);
            }
            // Re-check after bumping so `max_rows_scanned` /
            // `max_result_rows` trip at the node that crossed them.
            ctx.check()?;
        }
        Ok(rows)
    }

    fn join(
        &self,
        inputs: JoinInputs<'_>,
        condition: &Expr,
        algo: JoinAlgo,
        catalog: &Catalog,
        indexes: Option<&IndexCatalog>,
        stats: &mut ExecStats,
    ) -> Result<Vec<Row>, String> {
        let JoinInputs {
            left_plan,
            right_plan,
            left_rows: left,
            right_rows: right,
        } = inputs;
        let l_arity = left_plan.schema.arity();
        let r_arity = right_plan.schema.arity();
        let conjuncts = collect_conjuncts(condition);
        let equi = equi_keys(&conjuncts, l_arity);
        let overlap = overlap_pattern(&conjuncts, l_arity, r_arity);

        // Physical choice: the plan hint wins; Auto is index-aware. An
        // index is only usable for the sweep when it was built on the very
        // columns the overlap pattern sweeps (the trailing period pair) —
        // a table whose declared period sits elsewhere would hand the
        // sweep a begin order over the wrong columns.
        let (l_index, r_index) = match overlap {
            Some((lts, lte, rts, rte)) => (
                indexed_scan(left_plan, catalog, indexes)?
                    .filter(|(idx, _)| idx.period() == (lts, lte)),
                indexed_scan(right_plan, catalog, indexes)?
                    .filter(|(idx, _)| idx.period() == (rts, rte)),
            ),
            None => (None, None),
        };
        let both_indexed = l_index.is_some() && r_index.is_some();
        // Auto resolution: a pinned engine strategy routes every overlap
        // join its way (that is how the harness compares routes); otherwise
        // equality conjuncts win — a hash join touches only key matches,
        // while the sweep would enumerate every temporally co-valid pair
        // across all keys before the equality filter. The indexed sweep is
        // the automatic choice only for *pure* overlap joins.
        let resolved = match algo {
            JoinAlgo::Auto => {
                let sweep_pinned = self.config.join_strategy == JoinStrategy::IndexSweep;
                if overlap.is_some() && (sweep_pinned || (both_indexed && equi.is_empty())) {
                    // A configured worker pool upgrades every Auto sweep
                    // to the slab-parallel route (identical bag by the
                    // credit rule; the differential tests enforce it).
                    if self.config.parallelism > 1 {
                        JoinAlgo::ParallelSweep
                    } else {
                        JoinAlgo::IndexSweep
                    }
                } else if overlap.is_some()
                    && self.config.join_strategy == JoinStrategy::MergeInterval
                {
                    JoinAlgo::MergeInterval
                } else if !equi.is_empty() {
                    JoinAlgo::Hash
                } else {
                    JoinAlgo::NestedLoop
                }
            }
            explicit => explicit,
        };

        Ok(match resolved {
            JoinAlgo::ParallelSweep if overlap.is_some() => {
                let (lts, lte, rts, rte) = overlap.unwrap();
                let l_sorted: Vec<&Row> = match &l_index {
                    Some((idx, _)) => idx.events().begin_order().map(|i| &left[i]).collect(),
                    None => sorted_by_begin(left, lts),
                };
                let r_sorted: Vec<&Row> = match &r_index {
                    Some((idx, _)) => idx.events().begin_order().map(|i| &right[i]).collect(),
                    None => sorted_by_begin(right, rts),
                };
                // Slab boundaries follow the elementary intervals of the
                // join's endpoint domain; with both sides indexed they
                // come out of the prebuilt event lists in O(n).
                let boundaries = match (&l_index, &r_index) {
                    (Some((li, _)), Some((ri, _))) => {
                        elementary_boundaries_from_events(li.events(), ri.events())
                    }
                    _ => elementary_boundaries(&l_sorted, (lts, lte), &r_sorted, (rts, rte)),
                };
                let cuts = choose_cuts(&boundaries, self.config.parallelism.max(1));
                // Slab workers share one pair counter; every worker checks
                // the token each `CANCEL_CHECK_INTERVAL` pairs, so a kill
                // or timeout lands mid-sweep on every thread. The tally is
                // flushed to the resource account at the same cadence so
                // `snapshot_stat_progress` moves while the join runs.
                // Without a context the closure is the bare pair test —
                // ctx-less execution (benches, ad-hoc Engine users) pays
                // nothing for cancellability.
                let (out, pstats) = match &self.ctx {
                    Some(ctx) => {
                        let pairs = AtomicU64::new(0);
                        let (out, pstats) = try_parallel_sweep_join_presorted::<_, String, _>(
                            &l_sorted,
                            &r_sorted,
                            (lts, lte),
                            (rts, rte),
                            &cuts,
                            |lr, rr| {
                                let seen = pairs.fetch_add(1, Ordering::Relaxed) + 1;
                                if seen.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                                    ctx.account.add_join_pairs(CANCEL_CHECK_INTERVAL);
                                    ctx.check()?;
                                }
                                let joined = lr.concat(rr);
                                Ok(eval_predicate(condition, &joined).then_some(joined))
                            },
                        )?;
                        ctx.account
                            .add_join_pairs(pairs.load(Ordering::Relaxed) % CANCEL_CHECK_INTERVAL);
                        ctx.account
                            .add_index_probes(if both_indexed { 2 } else { 0 });
                        (out, pstats)
                    }
                    None => parallel_sweep_join_presorted(
                        &l_sorted,
                        &r_sorted,
                        (lts, lte),
                        (rts, rte),
                        &cuts,
                        |lr, rr| {
                            let joined = lr.concat(rr);
                            eval_predicate(condition, &joined).then_some(joined)
                        },
                    ),
                };
                stats.record("ParallelSweepJoin", out.len());
                stats.record("ParallelSweepSlabs", pstats.slabs);
                out
            }
            JoinAlgo::IndexSweep if overlap.is_some() => {
                let (lts, lte, rts, rte) = overlap.unwrap();
                // Indexed scans reuse the table's begin-sorted event list
                // (scan output preserves table row order, so the index row
                // ids address the materialized rows directly); other inputs
                // are sorted on the fly.
                let l_sorted: Vec<&Row> = match &l_index {
                    Some((idx, _)) => idx.events().begin_order().map(|i| &left[i]).collect(),
                    None => sorted_by_begin(left, lts),
                };
                let r_sorted: Vec<&Row> = match &r_index {
                    Some((idx, _)) => idx.events().begin_order().map(|i| &right[i]).collect(),
                    None => sorted_by_begin(right, rts),
                };
                let mut out = Vec::new();
                // Same split as the parallel arm: the cancellation check
                // and live pair tally only ride along when a context is
                // attached; ctx-less sweeps keep the bare kernel closure.
                match &self.ctx {
                    Some(ctx) => {
                        let mut pairs = 0u64;
                        try_sweep_join_presorted(
                            &l_sorted,
                            &r_sorted,
                            (lts, lte),
                            (rts, rte),
                            |lr, rr| -> Result<(), String> {
                                pairs += 1;
                                if pairs.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                                    ctx.account.add_join_pairs(CANCEL_CHECK_INTERVAL);
                                    ctx.check()?;
                                }
                                let joined = lr.concat(rr);
                                if eval_predicate(condition, &joined) {
                                    out.push(joined);
                                }
                                Ok(())
                            },
                        )?;
                        ctx.account.add_join_pairs(pairs % CANCEL_CHECK_INTERVAL);
                        ctx.account
                            .add_index_probes(if both_indexed { 2 } else { 0 });
                    }
                    None => sweep_join_presorted(
                        &l_sorted,
                        &r_sorted,
                        (lts, lte),
                        (rts, rte),
                        |lr, rr| {
                            let joined = lr.concat(rr);
                            if eval_predicate(condition, &joined) {
                                out.push(joined);
                            }
                        },
                    ),
                }
                stats.record(
                    if both_indexed {
                        "IndexSweepJoin"
                    } else {
                        "SweepJoin"
                    },
                    out.len(),
                );
                out
            }
            JoinAlgo::MergeInterval if overlap.is_some() => {
                let (lts, lte, rts, rte) = overlap.unwrap();
                let out = merge_interval_join(
                    left,
                    right,
                    lts,
                    lte,
                    rts,
                    rte,
                    condition,
                    self.ctx.as_ref(),
                )?;
                stats.record("MergeIntervalJoin", out.len());
                out
            }
            JoinAlgo::Hash
            | JoinAlgo::IndexSweep
            | JoinAlgo::ParallelSweep
            | JoinAlgo::MergeInterval
                if !equi.is_empty() =>
            {
                let out = hash_join(left, right, &equi, condition, self.ctx.as_ref())?;
                stats.record("HashJoin", out.len());
                out
            }
            _ => {
                // Nested loop fallback.
                let mut out = Vec::new();
                let mut pairs = 0u64;
                for l in left {
                    for r in right {
                        if let Some(ctx) = &self.ctx {
                            pairs += 1;
                            if pairs.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                                ctx.account.add_join_pairs(CANCEL_CHECK_INTERVAL);
                                ctx.check()?;
                            }
                        }
                        let joined = l.concat(r);
                        if eval_predicate(condition, &joined) {
                            out.push(joined);
                        }
                    }
                }
                if let Some(ctx) = &self.ctx {
                    ctx.account.add_join_pairs(pairs % CANCEL_CHECK_INTERVAL);
                }
                stats.record("NestedLoopJoin", out.len());
                out
            }
        })
    }
}

/// The materialized inputs of a join together with their plans (the plans
/// carry the schemas and reveal indexed scans).
struct JoinInputs<'a> {
    left_plan: &'a Plan,
    right_plan: &'a Plan,
    left_rows: &'a [Row],
    right_rows: &'a [Row],
}

/// When `plan` is a scan of a table with a fresh index, returns the index
/// and the table. Errors only when the scanned table vanished from the
/// catalog.
fn indexed_scan<'a>(
    plan: &Plan,
    catalog: &'a Catalog,
    indexes: Option<&'a IndexCatalog>,
) -> Result<Option<(&'a index::TableIndex, &'a Table)>, String> {
    let Some(reg) = indexes else {
        return Ok(None);
    };
    let PlanNode::Scan { table } = &plan.node else {
        return Ok(None);
    };
    let t = catalog.require(table)?;
    if t.schema().arity() != plan.schema.arity() {
        return Ok(None); // stale binding: let the naive path report it
    }
    Ok(reg.get_fresh(table, t).map(|idx| (idx, t)))
}

/// Row references sorted ascending by the `ts` column.
fn sorted_by_begin(rows: &[Row], ts: usize) -> Vec<&Row> {
    let mut v: Vec<&Row> = rows.iter().collect();
    v.sort_by_key(|r| r.int(ts));
    v
}

fn op_name(node: &PlanNode) -> &'static str {
    match node {
        PlanNode::Scan { .. } => "Scan",
        PlanNode::VirtualScan { .. } => "VirtualScan",
        PlanNode::Values { .. } => "Values",
        PlanNode::Filter { .. } => "Filter",
        PlanNode::Project { .. } => "Project",
        PlanNode::Join { .. } => "Join",
        PlanNode::Union { .. } => "Union",
        PlanNode::ExceptAll { .. } => "ExceptAll",
        PlanNode::Aggregate { .. } => "Aggregate",
        PlanNode::Distinct { .. } => "Distinct",
        PlanNode::Sort { .. } => "Sort",
        PlanNode::Coalesce { .. } => "Coalesce",
        PlanNode::Timeslice { .. } => "Timeslice",
        PlanNode::TimeRange { .. } => "TimeRange",
        PlanNode::Split { .. } => "Split",
        PlanNode::TemporalAggregate { .. } => "TemporalAggregate",
        PlanNode::TemporalExceptAll { .. } => "TemporalExceptAll",
    }
}

fn collect_conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

/// Extracts `left_col = right_col` pairs from conjuncts.
fn equi_keys(conjuncts: &[&Expr], l_arity: usize) -> Vec<(usize, usize)> {
    let mut keys = Vec::new();
    // lint:allow(cancellation) bounded by predicate size
    for c in conjuncts {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = c
        {
            if let (Expr::Col(i), Expr::Col(j)) = (left.as_ref(), right.as_ref()) {
                if *i < l_arity && *j >= l_arity {
                    keys.push((*i, *j - l_arity));
                } else if *j < l_arity && *i >= l_arity {
                    keys.push((*j, *i - l_arity));
                }
            }
        }
    }
    keys
}

/// Detects the `overlaps` pattern produced by the rewriter:
/// `Col(lts) < Col(rte) AND Col(rts) < Col(lte)` on the trailing period
/// columns of both inputs. Returns local indices `(lts, lte, rts, rte)`.
fn overlap_pattern(
    conjuncts: &[&Expr],
    l_arity: usize,
    r_arity: usize,
) -> Option<(usize, usize, usize, usize)> {
    if l_arity < 2 || r_arity < 2 {
        return None;
    }
    let (lts, lte) = (l_arity - 2, l_arity - 1);
    let (rts_g, rte_g) = (l_arity + r_arity - 2, l_arity + r_arity - 1);
    let mut has_l_lt_r = false;
    let mut has_r_lt_l = false;
    // lint:allow(cancellation) bounded by predicate size
    for c in conjuncts {
        if let Expr::Binary {
            op: BinOp::Lt,
            left,
            right,
        } = c
        {
            if let (Expr::Col(i), Expr::Col(j)) = (left.as_ref(), right.as_ref()) {
                if *i == lts && *j == rte_g {
                    has_l_lt_r = true;
                }
                if *i == rts_g && *j == lte {
                    has_r_lt_l = true;
                }
            }
        }
    }
    (has_l_lt_r && has_r_lt_l).then_some((lts, lte, rts_g - l_arity, rte_g - l_arity))
}

fn hash_join(
    left: &[Row],
    right: &[Row],
    keys: &[(usize, usize)],
    condition: &Expr,
    ctx: Option<&ExecContext>,
) -> Result<Vec<Row>, String> {
    // Build on the smaller side; probe with the larger.
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left {
        (left, right)
    } else {
        (right, left)
    };
    let build_keys: Vec<usize> = keys
        .iter()
        .map(|&(l, r)| if build_left { l } else { r })
        .collect();
    let probe_keys: Vec<usize> = keys
        .iter()
        .map(|&(l, r)| if build_left { r } else { l })
        .collect();

    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(build.len());
    'build: for (n, row) in build.iter().enumerate() {
        if let Some(ctx) = ctx {
            // The build side can be arbitrarily large; poll the token at
            // the same cadence as the probe phase's pair counting.
            if (n as u64 + 1).is_multiple_of(CANCEL_CHECK_INTERVAL) {
                ctx.check()?;
            }
        }
        let mut key = Vec::with_capacity(build_keys.len());
        // lint:allow(cancellation) bounded by join-key arity
        for &i in &build_keys {
            let v = row.get(i);
            if v.is_null() {
                continue 'build; // NULL never joins
            }
            key.push(v.clone());
        }
        table.entry(key).or_default().push(row);
    }

    let mut out = Vec::new();
    let mut pairs = 0u64;
    'probe: for row in probe {
        let mut key = Vec::with_capacity(probe_keys.len());
        for &i in &probe_keys {
            let v = row.get(i);
            if v.is_null() {
                continue 'probe;
            }
            key.push(v.clone());
        }
        if let Some(matches) = table.get(&key) {
            for m in matches {
                if let Some(ctx) = ctx {
                    pairs += 1;
                    if pairs.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                        ctx.account.add_join_pairs(CANCEL_CHECK_INTERVAL);
                        ctx.check()?;
                    }
                }
                let joined = if build_left {
                    m.concat(row)
                } else {
                    row.concat(m)
                };
                if eval_predicate(condition, &joined) {
                    out.push(joined);
                }
            }
        }
    }
    if let Some(ctx) = ctx {
        ctx.account.add_join_pairs(pairs % CANCEL_CHECK_INTERVAL);
    }
    Ok(out)
}

/// Forward-scan plane sweep over interval overlap (Bouros & Mamoulis style):
/// both sides sorted by interval begin; each overlapping pair is emitted
/// exactly once, then filtered by the full join condition.
#[allow(clippy::too_many_arguments)]
fn merge_interval_join(
    left: &[Row],
    right: &[Row],
    lts: usize,
    lte: usize,
    rts: usize,
    rte: usize,
    condition: &Expr,
    ctx: Option<&ExecContext>,
) -> Result<Vec<Row>, String> {
    let mut l: Vec<&Row> = left.iter().collect();
    let mut r: Vec<&Row> = right.iter().collect();
    l.sort_by_key(|row| row.int(lts));
    r.sort_by_key(|row| row.int(rts));

    let mut out = Vec::new();
    let mut pairs = 0u64;
    let mut consider = |joined: Row, out: &mut Vec<Row>| -> Result<(), String> {
        if let Some(ctx) = ctx {
            pairs += 1;
            if pairs.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                ctx.account.add_join_pairs(CANCEL_CHECK_INTERVAL);
                ctx.check()?;
            }
        }
        if eval_predicate(condition, &joined) {
            out.push(joined);
        }
        Ok(())
    };
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        if l[i].int(lts) <= r[j].int(rts) {
            let end = l[i].int(lte);
            let mut k = j;
            while k < r.len() && r[k].int(rts) < end {
                consider(l[i].concat(r[k]), &mut out)?;
                k += 1;
            }
            i += 1;
        } else {
            let end = r[j].int(rte);
            let mut k = i;
            while k < l.len() && l[k].int(lts) < end {
                consider(l[k].concat(r[j]), &mut out)?;
                k += 1;
            }
            j += 1;
        }
    }
    if let Some(ctx) = ctx {
        ctx.account.add_join_pairs(pairs % CANCEL_CHECK_INTERVAL);
    }
    Ok(out)
}

fn except_all(left: Vec<Row>, right: &[Row]) -> Vec<Row> {
    let mut counts: HashMap<&Row, usize> = HashMap::with_capacity(right.len());
    // lint:allow(cancellation) single linear counting pass, no pair blowup
    for r in right {
        *counts.entry(r).or_insert(0) += 1;
    }
    left.into_iter()
        .filter(|l| {
            if let Some(c) = counts.get_mut(l) {
                if *c > 0 {
                    *c -= 1;
                    return false;
                }
            }
            true
        })
        .collect()
}

fn hash_aggregate(
    rows: &[Row],
    group_cols: &[usize],
    aggs: &[algebra::AggExpr],
    arg_types: &[storage::SqlType],
) -> Vec<Row> {
    let new_state = || -> Vec<SlidingAgg> {
        aggs.iter()
            .zip(arg_types)
            .map(|(a, ty)| SlidingAgg::new(a.func.clone(), *ty))
            .collect()
    };
    let mut groups: BTreeMap<Vec<Value>, Vec<SlidingAgg>> = BTreeMap::new();
    // lint:allow(cancellation) single linear pass over already-checked input
    for r in rows {
        let key: Vec<Value> = group_cols.iter().map(|&i| r.get(i).clone()).collect();
        let state = groups.entry(key).or_insert_with(new_state);
        for (a, s) in aggs.iter().zip(state.iter_mut()) {
            let mut p = Partial::new();
            let v = match &a.arg {
                Some(e) => eval_expr(e, r),
                None => Value::Int(1),
            };
            p.add_value(&v);
            s.add(&p);
        }
    }
    // Global aggregation produces one row even over empty input.
    if group_cols.is_empty() && groups.is_empty() {
        groups.insert(Vec::new(), new_state());
    }
    groups
        .into_iter()
        .map(|(mut key, state)| {
            key.extend(state.iter().map(|s| s.current()));
            Row::new(key)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{AggExpr, AggFunc};
    use storage::{row, Schema, SqlType};

    fn works_catalog() -> Catalog {
        let schema = Schema::of(&[
            ("name", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let mut t = Table::with_period(schema, 2, 3);
        t.push(row!["Ann", "SP", 3, 10]);
        t.push(row!["Joe", "NS", 8, 16]);
        t.push(row!["Sam", "SP", 8, 16]);
        t.push(row!["Ann", "SP", 18, 20]);
        let mut c = Catalog::new();
        c.register("works", t);
        c
    }

    fn works_schema() -> Schema {
        works_catalog().get("works").unwrap().schema().clone()
    }

    #[test]
    fn scan_filter_project() {
        let c = works_catalog();
        let plan = Plan::scan("works", works_schema())
            .filter(Expr::col(1).eq(Expr::lit("SP")))
            .project_cols(&[0]);
        let out = Engine::new().execute(&plan, &c).unwrap();
        let mut names: Vec<String> = out.rows().iter().map(|r| r.get(0).to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["Ann", "Ann", "Sam"]);
    }

    #[test]
    fn hash_join_with_residual() {
        let c = works_catalog();
        let l = Plan::scan("works", works_schema());
        let r = Plan::scan("works", works_schema());
        // Self-join on skill with a residual inequality on names.
        let cond =
            Expr::col(1)
                .eq(Expr::col(5))
                .and(Expr::binary(BinOp::Lt, Expr::col(0), Expr::col(4)));
        let plan = l.join(r, cond);
        let out = Engine::new().execute(&plan, &c).unwrap();
        // SP pairs with name_l < name_r: (Ann,Sam) twice (two Ann rows).
        assert_eq!(out.len(), 2);
        for row in out.rows() {
            assert_eq!(row.get(0), &Value::str("Ann"));
            assert_eq!(row.get(4), &Value::str("Sam"));
        }
    }

    #[test]
    fn join_null_keys_never_match() {
        let schema = Schema::of(&[("k", SqlType::Int)]);
        let mut t = Table::new(schema.clone());
        t.push(Row::new(vec![Value::Null]));
        t.push(row![1]);
        let mut c = Catalog::new();
        c.register("t", t);
        let plan = Plan::scan("t", schema.clone())
            .join(Plan::scan("t", schema), Expr::col(0).eq(Expr::col(1)));
        let out = Engine::new().execute(&plan, &c).unwrap();
        assert_eq!(out.len(), 1); // only (1,1)
    }

    #[test]
    fn merge_interval_join_matches_hash() {
        let c = works_catalog();
        let (lts, lte) = (2, 3);
        let (rts_g, rte_g) = (6, 7);
        let cond = Expr::col(1)
            .eq(Expr::col(5))
            .and(Expr::col(lts).lt(Expr::col(rte_g)))
            .and(Expr::col(rts_g).lt(Expr::col(lte)));
        let plan =
            Plan::scan("works", works_schema()).join(Plan::scan("works", works_schema()), cond);

        let hash = Engine::new().execute(&plan, &c).unwrap().canonicalized();
        let merge = Engine::with_config(EngineConfig {
            join_strategy: JoinStrategy::MergeInterval,
            ..EngineConfig::default()
        })
        .execute(&plan, &c)
        .unwrap()
        .canonicalized();
        assert_eq!(hash, merge);
        assert!(
            hash.len() >= 4,
            "self overlap join must match each row with itself"
        );
    }

    #[test]
    fn except_all_is_bag_difference() {
        let schema = Schema::of(&[("x", SqlType::Int)]);
        let l = Plan::values(schema.clone(), vec![row![1], row![1], row![1], row![2]]);
        let r = Plan::values(schema, vec![row![1], row![3]]);
        let plan = l.except_all(r).unwrap();
        let out = Engine::new().execute(&plan, &Catalog::new()).unwrap();
        let mut xs: Vec<i64> = out.rows().iter().map(|r| r.int(0)).collect();
        xs.sort();
        assert_eq!(xs, vec![1, 1, 2]); // one 1 removed, not all (no BD bug)
    }

    #[test]
    fn aggregation_groups_and_global() {
        let c = works_catalog();
        let plan = Plan::scan("works", works_schema())
            .aggregate(vec![1], vec![AggExpr::count_star("cnt")])
            .unwrap();
        let out = Engine::new().execute(&plan, &c).unwrap();
        let mut got: Vec<(String, i64)> = out
            .rows()
            .iter()
            .map(|r| (r.get(0).to_string(), r.int(1)))
            .collect();
        got.sort();
        assert_eq!(got, vec![("NS".into(), 1), ("SP".into(), 3)]);

        // Global count over empty input yields one row with 0.
        let empty = Plan::values(works_schema(), vec![])
            .aggregate(vec![], vec![AggExpr::count_star("cnt")])
            .unwrap();
        let out = Engine::new().execute(&empty, &Catalog::new()).unwrap();
        assert_eq!(out.rows(), &[row![0]]);
    }

    #[test]
    fn aggregation_min_max_sum_avg() {
        let schema = Schema::of(&[("g", SqlType::Str), ("v", SqlType::Int)]);
        let plan = Plan::values(schema, vec![row!["a", 1], row!["a", 5], row!["b", 10]])
            .aggregate(
                vec![0],
                vec![
                    AggExpr::new(AggFunc::Sum, Expr::col(1), "s"),
                    AggExpr::new(AggFunc::Avg, Expr::col(1), "avg"),
                    AggExpr::new(AggFunc::Min, Expr::col(1), "lo"),
                    AggExpr::new(AggFunc::Max, Expr::col(1), "hi"),
                ],
            )
            .unwrap();
        let out = Engine::new().execute(&plan, &Catalog::new()).unwrap();
        let rows = out.canonicalized();
        assert_eq!(
            rows.rows(),
            &[row!["a", 6, 3.0, 1, 5], row!["b", 10, 10.0, 10, 10]]
        );
    }

    #[test]
    fn distinct_and_sort() {
        let schema = Schema::of(&[("x", SqlType::Int)]);
        let plan = Plan::values(schema, vec![row![3], row![1], row![3], row![2]])
            .distinct()
            .sort(vec![(Expr::col(0), false)]);
        let out = Engine::new().execute(&plan, &Catalog::new()).unwrap();
        assert_eq!(out.rows(), &[row![3], row![2], row![1]]);
    }

    #[test]
    fn stats_are_collected() {
        let c = works_catalog();
        let plan = Plan::scan("works", works_schema()).filter(Expr::col(1).eq(Expr::lit("SP")));
        let mut stats = ExecStats::default();
        Engine::new()
            .execute_with_stats(&plan, &c, &mut stats)
            .unwrap();
        assert_eq!(stats.get("Scan"), Some((1, 4)));
        assert_eq!(stats.get("Filter"), Some((1, 3)));
    }

    #[test]
    fn unknown_table_is_an_error() {
        let plan = Plan::scan("nope", works_schema());
        let err = Engine::new().execute(&plan, &Catalog::new()).unwrap_err();
        assert!(err.contains("unknown table"));
    }

    /// Equality on skill plus the rewriter's overlap pattern.
    fn equi_overlap_self_join_plan() -> Plan {
        let (lts, lte) = (2, 3);
        let (rts_g, rte_g) = (6, 7);
        let cond = Expr::col(1)
            .eq(Expr::col(5))
            .and(Expr::col(lts).lt(Expr::col(rte_g)))
            .and(Expr::col(rts_g).lt(Expr::col(lte)));
        Plan::scan("works", works_schema()).join(Plan::scan("works", works_schema()), cond)
    }

    /// Pure overlap join (non-equality residual on names).
    fn pure_overlap_self_join_plan() -> Plan {
        let (lts, lte) = (2, 3);
        let (rts_g, rte_g) = (6, 7);
        let cond = Expr::binary(BinOp::Lt, Expr::col(0), Expr::col(4))
            .and(Expr::col(lts).lt(Expr::col(rte_g)))
            .and(Expr::col(rts_g).lt(Expr::col(lte)));
        Plan::scan("works", works_schema()).join(Plan::scan("works", works_schema()), cond)
    }

    #[test]
    fn indexed_sweep_join_matches_naive_and_is_dispatched() {
        let c = works_catalog();
        let indexes = IndexCatalog::build_all(&c);
        let plan = pure_overlap_self_join_plan();

        let naive = Engine::new().execute(&plan, &c).unwrap().canonicalized();
        let mut stats = ExecStats::default();
        let indexed = Engine::new()
            .execute_indexed_with_stats(&plan, &c, &indexes, &mut stats)
            .unwrap()
            .canonicalized();
        assert_eq!(naive, indexed);
        assert!(
            stats.get("IndexSweepJoin").is_some(),
            "indexed dispatch must be taken: {stats:?}"
        );
    }

    #[test]
    fn equi_keys_beat_the_sweep_under_auto() {
        // Equality conjuncts present: hash is the selective choice even
        // with fresh indexes on both sides — the sweep would enumerate all
        // temporally co-valid pairs before the equality filter.
        let c = works_catalog();
        let indexes = IndexCatalog::build_all(&c);
        let plan = equi_overlap_self_join_plan();
        let hash = Engine::new().execute(&plan, &c).unwrap().canonicalized();
        let mut stats = ExecStats::default();
        let indexed = Engine::new()
            .execute_indexed_with_stats(&plan, &c, &indexes, &mut stats)
            .unwrap()
            .canonicalized();
        assert_eq!(hash, indexed);
        assert!(
            stats.get("IndexSweepJoin").is_none() && stats.get("SweepJoin").is_none(),
            "Auto must pick hash over the sweep for equi joins: {stats:?}"
        );
    }

    #[test]
    fn stale_index_falls_back_to_naive_join() {
        let mut c = works_catalog();
        let indexes = IndexCatalog::build_all(&c);
        // Mutate the table after indexing: version mismatch → fallback.
        let mut t = c.get("works").unwrap().clone();
        t.push(row!["Eve", "SP", 0, 2]);
        c.register("works", t);

        let plan = pure_overlap_self_join_plan();
        let mut stats = ExecStats::default();
        let indexed = Engine::new()
            .execute_indexed_with_stats(&plan, &c, &indexes, &mut stats)
            .unwrap()
            .canonicalized();
        assert!(
            stats.get("IndexSweepJoin").is_none(),
            "must not use stale index"
        );
        let naive = Engine::new().execute(&plan, &c).unwrap().canonicalized();
        assert_eq!(naive, indexed);
    }

    #[test]
    fn explicit_sweep_without_indexes_matches_hash() {
        let c = works_catalog();
        let plan = {
            let (lts, lte) = (2, 3);
            let (rts_g, rte_g) = (6, 7);
            let cond = Expr::col(1)
                .eq(Expr::col(5))
                .and(Expr::col(lts).lt(Expr::col(rte_g)))
                .and(Expr::col(rts_g).lt(Expr::col(lte)));
            Plan::scan("works", works_schema()).join_with(
                Plan::scan("works", works_schema()),
                cond,
                algebra::JoinAlgo::IndexSweep,
            )
        };
        let mut stats = ExecStats::default();
        let sweep = Engine::new()
            .execute_with_stats(&plan, &c, &mut stats)
            .unwrap()
            .canonicalized();
        assert!(
            stats.get("SweepJoin").is_some(),
            "sort-on-the-fly sweep used"
        );
        let hash = Engine::new()
            .execute(&equi_overlap_self_join_plan(), &c)
            .unwrap()
            .canonicalized();
        assert_eq!(hash, sweep);
    }

    #[test]
    fn index_on_non_sweep_columns_is_not_used_for_the_sweep() {
        // The table's declared period is columns (0, 1), but the overlap
        // pattern always sweeps the trailing two columns (2, 3) of each
        // side. The index's begin order is over the wrong columns, so the
        // engine must ignore it (hash fallback), not feed it to the sweep.
        let schema = Schema::of(&[
            ("a", SqlType::Int),
            ("b", SqlType::Int),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let mut t = Table::with_period(schema.clone(), 0, 1);
        // Declared period (cols 0..1) deliberately orders differently than
        // the trailing columns the join sweeps.
        t.push(row![1, 9, 5, 7]);
        t.push(row![2, 9, 0, 6]);
        t.push(row![3, 9, 6, 8]);
        let mut c = Catalog::new();
        c.register("t", t);
        let indexes = IndexCatalog::build_all(&c);
        assert_eq!(indexes.len(), 1, "the (0,1) period is indexed");

        let (lts, lte) = (2, 3);
        let (rts_g, rte_g) = (6, 7);
        let cond = Expr::col(lts)
            .lt(Expr::col(rte_g))
            .and(Expr::col(rts_g).lt(Expr::col(lte)));
        let plan = Plan::scan("t", schema.clone()).join(Plan::scan("t", schema), cond);
        let naive = Engine::new().execute(&plan, &c).unwrap().canonicalized();
        let mut stats = ExecStats::default();
        let indexed = Engine::new()
            .execute_indexed_with_stats(&plan, &c, &indexes, &mut stats)
            .unwrap()
            .canonicalized();
        assert_eq!(naive, indexed);
        assert!(
            stats.get("IndexSweepJoin").is_none(),
            "mismatched period columns must not drive the sweep: {stats:?}"
        );
    }

    #[test]
    fn parallel_sweep_matches_sequential_and_is_dispatched() {
        let c = works_catalog();
        let indexes = IndexCatalog::build_all(&c);
        let plan = pure_overlap_self_join_plan();
        let sequential = Engine::new()
            .execute_indexed(&plan, &c, &indexes)
            .unwrap()
            .canonicalized();
        for parallelism in [1usize, 2, 4, 8] {
            let mut stats = ExecStats::default();
            let parallel = Engine::with_parallelism(parallelism)
                .execute_indexed_with_stats(&plan, &c, &indexes, &mut stats)
                .unwrap()
                .canonicalized();
            assert_eq!(sequential, parallel, "parallelism {parallelism}");
            if parallelism > 1 {
                assert!(
                    stats.get("ParallelSweepJoin").is_some(),
                    "Auto must route to the parallel sweep at parallelism \
                     {parallelism}: {stats:?}"
                );
            } else {
                assert!(
                    stats.get("IndexSweepJoin").is_some(),
                    "parallelism 1 keeps the sequential sweep: {stats:?}"
                );
            }
        }
    }

    #[test]
    fn explicit_parallel_sweep_hint_without_indexes() {
        // The hint works on non-indexed inputs too (sort-on-the-fly), and
        // falls back to hash when the condition has no overlap pattern.
        let c = works_catalog();
        let plan = {
            let (lts, lte) = (2, 3);
            let (rts_g, rte_g) = (6, 7);
            let cond = Expr::binary(BinOp::Lt, Expr::col(0), Expr::col(4))
                .and(Expr::col(lts).lt(Expr::col(rte_g)))
                .and(Expr::col(rts_g).lt(Expr::col(lte)));
            Plan::scan("works", works_schema()).join_with(
                Plan::scan("works", works_schema()),
                cond,
                algebra::JoinAlgo::ParallelSweep,
            )
        };
        let mut stats = ExecStats::default();
        let parallel = Engine::with_parallelism(3)
            .execute_with_stats(&plan, &c, &mut stats)
            .unwrap()
            .canonicalized();
        assert!(stats.get("ParallelSweepJoin").is_some(), "{stats:?}");
        let naive = Engine::new()
            .execute(&pure_overlap_self_join_plan(), &c)
            .unwrap()
            .canonicalized();
        assert_eq!(naive, parallel);

        // Equality-only condition: no overlap pattern, hash fallback.
        let equi = Plan::scan("works", works_schema()).join_with(
            Plan::scan("works", works_schema()),
            Expr::col(0).eq(Expr::col(4)),
            algebra::JoinAlgo::ParallelSweep,
        );
        let mut stats = ExecStats::default();
        Engine::with_parallelism(3)
            .execute_with_stats(&equi, &c, &mut stats)
            .unwrap();
        assert!(stats.get("ParallelSweepJoin").is_none(), "{stats:?}");
    }

    #[test]
    fn context_accounts_and_cancels() {
        let c = works_catalog();
        let account = Arc::new(obs::ResourceAccount::default());
        let token = Arc::new(obs::CancelToken::default());
        token.arm(None, None, None);
        let engine =
            Engine::new().with_context(ExecContext::new(Arc::clone(&account), Arc::clone(&token)));
        let plan = Plan::scan("works", works_schema()).filter(Expr::col(1).eq(Expr::lit("SP")));
        engine.execute(&plan, &c).unwrap();
        let usage = account.usage();
        assert_eq!(usage.rows_scanned, 4, "scan accounted");
        assert_eq!(usage.rows_emitted, 4 + 3, "scan + filter outputs");
        assert!(usage.bytes_materialized > 0);

        // A pre-tripped token fails execution with the cancel marker, and
        // the result is an error, not a partial table.
        token.cancel(obs::CancelKind::Killed);
        let err = engine.execute(&plan, &c).unwrap_err();
        assert!(obs::is_cancel_error(&err), "{err}");

        // A row-scan limit trips mid-plan.
        account.reset();
        token.arm(None, Some(2), None);
        let err = engine.execute(&plan, &c).unwrap_err();
        assert!(err.contains("max_rows_scanned"), "{err}");

        // Join pairs are accounted on the nested-loop path.
        account.reset();
        token.arm(None, None, None);
        let join = Plan::scan("works", works_schema()).join(
            Plan::scan("works", works_schema()),
            Expr::binary(BinOp::Lt, Expr::col(0), Expr::col(4)),
        );
        engine.execute(&join, &c).unwrap();
        assert_eq!(account.usage().join_pairs, 16, "4x4 pairs considered");
    }

    #[test]
    fn timeslice_indexed_and_linear_agree() {
        let c = works_catalog();
        let indexes = IndexCatalog::build_all(&c);
        for at in -1..25 {
            let plan = Plan::scan("works", works_schema()).timeslice(at);
            let linear = Engine::new().execute(&plan, &c).unwrap();
            let mut stats = ExecStats::default();
            let indexed = Engine::new()
                .execute_indexed_with_stats(&plan, &c, &indexes, &mut stats)
                .unwrap();
            assert_eq!(linear, indexed, "timeslice at {at}");
            assert!(
                stats.get("IndexTimeslice").is_some(),
                "indexed stabbing must be taken"
            );
        }
    }

    #[test]
    fn timeslice_respects_linear_hint() {
        let c = works_catalog();
        let indexes = IndexCatalog::build_all(&c);
        let plan =
            Plan::scan("works", works_schema()).timeslice_with(9, algebra::TimesliceAlgo::Linear);
        let mut stats = ExecStats::default();
        let out = Engine::new()
            .execute_indexed_with_stats(&plan, &c, &indexes, &mut stats)
            .unwrap();
        assert!(stats.get("IndexTimeslice").is_none());
        assert_eq!(out.len(), 3); // Ann [3,10), Joe [8,16), Sam [8,16)
    }

    #[test]
    fn time_range_indexed_and_linear_agree() {
        let c = works_catalog();
        let indexes = IndexCatalog::build_all(&c);
        for b in -1..22 {
            for e in [b + 1, b + 4, b + 12] {
                let plan = Plan::scan("works", works_schema()).time_range(b, e);
                let linear = Engine::new()
                    .execute(
                        &Plan::scan("works", works_schema()).time_range_with(
                            b,
                            e,
                            algebra::TimesliceAlgo::Linear,
                        ),
                        &c,
                    )
                    .unwrap();
                let mut stats = ExecStats::default();
                let indexed = Engine::new()
                    .execute_indexed_with_stats(&plan, &c, &indexes, &mut stats)
                    .unwrap();
                assert_eq!(linear, indexed, "time range [{b}, {e})");
                assert!(
                    stats.get("IndexTimeRange").is_some(),
                    "indexed overlap probe must be taken"
                );
            }
        }
    }

    #[test]
    fn coalesce_over_indexed_scan_uses_accelerator() {
        let c = works_catalog();
        let indexes = IndexCatalog::build_all(&c);
        let plan = Plan::scan("works", works_schema()).coalesce();
        let naive = Engine::new().execute(&plan, &c).unwrap();
        let mut stats = ExecStats::default();
        let accel = Engine::new()
            .execute_indexed_with_stats(&plan, &c, &indexes, &mut stats)
            .unwrap();
        assert_eq!(naive, accel);
        assert!(
            stats.get("IndexCoalesce").is_some(),
            "accelerator must be taken"
        );
    }
}
