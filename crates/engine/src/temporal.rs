//! Fused temporal aggregation and bag difference (paper Section 9).
//!
//! The naive rewrites of Figure 4 express snapshot aggregation and snapshot
//! `EXCEPT ALL` by materializing the split operator's output and then
//! applying ordinary hash aggregation / bag difference. The paper found it
//! "most effective to pre-aggregate the input before splitting and then
//! compute the final aggregation results during the split step": that fused
//! strategy is what these operators implement. The unfused path still exists
//! (`Aggregate`/`ExceptAll` over `Split`) and the ablation benchmark
//! compares the two.

use crate::eval::eval_expr;
use crate::sliding::{Partial, SlidingAgg};
use algebra::{AggExpr, AggFunc};
use std::collections::HashMap;
use storage::{Row, SqlType, Value};

/// Fused snapshot aggregation.
///
/// `rows` carry the period in the last two columns. Produces, per group and
/// per maximal interval between that group's endpoint events, one row
/// `group ++ aggregates ++ [ts, te]`. With `add_gap_neutral` (global
/// aggregation, `group_cols` empty), intervals of `[tmin, tmax)` not covered
/// by any row still produce output — `count` reports 0 and other functions
/// NULL, closing the aggregation gap (AG bug).
pub fn temporal_aggregate(
    rows: &[Row],
    arity: usize,
    group_cols: &[usize],
    aggs: &[AggExpr],
    arg_types: &[SqlType],
    add_gap_neutral: bool,
    domain: (i64, i64),
) -> Vec<Row> {
    assert!(
        !add_gap_neutral || group_cols.is_empty(),
        "gap rows are only defined for aggregation without grouping"
    );
    let (ts, te) = (arity - 2, arity - 1);

    // Partition by group key; pre-aggregate per (group, interval).
    type Key = Vec<Value>;
    let mut groups: HashMap<Key, HashMap<(i64, i64), Vec<Partial>>> = HashMap::new();
    for r in rows {
        let key: Key = group_cols.iter().map(|&i| r.get(i).clone()).collect();
        let iv = (r.int(ts), r.int(te));
        let partials = groups
            .entry(key)
            .or_default()
            .entry(iv)
            .or_insert_with(|| vec![Partial::new(); aggs.len()]);
        for (a, p) in aggs.iter().zip(partials.iter_mut()) {
            let v = match &a.arg {
                Some(e) => eval_expr(e, r),
                None => Value::Int(1), // count(*) counts rows
            };
            p.add_value(&v);
        }
    }

    if add_gap_neutral && groups.is_empty() {
        // No input at all: the whole domain is one gap.
        groups.insert(Vec::new(), HashMap::new());
    }

    let mut out = Vec::new();
    for (key, intervals) in &groups {
        // Events: (time, is_removal, interval-id). Additions at begin,
        // removals at end; both processed between segment emissions.
        let ivs: Vec<(&(i64, i64), &Vec<Partial>)> = intervals.iter().collect();
        let mut events: Vec<(i64, bool, usize)> = Vec::with_capacity(ivs.len() * 2);
        for (idx, ((b, e), _)) in ivs.iter().enumerate() {
            events.push((*b, false, idx));
            events.push((*e, true, idx));
        }
        if add_gap_neutral {
            // Anchor the sweep at the domain bounds so leading/trailing gaps
            // are emitted too (the `∪ {(null, Tmin, Tmax)}` of Figure 4).
            events.push((domain.0, false, usize::MAX));
            events.push((domain.1, true, usize::MAX));
        }
        events.sort_unstable_by_key(|(t, rem, _)| (*t, *rem));

        let mut state: Vec<SlidingAgg> = aggs
            .iter()
            .zip(arg_types)
            .map(|(a, ty)| SlidingAgg::new(a.func.clone(), *ty))
            .collect();
        let mut active = 0usize;
        let mut anchored = false;
        let mut prev_t = i64::MIN;
        let mut i = 0usize;
        while i < events.len() {
            let t = events[i].0;
            // Close the running segment [prev_t, t).
            if prev_t < t {
                if active > 0 {
                    let mut values: Vec<Value> = key.clone();
                    values.extend(state.iter().map(|s| s.current()));
                    values.push(Value::Int(prev_t));
                    values.push(Value::Int(t));
                    out.push(Row::new(values));
                } else if anchored && add_gap_neutral {
                    let mut values: Vec<Value> = key.clone();
                    values.extend(aggs.iter().map(|a| SlidingAgg::gap_value(&a.func)));
                    values.push(Value::Int(prev_t));
                    values.push(Value::Int(t));
                    out.push(Row::new(values));
                }
            }
            // Apply all events at t.
            while i < events.len() && events[i].0 == t {
                let (_, is_removal, idx) = events[i];
                if idx == usize::MAX {
                    anchored = !is_removal;
                } else if is_removal {
                    for (s, p) in state.iter_mut().zip(&ivs[idx].1[..]) {
                        s.remove(p);
                    }
                    active -= 1;
                } else {
                    for (s, p) in state.iter_mut().zip(&ivs[idx].1[..]) {
                        s.add(p);
                    }
                    active += 1;
                }
                i += 1;
            }
            prev_t = t;
        }
    }
    out
}

/// Fused snapshot bag difference (`EXCEPT ALL` under snapshot semantics).
///
/// Both inputs carry the period in their last two columns and are
/// union-compatible. For every value-equivalent row group and every maximal
/// interval between the group's endpoints, emits
/// `max(0, multiplicity_left − multiplicity_right)` copies — the monus of
/// `N^T` (Theorem 7.1) evaluated on the interval refinement instead of
/// per time point.
pub fn temporal_except_all(left: &[Row], right: &[Row], arity: usize) -> Vec<Row> {
    let (ts, te) = (arity - 2, arity - 1);
    type Key = Vec<Value>;

    // Per value-equivalent key: +1/−1 events for each side.
    #[derive(Default)]
    struct SideEvents {
        left: Vec<(i64, i64)>,
        right: Vec<(i64, i64)>,
    }
    let mut groups: HashMap<Key, SideEvents> = HashMap::new();
    for r in left {
        let key: Key = r.values()[..ts].to_vec();
        let ev = groups.entry(key).or_default();
        ev.left.push((r.int(ts), 1));
        ev.left.push((r.int(te), -1));
    }
    for r in right {
        let key: Key = r.values()[..ts].to_vec();
        let ev = groups.entry(key).or_default();
        ev.right.push((r.int(ts), 1));
        ev.right.push((r.int(te), -1));
    }

    let mut out = Vec::new();
    for (key, ev) in groups {
        if ev.left.is_empty() {
            continue; // nothing to subtract from
        }
        let mut events: Vec<(i64, i64, i64)> = Vec::with_capacity(ev.left.len() + ev.right.len());
        for (t, d) in ev.left {
            events.push((t, d, 0));
        }
        for (t, d) in ev.right {
            events.push((t, 0, d));
        }
        events.sort_unstable_by_key(|(t, _, _)| *t);

        let (mut lcount, mut rcount) = (0i64, 0i64);
        let mut prev_t = i64::MIN;
        let mut i = 0usize;
        while i < events.len() {
            let t = events[i].0;
            if prev_t < t {
                let mult = (lcount - rcount).max(0);
                if mult > 0 {
                    let mut values = key.clone();
                    values.push(Value::Int(prev_t));
                    values.push(Value::Int(t));
                    let row = Row::new(values);
                    for _ in 0..mult {
                        out.push(row.clone());
                    }
                }
            }
            while i < events.len() && events[i].0 == t {
                lcount += events[i].1;
                rcount += events[i].2;
                i += 1;
            }
            prev_t = t;
        }
    }
    out
}

/// Resolves the argument type of each aggregate against an input schema —
/// helper shared by the executor and the baselines.
pub fn agg_arg_types(aggs: &[AggExpr], schema: &storage::Schema) -> Result<Vec<SqlType>, String> {
    aggs.iter()
        .map(|a| match (&a.func, &a.arg) {
            (AggFunc::CountStar, _) => Ok(SqlType::Int),
            (_, Some(e)) => e.infer_type(schema),
            (f, None) => Err(format!("{f} requires an argument")),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::Expr;
    use storage::row;

    /// Q_onduty, fused: count(*) over works SP rows with gap rows.
    #[test]
    fn figure_1b_counts_with_gaps() {
        // σ_skill=SP(works) projected to (ts, te) only: arity 2.
        let rows = vec![row![3, 10], row![8, 16], row![18, 20]];
        let aggs = vec![AggExpr::count_star("cnt")];
        let out = temporal_aggregate(&rows, 2, &[], &aggs, &[SqlType::Int], true, (0, 24));
        let mut got: Vec<(i64, i64, i64)> =
            out.iter().map(|r| (r.int(1), r.int(2), r.int(0))).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            vec![
                (0, 3, 0),
                (3, 8, 1),
                (8, 10, 2),
                (10, 16, 1),
                (16, 18, 0),
                (18, 20, 1),
                (20, 24, 0),
            ]
        );
    }

    #[test]
    fn grouped_aggregation_no_gap_rows() {
        // salaries per department over time.
        let rows = vec![
            row!["d1", 100, 0, 10],
            row!["d1", 200, 5, 10],
            row!["d2", 50, 2, 4],
        ];
        let aggs = vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "total")];
        let out = temporal_aggregate(&rows, 4, &[0], &aggs, &[SqlType::Int], false, (0, 24));
        let mut got: Vec<(String, i64, i64, Value)> = out
            .iter()
            .map(|r| (r.get(0).to_string(), r.int(2), r.int(3), r.get(1).clone()))
            .collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                ("d1".into(), 0, 5, Value::Int(100)),
                ("d1".into(), 5, 10, Value::Int(300)),
                ("d2".into(), 2, 4, Value::Int(50)),
            ]
        );
    }

    #[test]
    fn min_max_slide_correctly_through_time() {
        let rows = vec![row!["g", 5, 0, 10], row!["g", 1, 3, 6]];
        let aggs = vec![
            AggExpr::new(AggFunc::Min, Expr::col(1), "lo"),
            AggExpr::new(AggFunc::Max, Expr::col(1), "hi"),
        ];
        let out = temporal_aggregate(
            &rows,
            4,
            &[0],
            &aggs,
            &[SqlType::Int, SqlType::Int],
            false,
            (0, 24),
        );
        let mut got: Vec<(i64, i64, i64, i64)> = out
            .iter()
            .map(|r| (r.int(3), r.int(4), r.int(1), r.int(2)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 3, 5, 5), (3, 6, 1, 5), (6, 10, 5, 5)]);
    }

    #[test]
    fn avg_over_gap_is_null() {
        let rows = vec![row![10, 2, 4]];
        let aggs = vec![AggExpr::new(AggFunc::Avg, Expr::col(0), "a")];
        let out = temporal_aggregate(&rows, 3, &[], &aggs, &[SqlType::Int], true, (0, 6));
        let mut got: Vec<(i64, i64, Value)> = out
            .iter()
            .map(|r| (r.int(1), r.int(2), r.get(0).clone()))
            .collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                (0, 2, Value::Null),
                (2, 4, Value::Double(10.0)),
                (4, 6, Value::Null),
            ]
        );
    }

    #[test]
    fn empty_input_global_aggregation_covers_domain() {
        let aggs = vec![AggExpr::count_star("cnt")];
        let out = temporal_aggregate(&[], 2, &[], &aggs, &[SqlType::Int], true, (0, 24));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], row![0, 0, 24]);
    }

    // ---- snapshot bag difference -----------------------------------

    #[test]
    fn figure_1c_except_all() {
        // Π_skill(assign) EXCEPT ALL Π_skill(works), periods attached.
        let assign = vec![row!["SP", 3, 12], row!["SP", 6, 14], row!["NS", 3, 16]];
        let works = vec![
            row!["SP", 3, 10],
            row!["SP", 8, 16],
            row!["SP", 18, 20],
            row!["NS", 8, 16],
        ];
        let mut out = temporal_except_all(&assign, &works, 3);
        out.sort();
        assert_eq!(
            out,
            vec![row!["NS", 3, 8], row!["SP", 6, 8], row!["SP", 10, 12],]
        );
    }

    #[test]
    fn multiplicities_subtract_not_exist() {
        // 3 copies minus 1 copy leaves 2 copies — NOT EXISTS-style difference
        // would wrongly remove all (the BD bug).
        let left = vec![row!["x", 0, 10], row!["x", 0, 10], row!["x", 0, 10]];
        let right = vec![row!["x", 0, 10]];
        let out = temporal_except_all(&left, &right, 3);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn subtraction_respects_time() {
        let left = vec![row!["x", 0, 10]];
        let right = vec![row!["x", 4, 6]];
        let mut out = temporal_except_all(&left, &right, 3);
        out.sort();
        assert_eq!(out, vec![row!["x", 0, 4], row!["x", 6, 10]]);
    }

    #[test]
    fn excess_right_ignored() {
        let left = vec![row!["x", 0, 5]];
        let right = vec![row!["x", 0, 5], row!["x", 0, 5]];
        assert!(temporal_except_all(&left, &right, 3).is_empty());
        // And right-only keys produce nothing.
        let right_only = vec![row!["y", 0, 5]];
        assert!(temporal_except_all(&[], &right_only, 3).is_empty());
    }
}
