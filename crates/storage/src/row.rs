//! Rows: tuples of SQL values.

use crate::Value;
use std::fmt;

/// A row of a relation. Wraps `Vec<Value>` and inherits the canonical total
/// order of [`Value`], so multisets of rows can be sorted deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Creates a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Builds a row from anything convertible into values.
    pub fn of<const N: usize>(values: [Value; N]) -> Self {
        Row(values.to_vec())
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at column `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// The values as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Concatenates two rows (used by joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v)
    }

    /// Projects the row onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Appends a value, returning the extended row.
    pub fn with(&self, v: Value) -> Row {
        let mut out = self.0.clone();
        out.push(v);
        Row(out)
    }

    /// The integer at column `i`.
    ///
    /// # Panics
    /// Panics when the column is not an `Int` — used for period endpoints,
    /// which the schema layer guarantees to be integers.
    #[inline]
    pub fn int(&self, i: usize) -> i64 {
        self.0[i]
            .as_int()
            .unwrap_or_else(|| panic!("column {i} is not an Int: {:?}", self.0[i]))
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row(iter.into_iter().collect())
    }
}

/// Builds a row from literal-ish values: `row![1, "x", 3.5]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let r = row![1, "x", 2.5, true];
        assert_eq!(r.arity(), 4);
        assert_eq!(r.get(0), &Value::Int(1));
        assert_eq!(r.get(1), &Value::str("x"));
        assert_eq!(r.int(0), 1);
    }

    #[test]
    fn concat_and_project() {
        let a = row![1, "x"];
        let b = row![2.5];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.project(&[2, 0]), row![2.5, 1]);
    }

    #[test]
    fn rows_sort_canonically() {
        let mut rows = vec![row![2, "b"], row![1, "z"], row![1, "a"]];
        rows.sort();
        assert_eq!(rows, vec![row![1, "a"], row![1, "z"], row![2, "b"]]);
    }

    #[test]
    fn display() {
        assert_eq!(row![1, "x"].to_string(), "(1, x)");
    }

    #[test]
    #[should_panic(expected = "not an Int")]
    fn int_accessor_panics_on_type_error() {
        let r = row!["x"];
        let _ = r.int(0);
    }
}
