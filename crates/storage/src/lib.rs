//! Relational storage for the embedded engine: values, rows, schemas,
//! period tables, and the catalog.
//!
//! The paper's implementation layer operates on *SQL period relations*:
//! ordinary multiset relations in which two designated attributes hold the
//! begin and end points of each tuple's validity interval (Section 8). This
//! crate provides exactly that substrate:
//!
//! * [`Value`] — a dynamically typed SQL value with SQL-style `NULL` and a
//!   total canonical order (so relations have a deterministic, unique
//!   physical order — part of delivering the paper's *unique encoding*),
//! * [`Row`] — a tuple of values,
//! * [`Schema`]/[`Column`]/[`SqlType`] — named, typed, optionally
//!   table-qualified columns,
//! * [`Table`] — a multiset of rows plus an optional period specification,
//! * [`Catalog`] — the named-table namespace queries are bound against.

mod catalog;
mod row;
mod schema;
mod table;
mod value;

pub use catalog::Catalog;
pub use row::Row;
pub use schema::{Column, Schema, SqlType};
pub use table::Table;
pub use value::Value;
