//! The catalog: the namespace of stored tables.

use crate::Table;
use std::collections::BTreeMap;

/// A named collection of tables; queries are bound against a catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table under `name`.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Removes (drops) a table, returning it when it existed.
    pub fn remove(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Looks up a table.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Looks up a table mutably (DML entry point of the session layer).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Looks up a table, with a useful error.
    pub fn require(&self, name: &str) -> Result<&Table, String> {
        self.tables
            .get(name)
            .ok_or_else(|| format!("unknown table '{name}'"))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total rows across all tables (used by dataset loaders to report
    /// sizes).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{row, Schema, SqlType};

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        let mut t = Table::new(Schema::of(&[("x", SqlType::Int)]));
        t.push(row![1]);
        c.register("nums", t);
        assert!(c.get("nums").is_some());
        assert!(c.get("other").is_none());
        assert!(c.require("other").unwrap_err().contains("unknown table"));
        assert_eq!(c.total_rows(), 1);
        assert_eq!(c.table_names().collect::<Vec<_>>(), vec!["nums"]);
    }
}
