//! The catalog: the namespace of stored tables.

use crate::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named collection of tables; queries are bound against a catalog.
///
/// Tables are held behind [`Arc`], so cloning a catalog is a cheap
/// copy-on-write *snapshot*: the clone shares every table with the
/// original, and [`Catalog::get_mut`] unshares ([`Arc::make_mut`]) a table
/// only when someone actually mutates it. Combined with the globally
/// unique [`Table::version`] epochs this is the substrate of the MVCC
/// layer — a snapshot pinned by a reader keeps its tables alive and
/// unchanged no matter what later writers do to other clones.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table under `name`.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), Arc::new(table));
    }

    /// Registers (or replaces) a table that is already shared — the MVCC
    /// publish path, which moves a transaction's copy-on-write table into
    /// the committed catalog without copying its rows.
    pub fn register_shared(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into(), table);
    }

    /// Removes (drops) a table, returning it when it existed.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tables.remove(name)
    }

    /// Looks up a table.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(Arc::as_ref)
    }

    /// Looks up a table's shared handle (snapshot pinning and the MVCC
    /// publish path).
    pub fn get_shared(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Looks up a table mutably (DML entry point of the session layer).
    /// When the table is shared with a snapshot, this *unshares* it first
    /// (clones the rows), so pinned snapshots never observe the mutation.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name).map(Arc::make_mut)
    }

    /// Looks up a table, with a useful error.
    pub fn require(&self, name: &str) -> Result<&Table, String> {
        self.tables
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| format!("unknown table '{name}'"))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total rows across all tables (used by dataset loaders to report
    /// sizes).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{row, Schema, SqlType};

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        let mut t = Table::new(Schema::of(&[("x", SqlType::Int)]));
        t.push(row![1]);
        c.register("nums", t);
        assert!(c.get("nums").is_some());
        assert!(c.get("other").is_none());
        assert!(c.require("other").unwrap_err().contains("unknown table"));
        assert_eq!(c.total_rows(), 1);
        assert_eq!(c.table_names().collect::<Vec<_>>(), vec!["nums"]);
    }

    #[test]
    fn clones_are_copy_on_write_snapshots() {
        let mut c = Catalog::new();
        let mut t = Table::new(Schema::of(&[("x", SqlType::Int)]));
        t.push(row![1]);
        c.register("nums", t);
        let snapshot = c.clone();
        // The clone shares the table...
        assert!(Arc::ptr_eq(
            c.get_shared("nums").unwrap(),
            snapshot.get_shared("nums").unwrap()
        ));
        // ...until a writer mutates it: the snapshot keeps the old rows
        // (and the old version epoch — its identity).
        let v_before = snapshot.get("nums").unwrap().version();
        c.get_mut("nums").unwrap().push(row![2]);
        assert_eq!(c.get("nums").unwrap().len(), 2);
        assert_eq!(snapshot.get("nums").unwrap().len(), 1);
        assert_eq!(snapshot.get("nums").unwrap().version(), v_before);
        assert!(!Arc::ptr_eq(
            c.get_shared("nums").unwrap(),
            snapshot.get_shared("nums").unwrap()
        ));
    }
}
