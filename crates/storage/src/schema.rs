//! Schemas: named, typed, optionally table-qualified columns.

use std::fmt;

/// SQL column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// Booleans.
    Bool,
    /// 64-bit integers (also the type of period endpoints).
    Int,
    /// 64-bit floats.
    Double,
    /// Strings.
    Str,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SqlType::Bool => "BOOL",
            SqlType::Int => "INT",
            SqlType::Double => "DOUBLE",
            SqlType::Str => "TEXT",
        };
        write!(f, "{s}")
    }
}

/// A column: a name, an optional table qualifier, and a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Column name (lower-cased by the SQL layer).
    pub name: String,
    /// Table or alias qualifier, when known.
    pub table: Option<String>,
    /// Column type.
    pub ty: SqlType,
}

impl Column {
    /// An unqualified column.
    pub fn new(name: impl Into<String>, ty: SqlType) -> Self {
        Column {
            name: name.into(),
            table: None,
            ty,
        }
    }

    /// A table-qualified column.
    pub fn qualified(table: impl Into<String>, name: impl Into<String>, ty: SqlType) -> Self {
        Column {
            name: name.into(),
            table: Some(table.into()),
            ty,
        }
    }

    /// Whether this column answers to `name` under optional qualifier
    /// `table` (case-sensitive; the SQL layer lower-cases identifiers).
    pub fn matches(&self, table: Option<&str>, name: &str) -> bool {
        self.name == name && (table.is_none() || self.table.as_deref() == table)
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.table {
            write!(f, "{t}.")?;
        }
        write!(f, "{}", self.name)
    }
}

/// A relation schema: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, SqlType)]) -> Self {
        Schema {
            columns: cols.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Resolves `name` (optionally `table.name`) to a column index.
    ///
    /// Returns `Err` with a diagnostic when the name is unknown or
    /// ambiguous — ambiguity matters once joins concatenate schemas.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize, String> {
        let mut hits = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(table, name));
        match (hits.next(), hits.next()) {
            (None, _) => Err(format!(
                "unknown column {}{name}",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            )),
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(format!(
                "ambiguous column {}{name}",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            )),
        }
    }

    /// Concatenates two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// A copy with every column re-qualified to `alias` (FROM-clause
    /// aliasing: `FROM works w`).
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    table: Some(alias.to_string()),
                    ty: c.ty,
                })
                .collect(),
        }
    }

    /// A copy with all qualifiers dropped (subquery output).
    pub fn unqualified(&self) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    table: None,
                    ty: c.ty,
                })
                .collect(),
        }
    }

    /// Appends a column, returning the extended schema.
    pub fn with_column(&self, c: Column) -> Schema {
        let mut columns = self.columns.clone();
        columns.push(c);
        Schema { columns }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c} {}", c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[("name", SqlType::Str), ("skill", SqlType::Str)])
    }

    #[test]
    fn resolve_by_name() {
        let s = schema();
        assert_eq!(s.resolve(None, "skill"), Ok(1));
        assert!(s.resolve(None, "nope").is_err());
    }

    #[test]
    fn resolve_with_qualifier() {
        let s = schema().with_qualifier("w");
        assert_eq!(s.resolve(Some("w"), "name"), Ok(0));
        assert!(s.resolve(Some("x"), "name").is_err());
        // Unqualified reference still works.
        assert_eq!(s.resolve(None, "name"), Ok(0));
    }

    #[test]
    fn ambiguity_detected() {
        let joined = schema()
            .with_qualifier("a")
            .concat(&schema().with_qualifier("b"));
        let err = joined.resolve(None, "name").unwrap_err();
        assert!(err.contains("ambiguous"));
        assert_eq!(joined.resolve(Some("b"), "name"), Ok(2));
    }

    #[test]
    fn concat_and_extend() {
        let s = schema().with_column(Column::new("ts", SqlType::Int));
        assert_eq!(s.arity(), 3);
        assert_eq!(s.resolve(None, "ts"), Ok(2));
    }

    #[test]
    fn display() {
        assert_eq!(schema().to_string(), "(name TEXT, skill TEXT)");
    }
}
