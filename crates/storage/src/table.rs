//! Tables: multisets of rows, optionally with a period specification.

use crate::{Row, Schema, SqlType, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use timeline::Interval;

/// Process-wide version epoch source: every table construction and every
/// mutation draws a fresh, never-repeated value. Uniqueness (rather than a
/// per-instance counter) is what makes version comparison a sound staleness
/// check even when a catalog entry is *replaced* by a different table, or
/// when two clones of one table diverge independently.
static VERSION_EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    VERSION_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A stored relation: a schema, a multiset of rows (duplicates are separate
/// rows, as in SQL), and an optional *period specification* naming the two
/// integer columns that hold each tuple's validity interval `[begin, end)`.
///
/// Every construction and mutation stamps the table with a fresh, globally
/// unique [`Table::version`] epoch — the maintenance hook the `index` crate
/// uses to detect stale table indexes without storing back-pointers in the
/// storage layer.
#[derive(Debug, Clone, Eq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
    period: Option<(usize, usize)>,
    version: u64,
}

// Equality ignores the version counter: two tables with the same schema,
// rows, and period are the same relation regardless of mutation history.
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows && self.period == other.period
    }
}

impl Table {
    /// Creates an empty, non-temporal table.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            period: None,
            version: next_version(),
        }
    }

    /// Creates an empty period table; `begin`/`end` are column indices.
    ///
    /// # Panics
    /// Panics when the indicated columns are not integers.
    pub fn with_period(schema: Schema, begin: usize, end: usize) -> Self {
        assert_eq!(
            schema.column(begin).ty,
            SqlType::Int,
            "period begin column must be INT"
        );
        assert_eq!(
            schema.column(end).ty,
            SqlType::Int,
            "period end column must be INT"
        );
        Table {
            schema,
            rows: Vec::new(),
            period: Some((begin, end)),
            version: next_version(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows (multiset: duplicates appear repeatedly).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The period column indices, when this is a period table.
    pub fn period(&self) -> Option<(usize, usize)> {
        self.period
    }

    /// The version epoch: refreshed to a globally unique value by every
    /// content change ([`Table::push`], [`Table::extend`],
    /// [`Table::canonicalize`]). Index structures record the version they
    /// were built at and treat any mismatch as stale; uniqueness across
    /// tables means a replaced catalog entry can never masquerade as the
    /// indexed one. Clones share the epoch until either side mutates (a
    /// clone has identical content, so sharing is sound).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics on arity mismatch or (for period tables) `begin >= end`.
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.arity(),
            self.schema.arity(),
            "row arity {} does not match schema arity {}",
            row.arity(),
            self.schema.arity()
        );
        if let Some((b, e)) = self.period {
            assert!(
                row.int(b) < row.int(e),
                "period tuple must satisfy begin < end, got [{}, {})",
                row.int(b),
                row.int(e)
            );
        }
        self.rows.push(row);
        self.version = next_version();
    }

    /// Bulk-extends the table.
    pub fn extend<I: IntoIterator<Item = Row>>(&mut self, rows: I) {
        for r in rows {
            self.push(r);
        }
    }

    /// The validity interval of a row (requires a period table).
    pub fn interval_of(&self, row: &Row) -> Interval {
        let (b, e) = self
            .period
            .expect("interval_of called on a non-temporal table");
        Interval::new(row.int(b), row.int(e))
    }

    /// Sorts rows into the canonical order, making the physical encoding of
    /// the multiset deterministic. Together with coalesced annotations this
    /// realizes the *unique encoding* requirement of Definition 4.5 at the
    /// implementation layer.
    pub fn canonicalize(&mut self) {
        self.rows.sort_unstable();
        self.version = next_version();
    }

    /// A canonically sorted copy.
    pub fn canonicalized(&self) -> Table {
        let mut t = self.clone();
        t.canonicalize();
        t
    }

    /// Renders the table like a psql result, for examples and debugging.
    pub fn to_pretty_string(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.to_string())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!(" {c:<w$} "))
                .collect();
            format!("|{}|", body.join("|"))
        };
        let sep: String = format!(
            "+{}+",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("+")
        );
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push_str(&format!("\n({} rows)\n", self.rows.len()));
        out
    }

    /// Helper for building tables in tests and examples: rows of plain
    /// values with a trailing `[begin, end)` period.
    pub fn period_table_from(
        schema: Schema,
        begin: usize,
        end: usize,
        rows: Vec<Vec<Value>>,
    ) -> Table {
        let mut t = Table::with_period(schema, begin, end);
        for r in rows {
            t.push(Row::new(r));
        }
        t
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pretty_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn works_schema() -> Schema {
        Schema::of(&[
            ("name", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ])
    }

    #[test]
    fn period_table_roundtrip() {
        let mut t = Table::with_period(works_schema(), 2, 3);
        t.push(row!["Ann", "SP", 3, 10]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.interval_of(&t.rows()[0]), Interval::new(3, 10));
    }

    #[test]
    #[should_panic(expected = "begin < end")]
    fn invalid_period_rejected() {
        let mut t = Table::with_period(works_schema(), 2, 3);
        t.push(row!["Ann", "SP", 10, 3]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(works_schema());
        t.push(row!["Ann", "SP"]);
    }

    #[test]
    #[should_panic(expected = "must be INT")]
    fn period_column_type_checked() {
        let _ = Table::with_period(works_schema(), 0, 3);
    }

    #[test]
    fn versions_are_globally_unique_epochs() {
        // Two tables built with identical push sequences must not share a
        // version: a catalog entry replaced by a look-alike table has to
        // read as stale to any index built on the original.
        let build = || {
            let mut t = Table::with_period(works_schema(), 2, 3);
            t.push(row!["Ann", "SP", 3, 10]);
            t
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b, "content-equal (version ignored by Eq)");
        assert_ne!(a.version(), b.version(), "but version epochs differ");

        // Divergent clones also end on different epochs.
        let (mut c1, mut c2) = (a.clone(), a.clone());
        assert_eq!(c1.version(), c2.version(), "unchanged clones share");
        c1.push(row!["Joe", "NS", 8, 16]);
        c2.push(row!["Sam", "SP", 8, 16]);
        assert_ne!(c1.version(), c2.version());

        // Every mutation refreshes the epoch.
        let before = c1.version();
        c1.canonicalize();
        assert_ne!(before, c1.version());
    }

    #[test]
    fn canonicalization_sorts() {
        let mut t = Table::new(Schema::of(&[("x", SqlType::Int)]));
        t.push(row![3]);
        t.push(row![1]);
        t.push(row![2]);
        t.canonicalize();
        assert_eq!(t.rows(), &[row![1], row![2], row![3]]);
    }

    #[test]
    fn pretty_print_contains_data() {
        let mut t = Table::new(Schema::of(&[("n", SqlType::Str)]));
        t.push(row!["hello"]);
        let s = t.to_pretty_string();
        assert!(s.contains("hello"));
        assert!(s.contains("(1 rows)"));
    }
}
