//! Tables: multisets of rows, optionally with a period specification.

use crate::{Row, Schema, SqlType, Value};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use timeline::Interval;

/// Process-wide version epoch source: every table construction and every
/// mutation draws a fresh, never-repeated value. Uniqueness (rather than a
/// per-instance counter) is what makes version comparison a sound staleness
/// check even when a catalog entry is *replaced* by a different table, or
/// when two clones of one table diverge independently.
static VERSION_EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_version() -> u64 {
    VERSION_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// How many append checkpoints a table keeps (see
/// [`Table::appended_since`]): an index older than this many append batches
/// falls back to a full rebuild.
const MAX_APPEND_CHECKPOINTS: usize = 64;

/// A stored relation: a schema, a multiset of rows (duplicates are separate
/// rows, as in SQL), and an optional *period specification* naming the two
/// integer columns that hold each tuple's validity interval `[begin, end)`.
///
/// Every construction and mutation stamps the table with a fresh, globally
/// unique [`Table::version`] epoch — the maintenance hook the `index` crate
/// uses to detect stale table indexes without storing back-pointers in the
/// storage layer.
#[derive(Debug, Clone, Eq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
    period: Option<(usize, usize)>,
    version: u64,
    /// Recent `(version, len)` states reachable from the current state by
    /// *removing appended rows only*: entry `(v, l)` means "at version `v`
    /// this table was exactly `rows[0..l]`". Appends push a checkpoint;
    /// structural mutations (sort, delete, update) clear the history. This
    /// is what lets index maintenance extend an index incrementally instead
    /// of rebuilding — see [`Table::appended_since`].
    append_checkpoints: Vec<(u64, usize)>,
}

// Equality ignores the version counter: two tables with the same schema,
// rows, and period are the same relation regardless of mutation history.
impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows && self.period == other.period
    }
}

impl Table {
    /// Creates an empty, non-temporal table.
    pub fn new(schema: Schema) -> Self {
        let version = next_version();
        Table {
            schema,
            rows: Vec::new(),
            period: None,
            version,
            append_checkpoints: vec![(version, 0)],
        }
    }

    /// Creates an empty period table; `begin`/`end` are column indices.
    ///
    /// # Panics
    /// Panics when the indicated columns are not integers.
    pub fn with_period(schema: Schema, begin: usize, end: usize) -> Self {
        assert_eq!(
            schema.column(begin).ty,
            SqlType::Int,
            "period begin column must be INT"
        );
        assert_eq!(
            schema.column(end).ty,
            SqlType::Int,
            "period end column must be INT"
        );
        let version = next_version();
        Table {
            schema,
            rows: Vec::new(),
            period: Some((begin, end)),
            version,
            append_checkpoints: vec![(version, 0)],
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows (multiset: duplicates appear repeatedly).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The period column indices, when this is a period table.
    pub fn period(&self) -> Option<(usize, usize)> {
        self.period
    }

    /// The version epoch: refreshed to a globally unique value by every
    /// content change ([`Table::push`], [`Table::extend`],
    /// [`Table::delete_where`], [`Table::update_where`],
    /// [`Table::canonicalize`]). Index structures record the version they
    /// were built at and treat any mismatch as stale; uniqueness across
    /// tables means a replaced catalog entry can never masquerade as the
    /// indexed one. Clones share the epoch until either side mutates (a
    /// clone has identical content, so sharing is sound).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates a row against the schema (arity, and `begin < end` for
    /// period tables), returning a diagnostic instead of panicking.
    ///
    /// This is the *structural* check (result materialization passes
    /// through it too); value-level ingestion policy — e.g. the session
    /// layer's NaN rejection — lives in the DML validators above storage.
    pub fn check_row(&self, row: &Row) -> Result<(), String> {
        if row.arity() != self.schema.arity() {
            return Err(format!(
                "row arity {} does not match schema arity {}",
                row.arity(),
                self.schema.arity()
            ));
        }
        if let Some((b, e)) = self.period {
            let (vb, ve) = (row.get(b), row.get(e));
            let (Some(ib), Some(ie)) = (vb.as_int(), ve.as_int()) else {
                return Err(format!(
                    "period endpoints must be non-NULL integers, got ({vb}, {ve})"
                ));
            };
            if ib >= ie {
                return Err(format!(
                    "period tuple must satisfy begin < end, got [{ib}, {ie})"
                ));
            }
        }
        Ok(())
    }

    /// Refreshes the version after an append batch, checkpointing the new
    /// state so indexes can catch up incrementally.
    fn bump_append(&mut self) {
        self.version = next_version();
        self.append_checkpoints
            .push((self.version, self.rows.len()));
        if self.append_checkpoints.len() > MAX_APPEND_CHECKPOINTS {
            let excess = self.append_checkpoints.len() - MAX_APPEND_CHECKPOINTS;
            self.append_checkpoints.drain(..excess);
        }
    }

    /// Refreshes the version after a structural mutation (anything that is
    /// not a pure append): the checkpoint history restarts here.
    fn bump_structural(&mut self) {
        self.version = next_version();
        self.append_checkpoints.clear();
        self.append_checkpoints
            .push((self.version, self.rows.len()));
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics on arity mismatch or (for period tables) `begin >= end`.
    pub fn push(&mut self, row: Row) {
        if let Err(e) = self.check_row(&row) {
            panic!("{e}");
        }
        self.rows.push(row);
        self.bump_append();
    }

    /// Bulk-extends the table (one version bump for the whole batch).
    ///
    /// # Panics
    /// Panics when any row fails [`Table::check_row`]; rows before the
    /// offending one stay appended.
    pub fn extend<I: IntoIterator<Item = Row>>(&mut self, rows: I) {
        let mut appended = false;
        for r in rows {
            if let Err(e) = self.check_row(&r) {
                if appended {
                    self.bump_append();
                }
                panic!("{e}");
            }
            self.rows.push(r);
            appended = true;
        }
        if appended {
            self.bump_append();
        }
    }

    /// Deletes every row matching `pred`, returning how many were removed.
    /// A no-op delete leaves the version (and thus any index) untouched.
    pub fn delete_where<P: FnMut(&Row) -> bool>(&mut self, mut pred: P) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        let removed = before - self.rows.len();
        if removed > 0 {
            self.bump_structural();
        }
        removed
    }

    /// Replaces every row matching `pred` with `update(row)`, returning how
    /// many rows changed. The updater is fallible so callers can fold their
    /// own validation (e.g. type conformance) into the single pass.
    /// Validation is atomic: if `update` errors or any replacement row is
    /// invalid (arity, period), the table is left untouched and an error is
    /// returned. A no-op update leaves the version untouched.
    pub fn update_where<P, U>(&mut self, mut pred: P, mut update: U) -> Result<usize, String>
    where
        P: FnMut(&Row) -> bool,
        U: FnMut(&Row) -> Result<Row, String>,
    {
        let mut replacements: Vec<(usize, Row)> = Vec::new();
        for (i, row) in self.rows.iter().enumerate() {
            if pred(row) {
                let new_row = update(row)?;
                self.check_row(&new_row)?;
                replacements.push((i, new_row));
            }
        }
        let updated = replacements.len();
        for (i, new_row) in replacements {
            self.rows[i] = new_row;
        }
        if updated > 0 {
            self.bump_structural();
        }
        Ok(updated)
    }

    /// The append-checkpoint history: recent `(version, len)` states
    /// reachable from the current state by removing appended rows only (the
    /// last entry is always the current `(version, len)`). Exposed so the
    /// durability layer can serialize tables losslessly — see
    /// [`Table::restore`].
    pub fn append_checkpoints(&self) -> &[(u64, usize)] {
        &self.append_checkpoints
    }

    /// Rebuilds a table from serialized state (the durability layer's
    /// decode path): schema, period spec, rows, the version epoch it was
    /// saved at, and its append-checkpoint history.
    ///
    /// Every row is re-validated against the schema and period spec, and
    /// the checkpoint history must be well-formed (non-empty, lengths
    /// non-decreasing and bounded by the row count, versions strictly
    /// increasing, last entry equal to the current `(version, len)` state).
    /// The process-wide version-epoch counter is advanced past the restored
    /// version, so versions stay globally unique: a table created *after* a
    /// restore can never collide with a restored epoch, which keeps
    /// version-based index staleness checks sound across restarts.
    pub fn restore(
        schema: Schema,
        period: Option<(usize, usize)>,
        rows: Vec<Row>,
        version: u64,
        append_checkpoints: Vec<(u64, usize)>,
    ) -> Result<Table, String> {
        if let Some((b, e)) = period {
            if b == e {
                return Err("period begin and end must be distinct columns".into());
            }
            for idx in [b, e] {
                let col = schema
                    .columns()
                    .get(idx)
                    .ok_or_else(|| format!("period column {idx} out of range"))?;
                if col.ty != SqlType::Int {
                    return Err(format!("period column '{}' must be INT", col.name));
                }
            }
        }
        match append_checkpoints.last() {
            None => return Err("append-checkpoint history must not be empty".into()),
            Some(&(v, len)) => {
                if v != version || len != rows.len() {
                    return Err(format!(
                        "last append checkpoint ({v}, {len}) does not match current \
                         state ({version}, {})",
                        rows.len()
                    ));
                }
            }
        }
        for pair in append_checkpoints.windows(2) {
            let ((v0, l0), (v1, l1)) = (pair[0], pair[1]);
            if v0 >= v1 || l0 > l1 {
                return Err(format!(
                    "append checkpoints must be strictly version-increasing with \
                     non-decreasing lengths: ({v0}, {l0}) then ({v1}, {l1})"
                ));
            }
        }
        let table = Table {
            schema,
            rows: Vec::new(),
            period,
            version,
            append_checkpoints,
        };
        for row in &rows {
            table.check_row(row)?;
        }
        // Advance the global epoch source past the restored version so the
        // next construction or mutation anywhere in the process draws a
        // strictly larger value.
        VERSION_EPOCH.fetch_max(version.saturating_add(1), Ordering::Relaxed);
        Ok(Table { rows, ..table })
    }

    /// When the table state at `version` was exactly the current
    /// `rows[0..l]` and only appends happened since, returns `Some(l)`;
    /// otherwise `None` (structural change, unknown version, or history
    /// trimmed past `MAX_APPEND_CHECKPOINTS` append batches). Versions are
    /// globally unique, so a checkpoint hit can never be a look-alike from
    /// another table or a diverged clone.
    pub fn appended_since(&self, version: u64) -> Option<usize> {
        self.append_checkpoints
            .iter()
            .find(|&&(v, _)| v == version)
            .map(|&(_, len)| len)
    }

    /// The validity interval of a row (requires a period table).
    pub fn interval_of(&self, row: &Row) -> Interval {
        let (b, e) = self
            .period
            .expect("interval_of called on a non-temporal table");
        Interval::new(row.int(b), row.int(e))
    }

    /// Sorts rows into the canonical order, making the physical encoding of
    /// the multiset deterministic. Together with coalesced annotations this
    /// realizes the *unique encoding* requirement of Definition 4.5 at the
    /// implementation layer.
    pub fn canonicalize(&mut self) {
        self.rows.sort_unstable();
        self.bump_structural();
    }

    /// A canonically sorted copy.
    pub fn canonicalized(&self) -> Table {
        let mut t = self.clone();
        t.canonicalize();
        t
    }

    /// Renders the table like a psql result, for examples and debugging.
    pub fn to_pretty_string(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.to_string())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!(" {c:<w$} "))
                .collect();
            format!("|{}|", body.join("|"))
        };
        let sep: String = format!(
            "+{}+",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("+")
        );
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push_str(&format!("\n({} rows)\n", self.rows.len()));
        out
    }

    /// Helper for building tables in tests and examples: rows of plain
    /// values with a trailing `[begin, end)` period.
    pub fn period_table_from(
        schema: Schema,
        begin: usize,
        end: usize,
        rows: Vec<Vec<Value>>,
    ) -> Table {
        let mut t = Table::with_period(schema, begin, end);
        for r in rows {
            t.push(Row::new(r));
        }
        t
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pretty_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn works_schema() -> Schema {
        Schema::of(&[
            ("name", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ])
    }

    #[test]
    fn period_table_roundtrip() {
        let mut t = Table::with_period(works_schema(), 2, 3);
        t.push(row!["Ann", "SP", 3, 10]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.interval_of(&t.rows()[0]), Interval::new(3, 10));
    }

    #[test]
    #[should_panic(expected = "begin < end")]
    fn invalid_period_rejected() {
        let mut t = Table::with_period(works_schema(), 2, 3);
        t.push(row!["Ann", "SP", 10, 3]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(works_schema());
        t.push(row!["Ann", "SP"]);
    }

    #[test]
    #[should_panic(expected = "must be INT")]
    fn period_column_type_checked() {
        let _ = Table::with_period(works_schema(), 0, 3);
    }

    #[test]
    fn versions_are_globally_unique_epochs() {
        // Two tables built with identical push sequences must not share a
        // version: a catalog entry replaced by a look-alike table has to
        // read as stale to any index built on the original.
        let build = || {
            let mut t = Table::with_period(works_schema(), 2, 3);
            t.push(row!["Ann", "SP", 3, 10]);
            t
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b, "content-equal (version ignored by Eq)");
        assert_ne!(a.version(), b.version(), "but version epochs differ");

        // Divergent clones also end on different epochs.
        let (mut c1, mut c2) = (a.clone(), a.clone());
        assert_eq!(c1.version(), c2.version(), "unchanged clones share");
        c1.push(row!["Joe", "NS", 8, 16]);
        c2.push(row!["Sam", "SP", 8, 16]);
        assert_ne!(c1.version(), c2.version());

        // Every mutation refreshes the epoch.
        let before = c1.version();
        c1.canonicalize();
        assert_ne!(before, c1.version());
    }

    #[test]
    fn delete_and_update_where() {
        let mut t = Table::with_period(works_schema(), 2, 3);
        t.push(row!["Ann", "SP", 3, 10]);
        t.push(row!["Joe", "NS", 8, 16]);
        t.push(row!["Sam", "SP", 8, 16]);

        let v = t.version();
        assert_eq!(t.delete_where(|r| r.get(0) == &Value::str("Zed")), 0);
        assert_eq!(t.version(), v, "no-op delete keeps the version");

        assert_eq!(t.delete_where(|r| r.get(1) == &Value::str("NS")), 1);
        assert_eq!(t.len(), 2);
        assert_ne!(t.version(), v);

        let updated = t
            .update_where(
                |r| r.get(0) == &Value::str("Ann"),
                |r| {
                    let mut vals = r.values().to_vec();
                    vals[1] = Value::str("NS");
                    Ok(Row::new(vals))
                },
            )
            .unwrap();
        assert_eq!(updated, 1);
        assert_eq!(t.rows()[0].get(1), &Value::str("NS"));

        // Invalid replacement rows leave the table untouched.
        let before = t.clone();
        let err = t
            .update_where(|_| true, |r| Ok(Row::new(r.values()[..2].to_vec())))
            .unwrap_err();
        assert!(err.contains("arity"));
        assert_eq!(t, before);
        assert_eq!(t.version(), before.version());

        let err = t
            .update_where(
                |_| true,
                |r| {
                    let mut vals = r.values().to_vec();
                    vals[2] = Value::Int(99);
                    vals[3] = Value::Int(1);
                    Ok(Row::new(vals))
                },
            )
            .unwrap_err();
        assert!(err.contains("begin < end"));
        assert_eq!(t, before);

        // An updater error aborts atomically, too.
        let err = t
            .update_where(|_| true, |_| Err::<Row, _>("boom".to_string()))
            .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(t, before);
    }

    #[test]
    fn append_checkpoints_track_pure_appends() {
        let mut t = Table::with_period(works_schema(), 2, 3);
        t.push(row!["Ann", "SP", 3, 10]);
        let v1 = t.version();
        t.push(row!["Joe", "NS", 8, 16]);
        t.extend(vec![row!["Sam", "SP", 8, 16], row!["Eve", "SP", 0, 2]]);
        // From v1 (one row), only appends happened.
        assert_eq!(t.appended_since(v1), Some(1));
        assert_eq!(t.appended_since(t.version()), Some(4));
        // Unknown versions (e.g. from another table) never match.
        let other = Table::with_period(works_schema(), 2, 3);
        assert_eq!(t.appended_since(other.version()), None);

        // A structural mutation invalidates the history...
        t.delete_where(|r| r.get(0) == &Value::str("Eve"));
        assert_eq!(t.appended_since(v1), None);
        // ...but the post-mutation state checkpoints again.
        let v2 = t.version();
        t.push(row!["Zed", "NS", 1, 3]);
        assert_eq!(t.appended_since(v2), Some(3));

        // Divergent clones do not see each other's append checkpoints.
        let (mut a, mut b) = (t.clone(), t.clone());
        a.push(row!["A1", "SP", 2, 4]);
        b.push(row!["B1", "SP", 2, 4]);
        assert_eq!(b.appended_since(a.version()), None);
        assert_eq!(a.appended_since(b.version()), None);
    }

    #[test]
    fn restore_rebuilds_state_and_advances_the_epoch() {
        let mut t = Table::with_period(works_schema(), 2, 3);
        t.push(row!["Ann", "SP", 3, 10]);
        t.push(row!["Joe", "NS", 8, 16]);

        let r = Table::restore(
            t.schema().clone(),
            t.period(),
            t.rows().to_vec(),
            t.version(),
            t.append_checkpoints().to_vec(),
        )
        .unwrap();
        assert_eq!(r, t);
        assert_eq!(r.version(), t.version());
        assert_eq!(r.append_checkpoints(), t.append_checkpoints());
        // The incremental-maintenance contract survives the round trip.
        let v_first = t.append_checkpoints()[1].0;
        assert_eq!(r.appended_since(v_first), t.appended_since(v_first));

        // The global epoch resumes strictly above every restored version.
        let fresh = Table::new(works_schema());
        assert!(fresh.version() > r.version());

        // Malformed inputs are rejected, not panicked on.
        assert!(
            Table::restore(works_schema(), Some((2, 2)), vec![], 1, vec![(1, 0)])
                .unwrap_err()
                .contains("distinct")
        );
        assert!(
            Table::restore(works_schema(), Some((0, 3)), vec![], 1, vec![(1, 0)])
                .unwrap_err()
                .contains("must be INT")
        );
        assert!(
            Table::restore(works_schema(), Some((2, 9)), vec![], 1, vec![(1, 0)])
                .unwrap_err()
                .contains("out of range")
        );
        assert!(Table::restore(works_schema(), None, vec![], 1, vec![])
            .unwrap_err()
            .contains("must not be empty"));
        assert!(
            Table::restore(works_schema(), None, vec![], 5, vec![(5, 3)])
                .unwrap_err()
                .contains("does not match")
        );
        assert!(
            Table::restore(works_schema(), None, vec![], 5, vec![(7, 0), (5, 0)])
                .unwrap_err()
                .contains("version-increasing")
        );
        assert!(Table::restore(
            works_schema(),
            Some((2, 3)),
            vec![row!["Ann", "SP", 9, 4]],
            5,
            vec![(5, 1)]
        )
        .unwrap_err()
        .contains("begin < end"));
    }

    #[test]
    fn check_row_reports_instead_of_panicking() {
        let t = Table::with_period(works_schema(), 2, 3);
        assert!(t.check_row(&row!["Ann", "SP", 3, 10]).is_ok());
        assert!(t
            .check_row(&row!["Ann", "SP", 10, 3])
            .unwrap_err()
            .contains("begin < end"));
        assert!(t
            .check_row(&row!["Ann", "SP"])
            .unwrap_err()
            .contains("arity"));
        assert!(t
            .check_row(&Row::new(vec![
                Value::str("Ann"),
                Value::str("SP"),
                Value::Null,
                Value::Int(3),
            ]))
            .unwrap_err()
            .contains("non-NULL"));
    }

    #[test]
    fn canonicalization_sorts() {
        let mut t = Table::new(Schema::of(&[("x", SqlType::Int)]));
        t.push(row![3]);
        t.push(row![1]);
        t.push(row![2]);
        t.canonicalize();
        assert_eq!(t.rows(), &[row![1], row![2], row![3]]);
    }

    #[test]
    fn pretty_print_contains_data() {
        let mut t = Table::new(Schema::of(&[("n", SqlType::Str)]));
        t.push(row!["hello"]);
        let s = t.to_pretty_string();
        assert!(s.contains("hello"));
        assert!(s.contains("(1 rows)"));
    }
}
