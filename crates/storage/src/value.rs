//! Dynamically typed SQL values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A SQL value.
///
/// `Value` implements a *total* `Ord`/`Eq`/`Hash` so rows can serve as keys
/// in hash and tree maps and relations can be put into a canonical physical
/// order (`NULL` sorts first, then by type rank, then by value; doubles
/// compare by IEEE total order). SQL's three-valued comparison semantics is
/// *not* this order — it lives in [`Value::sql_eq`] / [`Value::sql_cmp`] and
/// is what expression evaluation uses.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Booleans.
    Bool(bool),
    /// 64-bit integers (also used for period endpoints).
    Int(i64),
    /// 64-bit floats.
    Double(f64),
    /// Strings (reference-counted: rows are cloned heavily during joins).
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Whether the value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric content as `f64` (ints widen), if numeric.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// The boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL equality: `NULL = anything` is unknown (`None`); numeric types
    /// compare numerically across `Int`/`Double`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL comparison: `None` when either side is NULL or the types are
    /// incomparable; `Int` and `Double` compare numerically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Int(_) | Double(_), Int(_) | Double(_)) => {
                let (a, b) = (self.as_double().unwrap(), other.as_double().unwrap());
                a.partial_cmp(&b)
            }
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// The canonical total order used for sorting relations and grouping:
    /// by type rank, then by value; doubles use IEEE `total_cmp`.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Double(d) => d.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_comparison_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Double(2.0)), Some(true));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("a")), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn canonical_order_is_total() {
        let mut vs = vec![
            Value::str("b"),
            Value::Int(3),
            Value::Null,
            Value::Double(1.5),
            Value::Bool(true),
            Value::str("a"),
            Value::Int(-1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-1),
                Value::Int(3),
                Value::Double(1.5),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::str("x"));
        set.insert(Value::str("x"));
        set.insert(Value::Int(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn double_total_order_handles_nan() {
        let mut vs = [Value::Double(f64::NAN), Value::Double(1.0)];
        vs.sort();
        assert_eq!(vs[0], Value::Double(1.0));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Int(42).to_string(), "42");
    }
}
