//! Dynamically typed SQL values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A SQL value.
///
/// `Value` implements a *total* `Ord`/`Eq`/`Hash` so rows can serve as keys
/// in hash and tree maps and relations can be put into a canonical physical
/// order (`NULL` sorts first, then by type rank, then by value; doubles
/// compare by IEEE total order). SQL's three-valued comparison semantics is
/// *not* this order — it lives in [`Value::sql_eq`] / [`Value::sql_cmp`] and
/// is what expression evaluation uses.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Booleans.
    Bool(bool),
    /// 64-bit integers (also used for period endpoints).
    Int(i64),
    /// 64-bit floats.
    Double(f64),
    /// Strings (reference-counted: rows are cloned heavily during joins).
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Whether the value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric content as `f64` (ints widen), if numeric.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// The boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL equality: `NULL = anything` is unknown (`None`); numeric types
    /// compare numerically across `Int`/`Double`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL comparison: `None` when either side is NULL, the types are
    /// incomparable, or a NaN is involved; `Int` and `Double` compare
    /// numerically — *exactly*, even beyond 2^53 (see `cmp_int_double`).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Int(a), Double(b)) => cmp_int_double(*a, *b),
            (Double(a), Int(b)) => cmp_int_double(*b, *a).map(Ordering::reverse),
            (Double(a), Double(b)) => a.partial_cmp(b),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

/// Exact comparison of an `i64` against an `f64`.
///
/// Widening the int with `as f64` is lossy above 2^53 — e.g.
/// `9007199254740993 as f64 == 9007199254740992.0`, so the two would
/// compare `Equal` while differing by one. Instead the double is split:
/// any finite double in `[-2^63, 2^63)` has an integral part that
/// converts to `i64` exactly (doubles that large carry no fractional
/// bits, smaller ones truncate losslessly), the ints compare exactly,
/// and the fractional part breaks integer ties. Doubles outside the
/// `i64` range (±2^63 is itself exactly representable) win on magnitude,
/// which also covers ±inf. `None` only for NaN.
fn cmp_int_double(a: i64, b: f64) -> Option<Ordering> {
    const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0;
    if b.is_nan() {
        return None;
    }
    if b >= TWO_POW_63 {
        return Some(Ordering::Less);
    }
    if b < -TWO_POW_63 {
        return Some(Ordering::Greater);
    }
    let int_part = b.trunc() as i64; // exact: trunc(b) ∈ [-2^63, 2^63)
    Some(match a.cmp(&int_part) {
        Ordering::Equal => {
            // b = int_part + fract(b), computed exactly for |b| < 2^52
            // (bigger doubles are integers with fract = 0).
            let frac = b.fract();
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        ord => ord,
    })
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// The canonical total order used for sorting relations and grouping:
    /// by type rank, then by value; doubles use IEEE `total_cmp`.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Double(d) => d.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_comparison_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Double(2.0)), Some(true));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn int_double_comparison_is_exact_beyond_2_53() {
        // 2^53 + 1 is the first integer `as f64` cannot represent: the
        // old widening comparison called it Equal to 2^53.
        let big = 9_007_199_254_740_993i64; // 2^53 + 1
        let rounded = 9_007_199_254_740_992.0f64; // 2^53
        assert_eq!(
            Value::Int(big).sql_cmp(&Value::Double(rounded)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(big).sql_eq(&Value::Double(rounded)), Some(false));
        assert_eq!(
            Value::Double(rounded).sql_cmp(&Value::Int(big)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(big - 1).sql_eq(&Value::Double(rounded)),
            Some(true),
            "2^53 itself is exactly representable"
        );
        // Same at the negative boundary.
        assert_eq!(
            Value::Int(-big).sql_cmp(&Value::Double(-rounded)),
            Some(Ordering::Less)
        );
        // i64::MAX vs 2^63: the double rounds *up* out of the i64 range,
        // so it must compare greater, never equal.
        assert_eq!(
            Value::Int(i64::MAX).sql_cmp(&Value::Double(i64::MAX as f64)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(i64::MIN).sql_eq(&Value::Double(i64::MIN as f64)),
            Some(true),
            "-2^63 is exactly representable"
        );
    }

    #[test]
    fn int_double_fractions_and_non_finite() {
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Double(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int(-1).sql_cmp(&Value::Double(-1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int(0).sql_cmp(&Value::Double(f64::INFINITY)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(0).sql_cmp(&Value::Double(f64::NEG_INFINITY)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(0).sql_cmp(&Value::Double(f64::NAN)), None);
        assert_eq!(Value::Double(f64::NAN).sql_cmp(&Value::Int(0)), None);
        assert_eq!(
            Value::Double(f64::NAN).sql_eq(&Value::Double(f64::NAN)),
            None,
            "NaN behaves like NULL in SQL comparisons"
        );
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("a")), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn canonical_order_is_total() {
        let mut vs = vec![
            Value::str("b"),
            Value::Int(3),
            Value::Null,
            Value::Double(1.5),
            Value::Bool(true),
            Value::str("a"),
            Value::Int(-1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-1),
                Value::Int(3),
                Value::Double(1.5),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::str("x"));
        set.insert(Value::str("x"));
        set.insert(Value::Int(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn double_total_order_handles_nan() {
        let mut vs = [Value::Double(f64::NAN), Value::Double(1.0)];
        vs.sort();
        assert_eq!(vs[0], Value::Double(1.0));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Int(42).to_string(), "42");
    }
}
