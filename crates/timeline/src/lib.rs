//! Time domains, time points, and interval algebra.
//!
//! This crate implements the temporal preliminaries of *Snapshot Semantics for
//! Temporal Multiset Relations* (Dignös et al., PVLDB 2019), Section 5.1:
//!
//! * a totally ordered, finite domain `T` of time points ([`TimeDomain`]),
//! * half-open intervals `[Tb, Te)` over that domain ([`Interval`]), and
//! * the interval relations used throughout the paper: adjacency, overlap,
//!   intersection, and union.
//!
//! Time points are plain `i64` values wrapped in [`TimePoint`]; a
//! [`TimeDomain`] fixes the minimum time point `Tmin` and the exclusive
//! maximum `Tmax` for a database. All temporal annotations of a database are
//! interpreted relative to one domain.

mod interval;
mod point;

pub use interval::{endpoints_to_intervals, Interval};
pub use point::TimePoint;

use std::fmt;

/// A totally ordered, finite time domain `T = [min, max)`.
///
/// `min` is the smallest time point (`Tmin` in the paper) and `max` is the
/// *exclusive* maximal time point (`Tmax`). The running example of the paper
/// uses the hours of a single day, i.e. `TimeDomain::new(0, 24)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeDomain {
    min: TimePoint,
    max: TimePoint,
}

impl TimeDomain {
    /// Creates the time domain `[min, max)`.
    ///
    /// # Panics
    /// Panics if `min >= max`; a time domain must contain at least one point.
    pub fn new(min: impl Into<TimePoint>, max: impl Into<TimePoint>) -> Self {
        let (min, max) = (min.into(), max.into());
        assert!(
            min < max,
            "time domain requires min < max, got [{min}, {max})"
        );
        TimeDomain { min, max }
    }

    /// The smallest time point `Tmin` of the domain.
    #[inline]
    pub fn tmin(&self) -> TimePoint {
        self.min
    }

    /// The exclusive maximal time point `Tmax` of the domain.
    #[inline]
    pub fn tmax(&self) -> TimePoint {
        self.max
    }

    /// The interval `[Tmin, Tmax)` covering the whole domain.
    #[inline]
    pub fn full_interval(&self) -> Interval {
        Interval::new(self.min, self.max)
    }

    /// Number of time points in the domain.
    #[inline]
    pub fn len(&self) -> u64 {
        (self.max.value() - self.min.value()) as u64
    }

    /// A time domain is never empty (enforced by [`TimeDomain::new`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `t` is a member of the domain.
    #[inline]
    pub fn contains(&self, t: TimePoint) -> bool {
        self.min <= t && t < self.max
    }

    /// Whether the interval lies fully inside the domain.
    #[inline]
    pub fn contains_interval(&self, i: Interval) -> bool {
        self.min <= i.begin() && i.end() <= self.max
    }

    /// Iterates over every time point of the domain in order.
    ///
    /// This is the point-wise view that the *abstract model* (snapshot
    /// K-relations) is defined over; it is only practical for small domains
    /// and is mainly used by the point-wise oracle and by tests.
    pub fn points(&self) -> impl DoubleEndedIterator<Item = TimePoint> + Clone {
        (self.min.value()..self.max.value()).map(TimePoint::new)
    }

    /// Clamps an interval to the domain, returning `None` if nothing remains.
    pub fn clamp_interval(&self, i: Interval) -> Option<Interval> {
        i.intersect(self.full_interval())
    }
}

impl fmt::Display for TimeDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_basics() {
        let d = TimeDomain::new(0, 24);
        assert_eq!(d.tmin(), TimePoint::new(0));
        assert_eq!(d.tmax(), TimePoint::new(24));
        assert_eq!(d.len(), 24);
        assert!(d.contains(TimePoint::new(0)));
        assert!(d.contains(TimePoint::new(23)));
        assert!(!d.contains(TimePoint::new(24)));
        assert!(!d.contains(TimePoint::new(-1)));
        assert_eq!(d.full_interval(), Interval::new(0, 24));
    }

    #[test]
    #[should_panic(expected = "min < max")]
    fn empty_domain_rejected() {
        let _ = TimeDomain::new(5, 5);
    }

    #[test]
    fn domain_points_iteration() {
        let d = TimeDomain::new(3, 7);
        let pts: Vec<i64> = d.points().map(|p| p.value()).collect();
        assert_eq!(pts, vec![3, 4, 5, 6]);
    }

    #[test]
    fn domain_clamp() {
        let d = TimeDomain::new(0, 10);
        assert_eq!(
            d.clamp_interval(Interval::new(-5, 5)),
            Some(Interval::new(0, 5))
        );
        assert_eq!(
            d.clamp_interval(Interval::new(8, 20)),
            Some(Interval::new(8, 10))
        );
        assert_eq!(d.clamp_interval(Interval::new(12, 20)), None);
        assert_eq!(
            d.clamp_interval(Interval::new(0, 10)),
            Some(Interval::new(0, 10))
        );
    }

    #[test]
    fn domain_display() {
        assert_eq!(TimeDomain::new(0, 24).to_string(), "[0, 24)");
    }
}
