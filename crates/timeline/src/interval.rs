//! Half-open intervals `[Tb, Te)` and their algebra (paper Section 5.1).

use crate::TimePoint;
use std::fmt;

/// A half-open interval `[begin, end)` with `begin < end`.
///
/// An interval denotes the set of contiguous time points
/// `{ T | begin <= T < end }`. The paper writes `I+` for the begin point and
/// `I-` for the (exclusive) end point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    begin: TimePoint,
    end: TimePoint,
}

impl Interval {
    /// Creates `[begin, end)`.
    ///
    /// # Panics
    /// Panics if `begin >= end`: empty intervals are not representable, which
    /// mirrors the paper's definition (`Tb <T Te`).
    #[inline]
    pub fn new(begin: impl Into<TimePoint>, end: impl Into<TimePoint>) -> Self {
        let (begin, end) = (begin.into(), end.into());
        assert!(
            begin < end,
            "interval requires begin < end, got [{begin}, {end})"
        );
        Interval { begin, end }
    }

    /// Creates `[begin, end)` or returns `None` when `begin >= end`.
    #[inline]
    pub fn try_new(begin: impl Into<TimePoint>, end: impl Into<TimePoint>) -> Option<Self> {
        let (begin, end) = (begin.into(), end.into());
        (begin < end).then_some(Interval { begin, end })
    }

    /// The singleton interval `[t, t+1)` covering exactly one time point.
    #[inline]
    pub fn singleton(t: impl Into<TimePoint>) -> Self {
        let t = t.into();
        Interval {
            begin: t,
            end: t.succ(),
        }
    }

    /// The inclusive begin point (`I+` in the paper).
    #[inline]
    pub fn begin(self) -> TimePoint {
        self.begin
    }

    /// The exclusive end point (`I-` in the paper).
    #[inline]
    pub fn end(self) -> TimePoint {
        self.end
    }

    /// Number of time points covered by the interval (always >= 1).
    #[inline]
    pub fn duration(self) -> u64 {
        (self.end.value() - self.begin.value()) as u64
    }

    /// Whether time point `t` lies inside the interval (`t ∈ I`).
    #[inline]
    pub fn contains(self, t: TimePoint) -> bool {
        self.begin <= t && t < self.end
    }

    /// Whether `other` is a (not necessarily proper) subset of `self`.
    #[inline]
    pub fn covers(self, other: Interval) -> bool {
        self.begin <= other.begin && other.end <= self.end
    }

    /// Whether the two intervals share at least one time point.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        self.begin < other.end && other.begin < self.end
    }

    /// The adjacency relation `adj(I1, I2) ⇔ I1- = I2+ ∨ I2- = I1+`.
    #[inline]
    pub fn adjacent(self, other: Interval) -> bool {
        self.end == other.begin || other.end == self.begin
    }

    /// `I ∩ I'`: the interval covering exactly the common time points, or
    /// `None` when the intervals are disjoint.
    #[inline]
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let begin = self.begin.max(other.begin);
        let end = self.end.min(other.end);
        (begin < end).then_some(Interval { begin, end })
    }

    /// `I ∪ I'`: the union as a single interval. Per the paper this is only
    /// well-defined when the inputs overlap or are adjacent; otherwise the
    /// union is defined to be empty (`None`).
    #[inline]
    pub fn union(self, other: Interval) -> Option<Interval> {
        if self.overlaps(other) || self.adjacent(other) {
            Some(Interval {
                begin: self.begin.min(other.begin),
                end: self.end.max(other.end),
            })
        } else {
            None
        }
    }

    /// Iterates over the time points of the interval in order.
    pub fn points(self) -> impl DoubleEndedIterator<Item = TimePoint> + Clone {
        (self.begin.value()..self.end.value()).map(TimePoint::new)
    }

    /// Splits this interval at the given (sorted, deduplicated) endpoints,
    /// producing the maximal sub-intervals whose interiors contain none of
    /// the points. Endpoints outside the interval are ignored.
    ///
    /// This is the per-tuple piece of the split operator `N_G` (Def. 8.3).
    pub fn split_at(self, endpoints: &[TimePoint]) -> Vec<Interval> {
        debug_assert!(endpoints.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::new();
        let mut cur = self.begin;
        for &p in endpoints {
            if p <= cur {
                continue;
            }
            if p >= self.end {
                break;
            }
            out.push(Interval { begin: cur, end: p });
            cur = p;
        }
        out.push(Interval {
            begin: cur,
            end: self.end,
        });
        out
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.begin, self.end)
    }
}

/// Builds the elementary intervals spanned by a sorted, deduplicated endpoint
/// set: for endpoints `p1 < p2 < ... < pn` this returns
/// `[p1,p2), [p2,p3), ..., [p(n-1), pn)`.
///
/// This is `EPI` from Def. 8.3 (and `CPI` of Def. 5.2 shares the structure):
/// consecutive points delimit the maximal intervals on which the relevant
/// quantity (annotation, group content) is guaranteed constant.
pub fn endpoints_to_intervals(endpoints: &[TimePoint]) -> Vec<Interval> {
    debug_assert!(endpoints.windows(2).all(|w| w[0] < w[1]));
    endpoints
        .windows(2)
        .map(|w| Interval {
            begin: w[0],
            end: w[1],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(b, e)
    }

    #[test]
    fn construction() {
        let i = iv(3, 10);
        assert_eq!(i.begin(), TimePoint::new(3));
        assert_eq!(i.end(), TimePoint::new(10));
        assert_eq!(i.duration(), 7);
        assert_eq!(Interval::try_new(5, 5), None);
        assert_eq!(Interval::try_new(6, 5), None);
        assert!(Interval::try_new(5, 6).is_some());
    }

    #[test]
    #[should_panic(expected = "begin < end")]
    fn empty_interval_rejected() {
        let _ = iv(4, 4);
    }

    #[test]
    fn singleton_covers_one_point() {
        let s = Interval::singleton(7);
        assert_eq!(s, iv(7, 8));
        assert_eq!(s.duration(), 1);
        assert!(s.contains(TimePoint::new(7)));
        assert!(!s.contains(TimePoint::new(8)));
    }

    #[test]
    fn membership() {
        let i = iv(3, 10);
        assert!(i.contains(TimePoint::new(3)));
        assert!(i.contains(TimePoint::new(9)));
        assert!(!i.contains(TimePoint::new(10)));
        assert!(!i.contains(TimePoint::new(2)));
    }

    #[test]
    fn overlap_is_symmetric_and_strict() {
        assert!(iv(3, 10).overlaps(iv(8, 16)));
        assert!(iv(8, 16).overlaps(iv(3, 10)));
        // [3,8) and [8,16) share no point: half-open adjacency.
        assert!(!iv(3, 8).overlaps(iv(8, 16)));
        assert!(iv(0, 100).overlaps(iv(50, 51)));
    }

    #[test]
    fn adjacency() {
        assert!(iv(3, 8).adjacent(iv(8, 16)));
        assert!(iv(8, 16).adjacent(iv(3, 8)));
        assert!(!iv(3, 8).adjacent(iv(9, 16)));
        assert!(!iv(3, 9).adjacent(iv(8, 16)));
    }

    #[test]
    fn intersection() {
        assert_eq!(iv(3, 10).intersect(iv(8, 16)), Some(iv(8, 10)));
        assert_eq!(iv(3, 8).intersect(iv(8, 16)), None);
        assert_eq!(iv(0, 24).intersect(iv(6, 14)), Some(iv(6, 14)));
        assert_eq!(iv(6, 14).intersect(iv(0, 24)), Some(iv(6, 14)));
    }

    #[test]
    fn union_of_connected_intervals() {
        assert_eq!(iv(3, 10).union(iv(8, 16)), Some(iv(3, 16)));
        assert_eq!(iv(3, 8).union(iv(8, 16)), Some(iv(3, 16)));
        assert_eq!(iv(3, 8).union(iv(9, 16)), None);
    }

    #[test]
    fn covers() {
        assert!(iv(0, 10).covers(iv(3, 7)));
        assert!(iv(0, 10).covers(iv(0, 10)));
        assert!(!iv(0, 10).covers(iv(3, 11)));
    }

    #[test]
    fn split_at_endpoints() {
        let i = iv(3, 12);
        let pts: Vec<TimePoint> = [0, 3, 6, 8, 12, 14].map(TimePoint::new).to_vec();
        assert_eq!(i.split_at(&pts), vec![iv(3, 6), iv(6, 8), iv(8, 12)]);
        // No interior endpoints: interval survives untouched.
        let pts: Vec<TimePoint> = [0, 20].map(TimePoint::new).to_vec();
        assert_eq!(i.split_at(&pts), vec![iv(3, 12)]);
        assert_eq!(i.split_at(&[]), vec![iv(3, 12)]);
    }

    #[test]
    fn endpoint_intervals() {
        let pts: Vec<TimePoint> = [3, 8, 10, 16].map(TimePoint::new).to_vec();
        assert_eq!(
            endpoints_to_intervals(&pts),
            vec![iv(3, 8), iv(8, 10), iv(10, 16)]
        );
        assert!(endpoints_to_intervals(&pts[..1]).is_empty());
        assert!(endpoints_to_intervals(&[]).is_empty());
    }

    #[test]
    fn points_iteration() {
        let pts: Vec<i64> = iv(3, 6).points().map(|p| p.value()).collect();
        assert_eq!(pts, vec![3, 4, 5]);
    }

    #[test]
    fn display() {
        assert_eq!(iv(3, 10).to_string(), "[3, 10)");
    }
}
