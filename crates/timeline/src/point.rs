//! Time points: elements of the totally ordered time domain `T`.

use std::fmt;
use std::ops::{Add, Sub};

/// A single point of the time domain `T`.
///
/// The paper treats time points abstractly as elements of a totally ordered
/// finite domain; we represent them as `i64` so that dates, hours, or plain
/// tick counts can all be encoded. `T + 1` (the successor according to the
/// order, used by annotation changepoints) is plain integer increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TimePoint(i64);

impl TimePoint {
    /// Wraps a raw `i64` as a time point.
    #[inline]
    pub const fn new(value: i64) -> Self {
        TimePoint(value)
    }

    /// The raw `i64` value.
    #[inline]
    pub const fn value(self) -> i64 {
        self.0
    }

    /// The successor `T + 1` according to the total order on `T`.
    #[inline]
    pub const fn succ(self) -> Self {
        TimePoint(self.0 + 1)
    }

    /// The predecessor `T - 1` according to the total order on `T`.
    #[inline]
    pub const fn pred(self) -> Self {
        TimePoint(self.0 - 1)
    }
}

impl From<i64> for TimePoint {
    #[inline]
    fn from(v: i64) -> Self {
        TimePoint(v)
    }
}

impl From<i32> for TimePoint {
    #[inline]
    fn from(v: i32) -> Self {
        TimePoint(v as i64)
    }
}

impl From<TimePoint> for i64 {
    #[inline]
    fn from(p: TimePoint) -> i64 {
        p.0
    }
}

impl Add<i64> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn add(self, rhs: i64) -> TimePoint {
        TimePoint(self.0 + rhs)
    }
}

impl Sub<i64> for TimePoint {
    type Output = TimePoint;
    #[inline]
    fn sub(self, rhs: i64) -> TimePoint {
        TimePoint(self.0 - rhs)
    }
}

impl Sub<TimePoint> for TimePoint {
    type Output = i64;
    #[inline]
    fn sub(self, rhs: TimePoint) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_and_predecessor() {
        let t = TimePoint::new(5);
        assert_eq!(t.succ(), TimePoint::new(6));
        assert_eq!(t.pred(), TimePoint::new(4));
        assert_eq!(t.succ().pred(), t);
    }

    #[test]
    fn arithmetic() {
        let t = TimePoint::new(10);
        assert_eq!(t + 5, TimePoint::new(15));
        assert_eq!(t - 3, TimePoint::new(7));
        assert_eq!(TimePoint::new(15) - TimePoint::new(10), 5);
    }

    #[test]
    fn ordering() {
        assert!(TimePoint::new(3) < TimePoint::new(8));
        assert!(TimePoint::new(-1) < TimePoint::new(0));
    }

    #[test]
    fn conversions() {
        let t: TimePoint = 42i64.into();
        assert_eq!(t.value(), 42);
        let back: i64 = t.into();
        assert_eq!(back, 42);
        let t32: TimePoint = 7i32.into();
        assert_eq!(t32.value(), 7);
    }
}
