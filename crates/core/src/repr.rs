//! Executable checks for the representation-system conditions
//! (paper Definition 4.5).
//!
//! A representation system for snapshot K-databases must satisfy, for every
//! snapshot database `D`, encoding `E`, time point `T`, and query `Q`:
//!
//! 1. **uniqueness** — `ENC(E) = ENC(E') ⇒ E = E'`,
//! 2. **snapshot-reducibility** — `τ_T(Q(E)) = Q(τ_T(E))`,
//! 3. **snapshot-preservation** — `ENC(E) = D ⇒ τ_T(E) = τ_T(D)`.
//!
//! The paper proves these for period K-relations (Theorem 6.6 for `RA+`,
//! Theorems 7.1–7.3 for difference and aggregation). This module provides
//! the corresponding *executable* checks used by the property-test suites:
//! each function verifies one condition on concrete data and returns a
//! diagnostic on failure.

use crate::krelation::KTuple;
use crate::period_relation::PeriodRelation;
use crate::snapshot::SnapshotRelation;
use semiring::CommutativeSemiring;

/// Condition 1 (uniqueness): the encoding of a snapshot relation is in
/// normal form, and re-encoding its decoding reproduces it exactly.
pub fn check_uniqueness<Tup, K>(rel: &PeriodRelation<Tup, K>) -> Result<(), String>
where
    Tup: KTuple,
    K: CommutativeSemiring,
    K::Ctx: Default,
{
    if !rel.is_normal_form() {
        return Err("encoding is not K-coalesced".into());
    }
    let roundtrip = PeriodRelation::encode(&rel.decode());
    if &roundtrip != rel {
        return Err("ENC(ENC⁻¹(R)) differs from R: encoding not unique".into());
    }
    Ok(())
}

/// Condition 3 (snapshot-preservation): every timeslice of the encoding
/// equals the corresponding snapshot of the abstract relation (Lemma 6.5).
pub fn check_snapshot_preservation<Tup, K>(
    abstract_rel: &SnapshotRelation<Tup, K>,
    encoded: &PeriodRelation<Tup, K>,
) -> Result<(), String>
where
    Tup: KTuple,
    K: CommutativeSemiring,
    K::Ctx: Default,
{
    for t in abstract_rel.domain().points() {
        if encoded.timeslice(t) != abstract_rel.timeslice(t) {
            return Err(format!("snapshot at {t} not preserved by encoding"));
        }
    }
    Ok(())
}

/// Condition 2 (snapshot-reducibility) for a unary query: evaluating over
/// the encoding and slicing equals slicing and evaluating per snapshot.
///
/// `logical_query` runs on the period relation (annotations in `K^T`);
/// `snapshot_query` is the corresponding non-temporal query on K-relations.
pub fn check_snapshot_reducibility<Tup, Out, K>(
    input: &PeriodRelation<Tup, K>,
    logical_query: impl Fn(&PeriodRelation<Tup, K>) -> PeriodRelation<Out, K>,
    snapshot_query: impl Fn(&crate::krelation::KRelation<Tup, K>) -> crate::krelation::KRelation<Out, K>,
) -> Result<(), String>
where
    Tup: KTuple,
    Out: KTuple,
    K: CommutativeSemiring,
    K::Ctx: Default,
{
    let logical_result = logical_query(input);
    for t in input.domain().points() {
        let sliced_then_queried = snapshot_query(&input.timeslice(t));
        let queried_then_sliced = logical_result.timeslice(t);
        if sliced_then_queried != queried_then_sliced {
            return Err(format!(
                "snapshot-reducibility violated at {t}: τ(Q(R)) ≠ Q(τ(R))"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use semiring::Natural;
    use timeline::{Interval, TimeDomain};

    type Tup = (u8, u8);

    fn arb_period_relation() -> impl Strategy<Value = PeriodRelation<Tup, Natural>> {
        proptest::collection::vec((0u8..4, 0u8..4, 0i64..16, 1i64..8, 1u64..3), 0..10).prop_map(
            |facts| {
                PeriodRelation::from_facts(
                    TimeDomain::new(0, 24),
                    facts
                        .into_iter()
                        .map(|(a, b, s, len, m)| ((a, b), Interval::new(s, s + len), Natural(m))),
                )
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn uniqueness_holds(rel in arb_period_relation()) {
            prop_assert!(check_uniqueness(&rel).is_ok());
        }

        #[test]
        fn snapshot_preservation_holds(rel in arb_period_relation()) {
            let abstract_rel = rel.decode();
            let encoded = PeriodRelation::encode(&abstract_rel);
            prop_assert!(check_snapshot_preservation(&abstract_rel, &encoded).is_ok());
        }

        #[test]
        fn reducibility_selection(rel in arb_period_relation()) {
            prop_assert!(check_snapshot_reducibility(
                &rel,
                |r| r.select(|t| t.0 % 2 == 0),
                |s| s.select(|t| t.0 % 2 == 0),
            ).is_ok());
        }

        #[test]
        fn reducibility_projection(rel in arb_period_relation()) {
            prop_assert!(check_snapshot_reducibility(
                &rel,
                |r| r.project(|t| t.0),
                |s| s.project(|t| t.0),
            ).is_ok());
        }

        #[test]
        fn reducibility_self_join(rel in arb_period_relation()) {
            prop_assert!(check_snapshot_reducibility(
                &rel,
                |r| r.join(r, |t1, t2| (t1.1 == t2.0).then_some((t1.0, t2.1))),
                |s| s.join(s, |t1, t2| (t1.1 == t2.0).then_some((t1.0, t2.1))),
            ).is_ok());
        }

        #[test]
        fn reducibility_union(rel in arb_period_relation(), rel2 in arb_period_relation()) {
            let logical = rel.union(&rel2);
            for t in rel.domain().points() {
                let expect = rel.timeslice(t).union(&rel2.timeslice(t));
                prop_assert_eq!(logical.timeslice(t), expect);
            }
        }

        #[test]
        fn reducibility_difference(rel in arb_period_relation(), rel2 in arb_period_relation()) {
            let logical = rel.difference(&rel2);
            for t in rel.domain().points() {
                let expect = rel.timeslice(t).difference(&rel2.timeslice(t));
                prop_assert_eq!(logical.timeslice(t), expect);
            }
        }

        /// Definition 7.1 aggregation is snapshot-reducible by construction;
        /// verify the implementation agrees (Theorem 7.3).
        #[test]
        fn reducibility_aggregation(rel in arb_period_relation()) {
            let logical = rel.aggregate_grouped(
                |t| t.0,
                |g, ms| (*g, ms.iter().map(|(_, m)| m).sum::<u64>()),
            );
            for t in rel.domain().points() {
                let expect = rel.timeslice(t).aggregate_grouped(
                    |t| t.0,
                    |g, ms| (*g, ms.iter().map(|(_, m)| m).sum::<u64>()),
                );
                prop_assert_eq!(logical.timeslice(t), expect);
            }
        }

        #[test]
        fn reducibility_global_aggregation(rel in arb_period_relation()) {
            let logical = rel.aggregate_global(
                |ms| ms.iter().map(|(_, m)| m).sum::<u64>(),
            );
            for t in rel.domain().points() {
                let expect = rel.timeslice(t).aggregate_global(
                    |ms| ms.iter().map(|(_, m)| m).sum::<u64>(),
                );
                prop_assert_eq!(logical.timeslice(t), expect);
            }
        }

        /// Equivalent algebra expressions produce identical (not merely
        /// equivalent) encodings — the unique-encoding desideratum that
        /// interval preservation and change preservation fail.
        #[test]
        fn equivalent_queries_identical_encoding(rel in arb_period_relation()) {
            // Π_a(R) vs Π_a(σ_true(R)) vs Π_a(R ∪ ∅)
            let direct = rel.project(|t| t.0);
            let via_select = rel.select(|_| true).project(|t| t.0);
            let via_union = rel
                .union(&PeriodRelation::empty(rel.domain()))
                .project(|t| t.0);
            prop_assert_eq!(&direct, &via_select);
            prop_assert_eq!(&direct, &via_union);
        }
    }

    #[test]
    fn check_functions_report_errors() {
        // Manufacture a non-reducible "query" to ensure the checker catches it.
        let rel = PeriodRelation::from_facts(
            TimeDomain::new(0, 10),
            [((1u8, 1u8), Interval::new(0, 5), Natural(1))],
        );
        let r = check_snapshot_reducibility(
            &rel,
            |r| r.select(|_| true),
            |s| s.select(|_| false), // deliberately different
        );
        assert!(r.is_err());
        assert!(r.unwrap_err().contains("snapshot-reducibility violated"));
    }
}
