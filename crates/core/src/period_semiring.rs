//! The period semiring `K^T` (paper Section 6) and its monus (Section 7.1).
//!
//! For any commutative semiring `K` and time domain `T`, the coalesced
//! temporal K-elements form a commutative semiring
//! `K^T = (TEC_K, +_{K^T}, ·_{K^T}, 0_{K^T}, 1_{K^T})` (Theorem 6.2):
//!
//! * `0` maps every interval to `0K` ([`TemporalElement::empty`]),
//! * `1` maps `[Tmin, Tmax)` to `1K` — this is why the semiring context of
//!   `K^T` is the [`TimeDomain`],
//! * `+`/`·` are the coalesced point-wise operations.
//!
//! If `K` is an m-semiring, so is `K^T` (Theorem 7.1), with the point-wise
//! monus. The timeslice `τ_T : K^T → K` is an (m-)semiring homomorphism
//! (Theorems 6.3 and 7.2), which is the engine of all snapshot-reducibility
//! results: homomorphisms commute with K-relational queries.

use crate::telement::TemporalElement;
use semiring::{CommutativeSemiring, FnHom, MSemiring, NaturallyOrdered, SemiringHomomorphism};
use timeline::{TimeDomain, TimePoint};

impl<K> CommutativeSemiring for TemporalElement<K>
where
    K: CommutativeSemiring,
    K::Ctx: Default,
{
    /// The time domain `T`; needed to build `1_{K^T}`.
    type Ctx = TimeDomain;

    fn zero(_: &TimeDomain) -> Self {
        TemporalElement::empty()
    }

    fn one(domain: &TimeDomain) -> Self {
        TemporalElement::singleton(domain.full_interval(), K::one(&K::Ctx::default()))
    }

    fn plus(&self, other: &Self) -> Self {
        TemporalElement::plus(self, other)
    }

    fn times(&self, other: &Self) -> Self {
        TemporalElement::times(self, other)
    }

    fn is_zero(&self) -> bool {
        self.is_empty()
    }
}

impl<K> NaturallyOrdered for TemporalElement<K>
where
    K: NaturallyOrdered,
    K::Ctx: Default,
{
    /// `k ≤_{K^T} k' ⇔ ∀T: τ_T(k) ≤_K τ_T(k')` (proof of Theorem 7.1).
    fn natural_leq(&self, other: &Self) -> bool {
        // It suffices to compare on the union of both elements' changepoints:
        // between consecutive changepoints both sides are constant.
        let zero = K::zero(&K::Ctx::default());
        let mut pts: Vec<TimePoint> = self
            .changepoints()
            .into_iter()
            .chain(other.changepoints())
            .collect();
        pts.sort_unstable();
        pts.dedup();
        pts.iter().all(|&p| {
            let a = self.at(p).unwrap_or(&zero);
            let b = other.at(p).unwrap_or(&zero);
            a.natural_leq(b)
        })
    }
}

impl<K> MSemiring for TemporalElement<K>
where
    K: MSemiring,
    K::Ctx: Default,
{
    /// The point-wise monus, coalesced (Theorem 7.1:
    /// `k −_{K^T} k' = C_K(k −_{KP} k')`).
    fn monus(&self, other: &Self) -> Self {
        TemporalElement::monus(self, other)
    }
}

/// The timeslice homomorphism `τ_T : K^T → K` (Theorem 6.3).
///
/// Because homomorphisms commute with K-relational queries, evaluating a
/// query over `K^T`-annotated relations and then slicing at `T` equals
/// slicing first and evaluating over `K` — snapshot-reducibility.
pub fn timeslice_hom<K>(t: TimePoint) -> impl SemiringHomomorphism<TemporalElement<K>, K>
where
    K: CommutativeSemiring,
    K::Ctx: Default,
{
    FnHom(move |e: &TemporalElement<K>| e.timeslice(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use semiring::{laws, Boolean, Lineage, Natural};
    use timeline::Interval;

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(b, e)
    }

    fn nat(pairs: &[(i64, i64, u64)]) -> TemporalElement<Natural> {
        TemporalElement::from_pairs(pairs.iter().map(|&(b, e, k)| (iv(b, e), Natural(k))))
    }

    fn raw_element() -> impl Strategy<Value = TemporalElement<Natural>> {
        proptest::collection::vec(
            (0i64..20, 1i64..8, 0u64..4).prop_map(|(b, len, k)| (iv(b, b + len), Natural(k))),
            0..6,
        )
        .prop_map(TemporalElement::from_pairs)
    }

    #[test]
    fn neutral_elements() {
        let d = TimeDomain::new(0, 24);
        let zero = TemporalElement::<Natural>::zero(&d);
        let one = TemporalElement::<Natural>::one(&d);
        assert!(zero.is_empty());
        assert_eq!(one.entries(), &[(iv(0, 24), Natural(1))]);

        let a = nat(&[(3, 9, 2)]);
        assert_eq!(a.plus(&zero), a);
        assert_eq!(CommutativeSemiring::times(&a, &one), a);
        assert_eq!(CommutativeSemiring::times(&a, &zero), zero);
    }

    #[test]
    fn one_is_clipped_to_domain() {
        // times with 1 restricted to a small domain clips nothing because
        // all elements live inside the domain by construction.
        let d = TimeDomain::new(0, 10);
        let one = TemporalElement::<Natural>::one(&d);
        let a = nat(&[(2, 8, 3)]);
        assert_eq!(CommutativeSemiring::times(&a, &one), a);
    }

    #[test]
    fn works_for_boolean_and_lineage() {
        let d = TimeDomain::new(0, 10);
        let a = TemporalElement::singleton(iv(0, 6), Boolean(true));
        let b = TemporalElement::singleton(iv(4, 10), Boolean(true));
        let sum = a.plus(&b);
        assert_eq!(sum.entries(), &[(iv(0, 10), Boolean(true))]);
        assert_eq!(
            TemporalElement::<Boolean>::one(&d).entries(),
            &[(iv(0, 10), Boolean(true))]
        );

        let la = TemporalElement::singleton(iv(0, 6), Lineage::of(1));
        let lb = TemporalElement::singleton(iv(4, 10), Lineage::of(2));
        let prod = CommutativeSemiring::times(&la, &lb);
        assert_eq!(prod.entries(), &[(iv(4, 6), Lineage::from_ids([1, 2]))]);
    }

    #[test]
    fn timeslice_is_homomorphism_on_examples() {
        let d = TimeDomain::new(0, 24);
        let a = nat(&[(3, 10, 1), (18, 20, 1)]);
        let b = nat(&[(8, 16, 1)]);
        for t in 0..24 {
            let h = timeslice_hom::<Natural>(TimePoint::new(t));
            laws::assert_homomorphism(&h, &d, &(), &a, &b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Theorem 6.2: K^T satisfies the commutative semiring laws.
        #[test]
        fn period_semiring_laws(a in raw_element(), b in raw_element(), c in raw_element()) {
            let d = TimeDomain::new(0, 40);
            laws::assert_semiring_laws(&d, &a, &b, &c);
        }

        /// Theorem 7.1: K^T has a well-defined monus satisfying the laws.
        #[test]
        fn period_monus_laws(a in raw_element(), b in raw_element()) {
            let d = TimeDomain::new(0, 40);
            laws::assert_monus_laws(&d, &a, &b);
        }

        /// Theorems 6.3 / 7.2: τ_T is an (m-)semiring homomorphism.
        #[test]
        fn timeslice_homomorphism(a in raw_element(), b in raw_element(), t in 0i64..30) {
            let d = TimeDomain::new(0, 40);
            let h = timeslice_hom::<Natural>(TimePoint::new(t));
            laws::assert_homomorphism(&h, &d, &(), &a, &b);
            // monus commutes as well (m-semiring homomorphism)
            let m = MSemiring::monus(&a, &b);
            prop_assert_eq!(
                m.timeslice(TimePoint::new(t)),
                MSemiring::monus(&a.timeslice(TimePoint::new(t)), &b.timeslice(TimePoint::new(t)))
            );
        }

        /// Lemma 6.1: coalescing can be pushed into the point-wise ops —
        /// operating on coalesced inputs gives the same normal form as
        /// operating on any equivalent raw inputs.
        #[test]
        fn coalesce_pushes_through(raw in proptest::collection::vec(
            (0i64..20, 1i64..8, 0u64..4).prop_map(|(b, len, k)| (iv(b, b + len), Natural(k))),
            0..6,
        ), b in raw_element()) {
            // Split the raw pairs into two halves; summing the halves after
            // coalescing each must equal coalescing everything at once.
            let mid = raw.len() / 2;
            let left = TemporalElement::from_pairs(raw[..mid].to_vec());
            let right = TemporalElement::from_pairs(raw[mid..].to_vec());
            let all = TemporalElement::from_pairs(raw);
            prop_assert_eq!(left.plus(&right), all.clone());
            // And products distribute over the decomposition equally.
            prop_assert_eq!(
                CommutativeSemiring::times(&all, &b),
                CommutativeSemiring::times(&left, &b).plus(&CommutativeSemiring::times(&right, &b))
            );
        }
    }
}
