//! K-relations and relational algebra over them (paper Section 4.1).
//!
//! An n-ary K-relation maps tuples to annotations from a commutative
//! semiring `K`, with tuples mapped to `0K` considered absent. Tuples are
//! generic here (`Tup: Ord + Clone + ...`): the math layer does not care
//! whether a tuple is a `(String, u32)` pair in a unit test or a full
//! engine row. Storage uses a `BTreeMap` so that iteration order — and hence
//! every derived encoding — is canonical.

use semiring::{CommutativeSemiring, MSemiring, Natural, SemiringHomomorphism};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Debug;
use std::hash::Hash;

/// Bound on tuple types usable in K-relations.
pub trait KTuple: Clone + Eq + Ord + Hash + Debug {}
impl<T: Clone + Eq + Ord + Hash + Debug> KTuple for T {}

/// A K-relation: a finite map from tuples to non-zero annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KRelation<Tup, K> {
    tuples: BTreeMap<Tup, K>,
}

impl<Tup: KTuple, K: CommutativeSemiring> Default for KRelation<Tup, K> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<Tup: KTuple, K: CommutativeSemiring> KRelation<Tup, K> {
    /// The empty K-relation.
    pub fn empty() -> Self {
        KRelation {
            tuples: BTreeMap::new(),
        }
    }

    /// Builds a relation from tuple/annotation pairs, summing duplicates.
    pub fn from_pairs<I: IntoIterator<Item = (Tup, K)>>(pairs: I) -> Self {
        let mut rel = Self::empty();
        for (t, k) in pairs {
            rel.add(t, k);
        }
        rel
    }

    /// Adds annotation `k` to tuple `t` (semiring addition; removes the
    /// tuple if the sum becomes zero).
    pub fn add(&mut self, t: Tup, k: K) {
        if k.is_zero() {
            return;
        }
        match self.tuples.entry(t) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(k);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().plus_assign(&k);
                if e.get().is_zero() {
                    e.remove();
                }
            }
        }
    }

    /// The annotation of `t` (`0K` when absent).
    pub fn get(&self, t: &Tup, ctx: &K::Ctx) -> K {
        self.tuples.get(t).cloned().unwrap_or_else(|| K::zero(ctx))
    }

    /// Whether the tuple has a non-zero annotation.
    pub fn contains(&self, t: &Tup) -> bool {
        self.tuples.contains_key(t)
    }

    /// Number of tuples with non-zero annotations.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over `(tuple, annotation)` pairs in canonical (tuple) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tup, &K)> {
        self.tuples.iter()
    }

    /// Selection `σ_θ(R)(t) = R(t) · θ(t)` with a boolean predicate
    /// (the paper's `θ(t)` returns `1K`/`0K`).
    pub fn select(&self, theta: impl Fn(&Tup) -> bool) -> Self {
        KRelation {
            tuples: self
                .tuples
                .iter()
                .filter(|(t, _)| theta(t))
                .map(|(t, k)| (t.clone(), k.clone()))
                .collect(),
        }
    }

    /// Projection `Π_A(R)(t) = Σ_{u: u.A = t} R(u)`.
    pub fn project<Out: KTuple>(&self, f: impl Fn(&Tup) -> Out) -> KRelation<Out, K> {
        let mut out = KRelation::empty();
        for (t, k) in &self.tuples {
            out.add(f(t), k.clone());
        }
        out
    }

    /// Join `(R ⋈ S)(t) = R(t[R]) · S(t[S])`.
    ///
    /// `combine` returns the joined tuple for a pair, or `None` when the
    /// pair does not satisfy the join condition. This is the general
    /// (nested-loop) form; the engine crate provides hash-based joins for
    /// the implementation layer.
    pub fn join<Tup2: KTuple, Out: KTuple>(
        &self,
        other: &KRelation<Tup2, K>,
        combine: impl Fn(&Tup, &Tup2) -> Option<Out>,
    ) -> KRelation<Out, K> {
        let mut out = KRelation::empty();
        for (t1, k1) in &self.tuples {
            for (t2, k2) in &other.tuples {
                if let Some(t) = combine(t1, t2) {
                    out.add(t, k1.times(k2));
                }
            }
        }
        out
    }

    /// Union `(R ∪ S)(t) = R(t) + S(t)`.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (t, k) in &other.tuples {
            out.add(t.clone(), k.clone());
        }
        out
    }

    /// Difference via the monus (Section 7.1): `(R − S)(t) = R(t) −K S(t)`.
    pub fn difference(&self, other: &Self) -> Self
    where
        K: MSemiring,
    {
        let mut out = BTreeMap::new();
        for (t, k) in &self.tuples {
            let k = match other.tuples.get(t) {
                Some(k2) => k.monus(k2),
                None => k.clone(),
            };
            if !k.is_zero() {
                out.insert(t.clone(), k);
            }
        }
        KRelation { tuples: out }
    }

    /// Applies a semiring homomorphism to every annotation. Homomorphisms
    /// commute with all of the operations above (Green et al., Prop. 3.5) —
    /// the property tests exercise this.
    pub fn map_annotations<K2: CommutativeSemiring>(
        &self,
        h: &impl SemiringHomomorphism<K, K2>,
    ) -> KRelation<Tup, K2> {
        let mut out = KRelation::empty();
        for (t, k) in &self.tuples {
            out.add(t.clone(), h.apply(k));
        }
        out
    }
}

impl<Tup: KTuple> KRelation<Tup, Natural> {
    /// Expands the multiset view: each tuple repeated by its multiplicity.
    pub fn expand(&self) -> Vec<Tup> {
        let mut out = Vec::new();
        for (t, k) in &self.tuples {
            for _ in 0..k.0 {
                out.push(t.clone());
            }
        }
        out
    }

    /// Grouped aggregation over a multiset relation.
    ///
    /// `group` extracts the grouping key; `agg` receives the group's tuples
    /// with multiplicities and produces the aggregated output tuple. Each
    /// group yields exactly one result tuple with multiplicity 1 — matching
    /// SQL `GROUP BY` over bags and Definition 7.1 applied per snapshot.
    pub fn aggregate_grouped<G: KTuple, Out: KTuple>(
        &self,
        group: impl Fn(&Tup) -> G,
        agg: impl Fn(&G, &[(&Tup, u64)]) -> Out,
    ) -> KRelation<Out, Natural> {
        let mut groups: BTreeMap<G, Vec<(&Tup, u64)>> = BTreeMap::new();
        for (t, k) in &self.tuples {
            groups.entry(group(t)).or_default().push((t, k.0));
        }
        let mut out = KRelation::empty();
        for (g, members) in &groups {
            out.add(agg(g, members), Natural(1));
        }
        out
    }

    /// Aggregation without grouping: always yields exactly one result tuple,
    /// even over an empty input (e.g. `count(*)` of nothing is 0) — the
    /// behaviour whose temporal lifting exposes the aggregation-gap bug.
    pub fn aggregate_global<Out: KTuple>(
        &self,
        agg: impl Fn(&[(&Tup, u64)]) -> Out,
    ) -> KRelation<Out, Natural> {
        let members: Vec<(&Tup, u64)> = self.tuples.iter().map(|(t, k)| (t, k.0)).collect();
        let mut out = KRelation::empty();
        out.add(agg(&members), Natural(1));
        out
    }
}

impl<Tup: KTuple + fmt::Display, K: CommutativeSemiring + fmt::Display> fmt::Display
    for KRelation<Tup, K>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, k) in &self.tuples {
            writeln!(f, "{t} ↦ {k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::{support, Boolean, Natural};

    type Rel = KRelation<(&'static str, &'static str), Natural>;

    fn works() -> Rel {
        KRelation::from_pairs([
            (("Pete", "SP"), Natural(1)),
            (("Bob", "SP"), Natural(1)),
            (("Alice", "NS"), Natural(1)),
        ])
    }

    fn assign() -> KRelation<(&'static str, &'static str), Natural> {
        KRelation::from_pairs([(("M1", "SP"), Natural(4)), (("M2", "NS"), Natural(5))])
    }

    #[test]
    fn example_4_1_join_project() {
        // Q = Π_mach(works ⋈ assign): M1 -> 8, M2 -> 5.
        let q = works()
            .join(&assign(), |w, a| (w.1 == a.1).then_some(a.0))
            .project(|m| *m);
        assert_eq!(q.get(&"M1", &()), Natural(8));
        assert_eq!(q.get(&"M2", &()), Natural(5));

        // Homomorphism to B recovers set semantics.
        let set = q.map_annotations(&support());
        assert_eq!(set.get(&"M1", &()), Boolean(true));
    }

    #[test]
    fn add_removes_zeros() {
        let mut r: KRelation<&str, Natural> = KRelation::empty();
        r.add("a", Natural(0));
        assert!(r.is_empty());
        r.add("a", Natural(2));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn select_project_union() {
        let w = works();
        let sp = w.select(|t| t.1 == "SP");
        assert_eq!(sp.len(), 2);
        let names = sp.project(|t| t.0);
        assert_eq!(names.get(&"Pete", &()), Natural(1));
        let u = w.union(&w);
        assert_eq!(u.get(&("Pete", "SP"), &()), Natural(2));
    }

    #[test]
    fn bag_difference_uses_monus() {
        let a: KRelation<&str, Natural> =
            KRelation::from_pairs([("x", Natural(3)), ("y", Natural(1))]);
        let b: KRelation<&str, Natural> =
            KRelation::from_pairs([("x", Natural(1)), ("y", Natural(5))]);
        let d = a.difference(&b);
        assert_eq!(d.get(&"x", &()), Natural(2));
        assert!(!d.contains(&"y"));
    }

    #[test]
    fn set_difference_via_boolean() {
        let a: KRelation<&str, Boolean> =
            KRelation::from_pairs([("x", Boolean(true)), ("y", Boolean(true))]);
        let b: KRelation<&str, Boolean> = KRelation::from_pairs([("y", Boolean(true))]);
        let d = a.difference(&b);
        assert!(d.contains(&"x"));
        assert!(!d.contains(&"y"));
    }

    #[test]
    fn grouped_aggregation() {
        let w = KRelation::from_pairs([
            (("SP", 10u64), Natural(2)),
            (("SP", 20), Natural(1)),
            (("NS", 5), Natural(1)),
        ]);
        // count(*) per skill, weighted by multiplicity.
        let counts = w.aggregate_grouped(
            |t| t.0,
            |g, members| (*g, members.iter().map(|(_, m)| m).sum::<u64>()),
        );
        assert_eq!(counts.get(&("SP", 3), &()), Natural(1));
        assert_eq!(counts.get(&("NS", 1), &()), Natural(1));
    }

    #[test]
    fn global_aggregation_on_empty_input() {
        let empty: KRelation<(&str, u64), Natural> = KRelation::empty();
        let count = empty.aggregate_global(|ms| ms.iter().map(|(_, m)| m).sum::<u64>());
        assert_eq!(count.get(&0u64, &()), Natural(1)); // count(*) = 0, present!
    }

    #[test]
    fn expand_multiset_view() {
        let r: KRelation<&str, Natural> =
            KRelation::from_pairs([("a", Natural(2)), ("b", Natural(1))]);
        assert_eq!(r.expand(), vec!["a", "a", "b"]);
    }
}
