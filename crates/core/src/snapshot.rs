//! Snapshot K-relations: the abstract model (paper Section 4.2).
//!
//! A snapshot K-relation is a function `T → R_{K,R}` assigning a K-relation
//! to every time point. Snapshot semantics (Definition 4.4) evaluates a
//! query point-wise: `Q(D)(T) = Q(D(T))`. This model is verbose — the paper
//! uses it as the semantic ground truth against which the compact logical
//! model is proven correct — and this crate uses it the same way: the
//! point-wise oracle in the `baseline` crate and the property tests both
//! evaluate queries in this model and compare.

use crate::krelation::{KRelation, KTuple};
use semiring::CommutativeSemiring;
use std::collections::BTreeMap;
use timeline::{TimeDomain, TimePoint};

/// The abstract model: one K-relation per time point of the domain.
///
/// Time points without an explicit entry map to the empty K-relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRelation<Tup, K> {
    domain: TimeDomain,
    snaps: BTreeMap<TimePoint, KRelation<Tup, K>>,
}

impl<Tup: KTuple, K: CommutativeSemiring> SnapshotRelation<Tup, K> {
    /// The everywhere-empty snapshot relation over `domain`.
    pub fn empty(domain: TimeDomain) -> Self {
        SnapshotRelation {
            domain,
            snaps: BTreeMap::new(),
        }
    }

    /// Builds the relation from an explicit assignment of snapshots.
    ///
    /// # Panics
    /// Panics if a time point lies outside the domain.
    pub fn from_snapshots<I>(domain: TimeDomain, snaps: I) -> Self
    where
        I: IntoIterator<Item = (TimePoint, KRelation<Tup, K>)>,
    {
        let mut rel = Self::empty(domain);
        for (t, snap) in snaps {
            rel.set_snapshot(t, snap);
        }
        rel
    }

    /// The time domain `T`.
    pub fn domain(&self) -> TimeDomain {
        self.domain
    }

    /// Replaces the snapshot at `t`.
    pub fn set_snapshot(&mut self, t: TimePoint, snap: KRelation<Tup, K>) {
        assert!(
            self.domain.contains(t),
            "time point {t} outside domain {}",
            self.domain
        );
        if snap.is_empty() {
            self.snaps.remove(&t);
        } else {
            self.snaps.insert(t, snap);
        }
    }

    /// Adds annotation `k` to tuple `t` at a single time point.
    pub fn add_at(&mut self, time: TimePoint, tuple: Tup, k: K) {
        assert!(
            self.domain.contains(time),
            "time point {time} outside domain {}",
            self.domain
        );
        self.snaps.entry(time).or_default().add(tuple, k);
        if self.snaps.get(&time).is_some_and(|s| s.is_empty()) {
            self.snaps.remove(&time);
        }
    }

    /// The timeslice operator `τ_T(R) = R(T)` (Section 4.2).
    pub fn timeslice(&self, t: TimePoint) -> KRelation<Tup, K> {
        self.snaps.get(&t).cloned().unwrap_or_default()
    }

    /// Snapshot semantics (Definition 4.4): applies a non-temporal query to
    /// every snapshot of the domain.
    ///
    /// Note the iteration covers *all* time points, not just populated ones:
    /// queries such as `count(*)` produce non-empty output from empty input,
    /// which is exactly the behaviour the aggregation-gap bug loses.
    pub fn eval_query<Out: KTuple, K2: CommutativeSemiring>(
        &self,
        query: impl Fn(&KRelation<Tup, K>) -> KRelation<Out, K2>,
    ) -> SnapshotRelation<Out, K2> {
        let mut out = SnapshotRelation::empty(self.domain);
        let empty = KRelation::empty();
        for t in self.domain.points() {
            let snap = self.snaps.get(&t).unwrap_or(&empty);
            let res = query(snap);
            if !res.is_empty() {
                out.snaps.insert(t, res);
            }
        }
        out
    }

    /// Binary variant of [`SnapshotRelation::eval_query`] for joins, unions,
    /// and difference.
    pub fn eval_query2<Tup2: KTuple, Out: KTuple, K2: CommutativeSemiring>(
        &self,
        other: &SnapshotRelation<Tup2, K>,
        query: impl Fn(&KRelation<Tup, K>, &KRelation<Tup2, K>) -> KRelation<Out, K2>,
    ) -> SnapshotRelation<Out, K2> {
        assert_eq!(
            self.domain, other.domain,
            "snapshot relations must share a time domain"
        );
        let mut out = SnapshotRelation::empty(self.domain);
        let (e1, e2) = (KRelation::empty(), KRelation::empty());
        for t in self.domain.points() {
            let s1 = self.snaps.get(&t).unwrap_or(&e1);
            let s2 = other.snaps.get(&t).unwrap_or(&e2);
            let res = query(s1, s2);
            if !res.is_empty() {
                out.snaps.insert(t, res);
            }
        }
        out
    }

    /// Snapshot-equivalence `~` (Section 4.3): equality of every snapshot.
    /// Because empty snapshots are never stored, this is structural equality.
    pub fn snapshot_equivalent(&self, other: &Self) -> bool {
        self == other
    }

    /// Iterates over the populated snapshots in time order.
    pub fn iter(&self) -> impl Iterator<Item = (&TimePoint, &KRelation<Tup, K>)> {
        self.snaps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::Natural;

    type Tup = (&'static str, &'static str);

    /// The works relation of Figure 1 in the abstract model.
    pub fn works_abstract() -> SnapshotRelation<Tup, Natural> {
        let d = TimeDomain::new(0, 24);
        let mut r = SnapshotRelation::empty(d);
        let facts: [(&str, &str, i64, i64); 4] = [
            ("Ann", "SP", 3, 10),
            ("Joe", "NS", 8, 16),
            ("Sam", "SP", 8, 16),
            ("Ann", "SP", 18, 20),
        ];
        for (name, skill, b, e) in facts {
            for t in b..e {
                r.add_at(TimePoint::new(t), (name, skill), Natural(1));
            }
        }
        r
    }

    #[test]
    fn figure_2_snapshots() {
        let r = works_abstract();
        // At 08 three tuples, each multiplicity 1.
        let s8 = r.timeslice(TimePoint::new(8));
        assert_eq!(s8.len(), 3);
        assert_eq!(s8.get(&("Ann", "SP"), &()), Natural(1));
        // At 00 empty; at 18 just Ann.
        assert!(r.timeslice(TimePoint::new(0)).is_empty());
        let s18 = r.timeslice(TimePoint::new(18));
        assert_eq!(s18.len(), 1);
        assert!(s18.contains(&("Ann", "SP")));
    }

    #[test]
    fn q_onduty_under_snapshot_semantics() {
        // count(*) where skill = SP, evaluated per snapshot (Figure 1b).
        let r = works_abstract();
        let result = r.eval_query(|snap| {
            snap.select(|t| t.1 == "SP")
                .aggregate_global(|ms| ms.iter().map(|(_, m)| m).sum::<u64>())
        });
        // Expected counts per Figure 1b.
        let expect = |t: i64| -> u64 {
            match t {
                0..=2 => 0,
                3..=7 => 1,
                8..=9 => 2,
                10..=15 => 1,
                16..=17 => 0,
                18..=19 => 1,
                _ => 0,
            }
        };
        for t in 0..24 {
            let snap = result.timeslice(TimePoint::new(t));
            assert_eq!(
                snap.get(&expect(t), &()),
                Natural(1),
                "wrong count at time {t}"
            );
            assert_eq!(snap.len(), 1, "exactly one count tuple at {t}");
        }
    }

    #[test]
    fn add_at_outside_domain_panics() {
        let d = TimeDomain::new(0, 10);
        let mut r: SnapshotRelation<&str, Natural> = SnapshotRelation::empty(d);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            r.add_at(TimePoint::new(10), "x", Natural(1));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn empty_snapshots_not_stored() {
        let d = TimeDomain::new(0, 10);
        let mut r: SnapshotRelation<&str, Natural> = SnapshotRelation::empty(d);
        r.add_at(TimePoint::new(3), "x", Natural(1));
        r.add_at(TimePoint::new(3), "x", Natural(0));
        assert_eq!(r.iter().count(), 1);
        r.set_snapshot(TimePoint::new(3), KRelation::empty());
        assert_eq!(r.iter().count(), 0);
    }
}
