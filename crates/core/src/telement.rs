//! Temporal K-elements and K-coalescing (paper Section 5).
//!
//! A *temporal K-element* records how the K-annotation of a tuple changes
//! over time: a partial map from intervals to semiring elements, where the
//! annotation at a point `T` is the **sum** of the values of all intervals
//! containing `T`. Because many maps encode the same annotation history, the
//! paper introduces *K-coalescing* (Definition 5.3), a generalization of
//! classic set-semantics coalescing, which produces the unique normal form:
//! maximal intervals of constant, non-zero annotation.
//!
//! [`TemporalElement`] always holds the normal form; arbitrary
//! interval-to-annotation assignments enter through [`TemporalElement::from_pairs`]
//! (which coalesces) and only exist transiently inside the point-wise
//! operations `+KP`, `·KP`, `−KP` of the period semiring.

use semiring::{CommutativeSemiring, MSemiring};
use std::fmt;
use timeline::{Interval, TimePoint};

/// A temporal K-element in K-coalesced normal form.
///
/// Invariants (checked in debug builds, relied upon everywhere):
/// 1. entries are sorted by interval begin,
/// 2. intervals are pairwise disjoint,
/// 3. adjacent intervals carry *different* annotations (maximality),
/// 4. no annotation is `0K`.
///
/// Under these invariants, structural equality coincides with
/// snapshot-equivalence (`~`), which is exactly the uniqueness statement of
/// Lemma 5.1.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemporalElement<K> {
    entries: Vec<(Interval, K)>,
}

impl<K: CommutativeSemiring> Default for TemporalElement<K> {
    fn default() -> Self {
        TemporalElement::empty()
    }
}

impl<K: CommutativeSemiring> TemporalElement<K> {
    /// The element mapping every interval to `0K` (the zero of `K^T`).
    pub fn empty() -> Self {
        TemporalElement {
            entries: Vec::new(),
        }
    }

    /// An element assigning `k` to a single interval.
    pub fn singleton(interval: Interval, k: K) -> Self {
        if k.is_zero() {
            return Self::empty();
        }
        TemporalElement {
            entries: vec![(interval, k)],
        }
    }

    /// Builds the normal form from an arbitrary interval → K assignment
    /// (this *is* `C_K`, Definition 5.3).
    ///
    /// Overlapping intervals contribute the sum of their annotations at every
    /// shared point; intervals mapped to `0K` are ignored.
    pub fn from_pairs<I: IntoIterator<Item = (Interval, K)>>(pairs: I) -> Self {
        let mut pairs: Vec<(Interval, K)> =
            pairs.into_iter().filter(|(_, k)| !k.is_zero()).collect();
        if pairs.is_empty() {
            return Self::empty();
        }
        if pairs.len() == 1 {
            return TemporalElement { entries: pairs };
        }
        pairs.sort_by_key(|(i, _)| (i.begin(), i.end()));

        // Collect the endpoint set; consecutive endpoints delimit elementary
        // segments on which the point-wise sum is constant (the CPI intervals
        // of Definition 5.2 are unions of these).
        let mut endpoints: Vec<TimePoint> = Vec::with_capacity(pairs.len() * 2);
        for (i, _) in &pairs {
            endpoints.push(i.begin());
            endpoints.push(i.end());
        }
        endpoints.sort_unstable();
        endpoints.dedup();

        // Sweep: walk the elementary segments left to right, maintaining the
        // set of input intervals covering the current segment.
        let mut entries: Vec<(Interval, K)> = Vec::new();
        let mut active: Vec<(Interval, K)> = Vec::new();
        let mut next = 0usize; // next input pair to activate
        for seg in endpoints.windows(2) {
            let seg = Interval::new(seg[0], seg[1]);
            active.retain(|(i, _)| i.end() > seg.begin());
            while next < pairs.len() && pairs[next].0.begin() <= seg.begin() {
                if pairs[next].0.end() > seg.begin() {
                    active.push(pairs[next].clone());
                } // else: interval already entirely to the left (possible
                  // because pairs are sorted by begin only)
                next += 1;
            }
            if active.is_empty() {
                continue;
            }
            let mut sum = active[0].1.clone();
            for (_, k) in &active[1..] {
                sum.plus_assign(k);
            }
            if sum.is_zero() {
                continue;
            }
            // Merge with the previous entry when adjacent and equal
            // (maximality of coalesced intervals).
            if let Some((last_i, last_k)) = entries.last_mut() {
                if last_i.end() == seg.begin() && *last_k == sum {
                    *last_i = Interval::new(last_i.begin(), seg.end());
                    continue;
                }
            }
            entries.push((seg, sum));
        }
        let out = TemporalElement { entries };
        debug_assert!(out.is_normal_form());
        out
    }

    /// Whether the internal representation satisfies the normal-form
    /// invariants of K-coalescing.
    pub fn is_normal_form(&self) -> bool {
        if self.entries.iter().any(|(_, k)| k.is_zero()) {
            return false;
        }
        self.entries.windows(2).all(|w| {
            let ((i1, k1), (i2, k2)) = (&w[0], &w[1]);
            // sorted + disjoint + maximal
            i1.end() <= i2.begin() && !(i1.end() == i2.begin() && k1 == k2)
        })
    }

    /// The annotation valid at time `T`, or `None` when it is `0K`.
    ///
    /// In normal form at most one interval contains `T`, so this is a binary
    /// search rather than a sum. [`TemporalElement::timeslice`] is the
    /// context-free variant returning `0K` directly.
    pub fn at(&self, t: TimePoint) -> Option<&K> {
        let idx = self.entries.partition_point(|(i, _)| i.end() <= t);
        match self.entries.get(idx) {
            Some((i, k)) if i.contains(t) => Some(k),
            _ => None,
        }
    }

    /// The `(interval, annotation)` pairs of the normal form, in order.
    pub fn entries(&self) -> &[(Interval, K)] {
        &self.entries
    }

    /// Whether the element is the zero of `K^T` (annotation `0K` everywhere).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of maximal constant intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The annotation changepoints strictly within the element's support
    /// (boundaries of the maximal constant intervals; Definition 5.2 also
    /// includes `Tmin`, which depends on the domain and is added by callers
    /// that need it).
    pub fn changepoints(&self) -> Vec<TimePoint> {
        let mut out = Vec::with_capacity(self.entries.len() * 2);
        for (i, _) in &self.entries {
            out.push(i.begin());
            out.push(i.end());
        }
        out.dedup();
        out
    }

    /// Point-wise sum `self +KP other`, coalesced: this is `+_{K^T}`.
    pub fn plus(&self, other: &Self) -> Self {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        Self::from_pairs(
            self.entries
                .iter()
                .chain(other.entries.iter())
                .cloned()
                .collect::<Vec<_>>(),
        )
    }

    /// Point-wise product `self ·KP other`, coalesced: this is `·_{K^T}`.
    ///
    /// The product of values attached to a pair of overlapping intervals is
    /// valid on their intersection; summing over all overlapping pairs is
    /// handled by [`TemporalElement::from_pairs`].
    pub fn times(&self, other: &Self) -> Self {
        if self.is_empty() || other.is_empty() {
            return Self::empty();
        }
        let mut pairs = Vec::new();
        // Both operands are in normal form (sorted, disjoint), so a merge
        // scan finds all overlapping pairs in O(n + m + #overlaps).
        let (a, b) = (&self.entries, &other.entries);
        let mut start = 0usize;
        for (ia, ka) in a {
            while start < b.len() && b[start].0.end() <= ia.begin() {
                start += 1;
            }
            for (ib, kb) in &b[start..] {
                if ib.begin() >= ia.end() {
                    break;
                }
                if let Some(i) = ia.intersect(*ib) {
                    pairs.push((i, ka.times(kb)));
                }
            }
        }
        Self::from_pairs(pairs)
    }

    /// The point-wise monus `self −KP other`, coalesced: `−_{K^T}`
    /// (Theorem 7.1). Requires `K` to be an m-semiring.
    ///
    /// Instead of evaluating point by point over singleton intervals (the
    /// definition), both operands are refined to their common interval
    /// partition, on which the monus is constant — the same trick the
    /// implementation layer uses via the split operator.
    pub fn monus(&self, other: &Self) -> Self
    where
        K: MSemiring,
    {
        if self.is_empty() {
            return Self::empty();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut endpoints: Vec<TimePoint> = self
            .changepoints()
            .into_iter()
            .chain(other.changepoints())
            .collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        let mut pairs = Vec::new();
        for seg in endpoints.windows(2) {
            let seg = Interval::new(seg[0], seg[1]);
            let Some(a) = self.at(seg.begin()) else {
                continue;
            };
            let m = match other.at(seg.begin()) {
                Some(b) => a.monus(b),
                None => a.clone(),
            };
            if !m.is_zero() {
                pairs.push((seg, m));
            }
        }
        Self::from_pairs(pairs)
    }

    /// Snapshot-equivalence `~` (Section 5.1). By the uniqueness half of
    /// Lemma 5.1 this is simply equality of normal forms; kept as a named
    /// operation for readability of tests and checks.
    pub fn snapshot_equivalent(&self, other: &Self) -> bool {
        self == other
    }
}

impl<K: CommutativeSemiring> TemporalElement<K>
where
    K::Ctx: Default,
{
    /// The timeslice `τ_T` for semirings whose context is trivial.
    pub fn timeslice(&self, t: TimePoint) -> K {
        let idx = self.entries.partition_point(|(i, _)| i.end() <= t);
        match self.entries.get(idx) {
            Some((i, k)) if i.contains(t) => k.clone(),
            _ => K::zero(&K::Ctx::default()),
        }
    }
}

impl<K: CommutativeSemiring + fmt::Display> fmt::Display for TemporalElement<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (iv, k)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv} ↦ {k}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use semiring::{Boolean, Natural};

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(b, e)
    }

    fn nat(pairs: &[(i64, i64, u64)]) -> TemporalElement<Natural> {
        TemporalElement::from_pairs(pairs.iter().map(|&(b, e, k)| (iv(b, e), Natural(k))))
    }

    #[test]
    fn example_5_1_identity() {
        // T1 = {[03,09) -> 3, [18,20) -> 2} is already coalesced.
        let t1 = nat(&[(3, 9, 3), (18, 20, 2)]);
        assert_eq!(
            t1.entries(),
            &[(iv(3, 9), Natural(3)), (iv(18, 20), Natural(2))]
        );
        assert!(t1.is_normal_form());
    }

    #[test]
    fn example_5_2_equivalent_encodings_coalesce_identically() {
        // T2 and T3 from Example 5.2 are snapshot-equivalent to T1 restricted
        // appropriately; their normal forms coincide.
        let t2 = nat(&[(3, 9, 1), (3, 6, 2), (6, 9, 2), (18, 19, 2)]);
        let t3 = nat(&[(3, 5, 3), (5, 9, 3), (18, 19, 2)]);
        assert_eq!(t2, t3);
        assert_eq!(
            t2.entries(),
            &[(iv(3, 9), Natural(3)), (iv(18, 19), Natural(2))]
        );
    }

    #[test]
    fn example_5_3_n_coalesce() {
        // T30k = {[3,10) -> 1, [3,13) -> 1}  ==>  {[3,10) -> 2, [10,13) -> 1}
        let t30k = nat(&[(3, 10, 1), (3, 13, 1)]);
        assert_eq!(
            t30k.entries(),
            &[(iv(3, 10), Natural(2)), (iv(10, 13), Natural(1))]
        );
    }

    #[test]
    fn example_5_3_b_coalesce() {
        // Under B the same history coalesces to {[3,13) -> true}.
        let t =
            TemporalElement::from_pairs([(iv(3, 10), Boolean(true)), (iv(3, 13), Boolean(true))]);
        assert_eq!(t.entries(), &[(iv(3, 13), Boolean(true))]);
    }

    #[test]
    fn overlap_semantics_is_sum() {
        // {[0,5) -> 2, [4,5) -> 1}: annotation at 4 is 3 (Section 5.1).
        let t = nat(&[(0, 5, 2), (4, 5, 1)]);
        assert_eq!(t.timeslice(TimePoint::new(4)), Natural(3));
        assert_eq!(t.timeslice(TimePoint::new(3)), Natural(2));
        assert_eq!(t.timeslice(TimePoint::new(5)), Natural(0));
    }

    #[test]
    fn zero_annotations_are_dropped() {
        let t = nat(&[(0, 5, 0)]);
        assert!(t.is_empty());
        let t = TemporalElement::<Natural>::from_pairs([]);
        assert!(t.is_empty());
    }

    #[test]
    fn timeslice_out_of_support() {
        let t = nat(&[(3, 9, 3)]);
        assert_eq!(t.timeslice(TimePoint::new(2)), Natural(0));
        assert_eq!(t.timeslice(TimePoint::new(9)), Natural(0));
        assert_eq!(t.timeslice(TimePoint::new(100)), Natural(0));
    }

    #[test]
    fn example_6_1_projection_sum() {
        // T1 + T2 from Example 6.1.
        let t1 = nat(&[(3, 10, 1), (18, 20, 1)]);
        let t2 = nat(&[(8, 16, 1)]);
        let sum = t1.plus(&t2);
        assert_eq!(
            sum.entries(),
            &[
                (iv(3, 8), Natural(1)),
                (iv(8, 10), Natural(2)),
                (iv(10, 16), Natural(1)),
                (iv(18, 20), Natural(1)),
            ]
        );
    }

    #[test]
    fn section_7_1_monus_example() {
        // assign side: {[03,06) -> 1, [06,12) -> 2, [12,14) -> 1}
        let assign = nat(&[(3, 12, 1), (6, 14, 1)]);
        assert_eq!(
            assign.entries(),
            &[
                (iv(3, 6), Natural(1)),
                (iv(6, 12), Natural(2)),
                (iv(12, 14), Natural(1)),
            ]
        );
        // works side: {[03,08) -> 1, [08,10) -> 2, [10,16) -> 1, [18,20) -> 1}
        let works = nat(&[(3, 10, 1), (8, 16, 1), (18, 20, 1)]);
        // monus: {[06,08) -> 1, [10,12) -> 1}
        let diff = assign.monus(&works);
        assert_eq!(
            diff.entries(),
            &[(iv(6, 8), Natural(1)), (iv(10, 12), Natural(1))]
        );
    }

    #[test]
    fn times_intersects() {
        let a = nat(&[(0, 10, 2)]);
        let b = nat(&[(5, 15, 3)]);
        assert_eq!(a.times(&b).entries(), &[(iv(5, 10), Natural(6))]);
        // Multiple overlaps sum.
        let c = nat(&[(0, 4, 1), (6, 10, 1)]);
        let d = nat(&[(2, 8, 1)]);
        assert_eq!(
            c.times(&d).entries(),
            &[(iv(2, 4), Natural(1)), (iv(6, 8), Natural(1))]
        );
    }

    #[test]
    fn monus_with_empty_sides() {
        let a = nat(&[(0, 10, 2)]);
        let empty = TemporalElement::<Natural>::empty();
        assert_eq!(a.monus(&empty), a);
        assert_eq!(empty.monus(&a), empty);
    }

    // ---- property tests ----------------------------------------------

    /// A strategy over raw (possibly overlapping, possibly zero) pairs.
    fn raw_pairs() -> impl Strategy<Value = Vec<(Interval, Natural)>> {
        proptest::collection::vec(
            (0i64..20, 1i64..8, 0u64..4).prop_map(|(b, len, k)| (iv(b, b + len), Natural(k))),
            0..8,
        )
    }

    fn reference_timeslice(pairs: &[(Interval, Natural)], t: TimePoint) -> Natural {
        let mut sum = Natural(0);
        for (i, k) in pairs {
            if i.contains(t) {
                sum.plus_assign(k);
            }
        }
        sum
    }

    proptest! {
        /// Equivalence preservation (Lemma 5.1): coalescing does not change
        /// any snapshot.
        #[test]
        fn coalesce_preserves_snapshots(pairs in raw_pairs()) {
            let t = TemporalElement::from_pairs(pairs.clone());
            for p in 0..30 {
                let p = TimePoint::new(p);
                prop_assert_eq!(t.timeslice(p), reference_timeslice(&pairs, p));
            }
        }

        /// Idempotence (Lemma 5.1): re-coalescing a normal form is identity.
        #[test]
        fn coalesce_idempotent(pairs in raw_pairs()) {
            let t = TemporalElement::from_pairs(pairs);
            let again = TemporalElement::from_pairs(t.entries().to_vec());
            prop_assert_eq!(t, again);
        }

        /// Uniqueness (Lemma 5.1): snapshot-equivalent raw encodings have
        /// identical normal forms.
        #[test]
        fn coalesce_unique(pairs in raw_pairs(), shuffle_seed in 0usize..100) {
            // Build an equivalent encoding by splitting every interval at an
            // arbitrary midpoint and permuting.
            let mut alt: Vec<(Interval, Natural)> = Vec::new();
            for (i, k) in &pairs {
                if i.duration() >= 2 && shuffle_seed % 2 == 0 {
                    let mid = i.begin() + (i.duration() as i64 / 2);
                    alt.push((Interval::new(i.begin(), mid), *k));
                    alt.push((Interval::new(mid, i.end()), *k));
                } else {
                    alt.push((*i, *k));
                }
            }
            let rot = shuffle_seed % alt.len().max(1);
            alt.rotate_left(rot);
            prop_assert_eq!(
                TemporalElement::from_pairs(pairs),
                TemporalElement::from_pairs(alt)
            );
        }

        /// Normal form invariants always hold after from_pairs.
        #[test]
        fn from_pairs_normal_form(pairs in raw_pairs()) {
            prop_assert!(TemporalElement::from_pairs(pairs).is_normal_form());
        }

        /// plus/times/monus agree with their point-wise definitions.
        #[test]
        fn ops_match_pointwise(a in raw_pairs(), b in raw_pairs()) {
            let ta = TemporalElement::from_pairs(a);
            let tb = TemporalElement::from_pairs(b);
            let plus = ta.plus(&tb);
            let times = ta.times(&tb);
            let monus = ta.monus(&tb);
            for p in 0..30 {
                let p = TimePoint::new(p);
                let (ka, kb) = (ta.timeslice(p), tb.timeslice(p));
                prop_assert_eq!(plus.timeslice(p), ka.plus(&kb));
                prop_assert_eq!(times.timeslice(p), ka.times(&kb));
                prop_assert_eq!(monus.timeslice(p), {
                    use semiring::MSemiring;
                    ka.monus(&kb)
                });
            }
        }
    }
}
