//! The abstract and logical temporal models of *Snapshot Semantics for
//! Temporal Multiset Relations* (Dignös et al., PVLDB 2019).
//!
//! The paper's three-level architecture (its Figure 2):
//!
//! 1. **Abstract model** — [`SnapshotRelation`]: a function from time points
//!    to K-relations. Queries are evaluated snapshot-by-snapshot, which makes
//!    snapshot-reducibility hold *by construction* (Section 4.2). Verbose,
//!    but the semantic ground truth.
//! 2. **Logical model** — [`PeriodRelation`]: one tuple per distinct data
//!    value, annotated with a [`TemporalElement`] in K-coalesced normal form
//!    (Sections 5 and 6). The annotations form the *period semiring* `K^T`;
//!    queries are ordinary K-relational queries over that semiring. This
//!    crate verifies the representation-system properties empirically via
//!    extensive property tests (uniqueness, snapshot-preservation,
//!    snapshot-reducibility; Definition 4.5).
//! 3. **Implementation model** — SQL period relations and the `REWR`
//!    rewriting, provided by the `rewrite` and `engine` crates on top of the
//!    types defined here.
//!
//! The module split mirrors the paper:
//!
//! * [`telement`] — temporal K-elements and K-coalescing (Section 5),
//! * [`period_semiring`] — the semiring structure `K^T` on coalesced
//!   elements, its monus, and the timeslice homomorphism (Sections 6–7),
//! * [`krelation`] — generic K-relations and `RA+`/monus/aggregation over
//!   them (Section 4.1),
//! * [`snapshot`] — snapshot K-relations, the abstract model (Section 4.2),
//! * [`period_relation`] — period K-relations, `ENC_K`, and queries over the
//!   logical model (Sections 6.2–6.3, 7),
//! * [`repr`] — executable checks for the representation-system conditions
//!   (Definition 4.5).

pub mod krelation;
pub mod period_relation;
pub mod period_semiring;
pub mod repr;
pub mod snapshot;
pub mod telement;

pub use krelation::KRelation;
pub use period_relation::PeriodRelation;
pub use period_semiring::timeslice_hom;
pub use snapshot::SnapshotRelation;
pub use telement::TemporalElement;
