//! Period K-relations: the logical model (paper Sections 6.2–6.3 and 7).
//!
//! A period K-relation annotates each tuple with a coalesced
//! [`TemporalElement`] — an element of the period semiring `K^T`. Queries
//! are *ordinary* K-relational queries instantiated at `K^T`; the encoding
//! `ENC_K` (Definition 6.3) maps the abstract model into this one, and
//! Theorem 6.6 / 7.3 state that the triple (period K-relations, `ENC_K⁻¹`,
//! timeslice) is a representation system. The `repr` module checks those
//! conditions executably; the property tests in this module exercise them on
//! random data.

use crate::krelation::{KRelation, KTuple};
use crate::snapshot::SnapshotRelation;
use crate::telement::TemporalElement;
use semiring::{CommutativeSemiring, MSemiring, Natural};
use std::collections::BTreeMap;
use std::fmt;
use timeline::{Interval, TimeDomain, TimePoint};

/// The logical model: tuples annotated with coalesced temporal K-elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodRelation<Tup, K>
where
    K: CommutativeSemiring,
{
    domain: TimeDomain,
    tuples: BTreeMap<Tup, TemporalElement<K>>,
}

impl<Tup, K> PeriodRelation<Tup, K>
where
    Tup: KTuple,
    K: CommutativeSemiring,
    K::Ctx: Default,
{
    /// The empty period K-relation over `domain`.
    pub fn empty(domain: TimeDomain) -> Self {
        PeriodRelation {
            domain,
            tuples: BTreeMap::new(),
        }
    }

    /// Builds a relation from `(tuple, interval, annotation)` facts — the
    /// natural reading of an SQL period relation. Annotation histories are
    /// coalesced per tuple, so the result is always in normal form.
    pub fn from_facts<I>(domain: TimeDomain, facts: I) -> Self
    where
        I: IntoIterator<Item = (Tup, Interval, K)>,
    {
        let mut raw: BTreeMap<Tup, Vec<(Interval, K)>> = BTreeMap::new();
        for (t, i, k) in facts {
            assert!(
                domain.contains_interval(i),
                "interval {i} outside domain {domain}"
            );
            raw.entry(t).or_default().push((i, k));
        }
        let mut rel = Self::empty(domain);
        for (t, pairs) in raw {
            let e = TemporalElement::from_pairs(pairs);
            if !e.is_empty() {
                rel.tuples.insert(t, e);
            }
        }
        rel
    }

    /// The encoding `ENC_K` of a snapshot K-relation (Definition 6.3):
    /// each tuple's per-point annotations become singleton intervals, then
    /// K-coalescing produces the unique normal form. `ENC_K` is bijective
    /// (Lemma 6.4); [`PeriodRelation::decode`] is its inverse.
    pub fn encode(snapshot: &SnapshotRelation<Tup, K>) -> Self {
        let mut raw: BTreeMap<Tup, Vec<(Interval, K)>> = BTreeMap::new();
        for (t, snap) in snapshot.iter() {
            for (tuple, k) in snap.iter() {
                raw.entry(tuple.clone())
                    .or_default()
                    .push((Interval::singleton(*t), k.clone()));
            }
        }
        let mut rel = Self::empty(snapshot.domain());
        for (t, pairs) in raw {
            let e = TemporalElement::from_pairs(pairs);
            if !e.is_empty() {
                rel.tuples.insert(t, e);
            }
        }
        rel
    }

    /// The inverse of `ENC_K`: reconstructs the snapshot K-relation.
    pub fn decode(&self) -> SnapshotRelation<Tup, K> {
        let mut out = SnapshotRelation::empty(self.domain);
        for (t, e) in &self.tuples {
            for (i, k) in e.entries() {
                for p in i.points() {
                    out.add_at(p, t.clone(), k.clone());
                }
            }
        }
        out
    }

    /// The timeslice operator for `K^T`-relations (Definition 6.2): applies
    /// `τ_T` to every annotation.
    pub fn timeslice(&self, t: TimePoint) -> KRelation<Tup, K> {
        let mut out = KRelation::empty();
        for (tuple, e) in &self.tuples {
            out.add(tuple.clone(), e.timeslice(t));
        }
        out
    }

    /// The time domain.
    pub fn domain(&self) -> TimeDomain {
        self.domain
    }

    /// The temporal annotation of a tuple (zero element when absent).
    pub fn annotation(&self, t: &Tup) -> TemporalElement<K> {
        self.tuples.get(t).cloned().unwrap_or_default()
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over `(tuple, annotation)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tup, &TemporalElement<K>)> {
        self.tuples.iter()
    }

    /// Whether every annotation is in K-coalesced normal form (condition 1
    /// of Definition 4.5 — uniqueness of the encoding).
    pub fn is_normal_form(&self) -> bool {
        self.tuples
            .values()
            .all(|e| e.is_normal_form() && !e.is_empty())
    }

    /// The underlying K-relation over `K^T` annotations, for running generic
    /// K-relational operators.
    fn as_krelation(&self) -> KRelation<Tup, TemporalElement<K>> {
        KRelation::from_pairs(self.tuples.iter().map(|(t, e)| (t.clone(), e.clone())))
    }

    fn from_krelation(domain: TimeDomain, rel: KRelation<Tup, TemporalElement<K>>) -> Self {
        let mut tuples = BTreeMap::new();
        for (t, e) in rel.iter() {
            if !e.is_empty() {
                tuples.insert(t.clone(), e.clone());
            }
        }
        PeriodRelation { domain, tuples }
    }

    // ---- queries over the logical model (K-relational RA at K^T) -------

    /// Selection.
    pub fn select(&self, theta: impl Fn(&Tup) -> bool) -> Self {
        Self::from_krelation(self.domain, self.as_krelation().select(theta))
    }

    /// Projection (annotations summed in `K^T`, i.e. coalesced point-wise
    /// sums — Example 6.1).
    pub fn project<Out: KTuple>(&self, f: impl Fn(&Tup) -> Out) -> PeriodRelation<Out, K> {
        PeriodRelation::from_krelation(self.domain, self.as_krelation().project(f))
    }

    /// Join (annotations multiplied in `K^T`: interval intersection).
    pub fn join<Tup2: KTuple, Out: KTuple>(
        &self,
        other: &PeriodRelation<Tup2, K>,
        combine: impl Fn(&Tup, &Tup2) -> Option<Out>,
    ) -> PeriodRelation<Out, K> {
        assert_eq!(self.domain, other.domain);
        PeriodRelation::from_krelation(
            self.domain,
            self.as_krelation().join(&other.as_krelation(), combine),
        )
    }

    /// Union (annotations summed in `K^T`).
    pub fn union(&self, other: &Self) -> Self {
        assert_eq!(self.domain, other.domain);
        Self::from_krelation(
            self.domain,
            self.as_krelation().union(&other.as_krelation()),
        )
    }

    /// Difference via the monus of `K^T` (Section 7.1).
    pub fn difference(&self, other: &Self) -> Self
    where
        K: MSemiring,
    {
        assert_eq!(self.domain, other.domain);
        Self::from_krelation(
            self.domain,
            self.as_krelation().difference(&other.as_krelation()),
        )
    }
}

impl<Tup: KTuple> PeriodRelation<Tup, Natural> {
    /// Snapshot aggregation per Definition 7.1 — the *defining*, point-wise
    /// construction: evaluate the group-by aggregation over every snapshot,
    /// annotate each produced tuple with 1 at the singleton interval, and
    /// coalesce. The engine crate implements the efficient split-based
    /// version; its tests check agreement with this definition.
    pub fn aggregate_grouped<G: KTuple, Out: KTuple>(
        &self,
        group: impl Fn(&Tup) -> G,
        agg: impl Fn(&G, &[(&Tup, u64)]) -> Out,
    ) -> PeriodRelation<Out, Natural> {
        let mut raw: BTreeMap<Out, Vec<(Interval, Natural)>> = BTreeMap::new();
        for t in self.domain.points() {
            let snap = self.timeslice(t);
            let res = snap.aggregate_grouped(&group, &agg);
            for (tuple, k) in res.iter() {
                raw.entry(tuple.clone())
                    .or_default()
                    .push((Interval::singleton(t), *k));
            }
        }
        let mut out = PeriodRelation::empty(self.domain);
        for (t, pairs) in raw {
            let e = TemporalElement::from_pairs(pairs);
            if !e.is_empty() {
                out.tuples.insert(t, e);
            }
        }
        out
    }

    /// Aggregation without grouping per Definition 7.1: every snapshot —
    /// including empty ones — produces a result tuple, so gaps appear in the
    /// output with their correct aggregate values (no AG bug).
    pub fn aggregate_global<Out: KTuple>(
        &self,
        agg: impl Fn(&[(&Tup, u64)]) -> Out,
    ) -> PeriodRelation<Out, Natural> {
        let mut raw: BTreeMap<Out, Vec<(Interval, Natural)>> = BTreeMap::new();
        for t in self.domain.points() {
            let snap = self.timeslice(t);
            let res = snap.aggregate_global(&agg);
            for (tuple, k) in res.iter() {
                raw.entry(tuple.clone())
                    .or_default()
                    .push((Interval::singleton(t), *k));
            }
        }
        let mut out = PeriodRelation::empty(self.domain);
        for (t, pairs) in raw {
            let e = TemporalElement::from_pairs(pairs);
            if !e.is_empty() {
                out.tuples.insert(t, e);
            }
        }
        out
    }
}

impl<Tup, K> fmt::Display for PeriodRelation<Tup, K>
where
    Tup: KTuple + fmt::Display,
    K: CommutativeSemiring + fmt::Display,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in &self.tuples {
            writeln!(f, "{t} ↦ {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::Natural;

    type Tup = (&'static str, &'static str);

    fn domain() -> TimeDomain {
        TimeDomain::new(0, 24)
    }

    fn iv(b: i64, e: i64) -> Interval {
        Interval::new(b, e)
    }

    /// works from Figure 1/2.
    pub fn works() -> PeriodRelation<Tup, Natural> {
        PeriodRelation::from_facts(
            domain(),
            [
                (("Ann", "SP"), iv(3, 10), Natural(1)),
                (("Joe", "NS"), iv(8, 16), Natural(1)),
                (("Sam", "SP"), iv(8, 16), Natural(1)),
                (("Ann", "SP"), iv(18, 20), Natural(1)),
            ],
        )
    }

    /// assign from Figure 1.
    pub fn assign() -> PeriodRelation<Tup, Natural> {
        PeriodRelation::from_facts(
            domain(),
            [
                (("M1", "SP"), iv(3, 12), Natural(1)),
                (("M2", "SP"), iv(6, 14), Natural(1)),
                (("M3", "NS"), iv(3, 16), Natural(1)),
            ],
        )
    }

    #[test]
    fn figure_2_logical_model() {
        let w = works();
        // (Ann, SP) merged into one tuple with two intervals.
        let ann = w.annotation(&("Ann", "SP"));
        assert_eq!(
            ann.entries(),
            &[(iv(3, 10), Natural(1)), (iv(18, 20), Natural(1))]
        );
        assert_eq!(w.len(), 3);
        assert!(w.is_normal_form());
    }

    #[test]
    fn timeslice_matches_figure_2() {
        let w = works();
        let s8 = w.timeslice(TimePoint::new(8));
        assert_eq!(s8.len(), 3);
        let s0 = w.timeslice(TimePoint::new(0));
        assert!(s0.is_empty());
    }

    #[test]
    fn example_6_1_projection() {
        // Π_skill(works): (SP) annotated with T1 + T2.
        let skills = works().project(|t| t.1);
        let sp = skills.annotation(&"SP");
        assert_eq!(
            sp.entries(),
            &[
                (iv(3, 8), Natural(1)),
                (iv(8, 10), Natural(2)),
                (iv(10, 16), Natural(1)),
                (iv(18, 20), Natural(1)),
            ]
        );
        let ns = skills.annotation(&"NS");
        assert_eq!(ns.entries(), &[(iv(8, 16), Natural(1))]);
    }

    #[test]
    fn q_skillreq_difference_matches_figure_1c() {
        // Π_skill(assign) − Π_skill(works), Section 7.1 worked example.
        let lhs = assign().project(|t| t.1);
        let rhs = works().project(|t| t.1);
        let diff = lhs.difference(&rhs);
        assert_eq!(
            diff.annotation(&"SP").entries(),
            &[(iv(6, 8), Natural(1)), (iv(10, 12), Natural(1))]
        );
        assert_eq!(diff.annotation(&"NS").entries(), &[(iv(3, 8), Natural(1))]);
        assert_eq!(diff.len(), 2);
    }

    #[test]
    fn q_onduty_aggregation_matches_figure_1b() {
        // count(*) over σ_skill=SP(works) with gap rows (Definition 7.1).
        let counts = works()
            .select(|t| t.1 == "SP")
            .aggregate_global(|ms| ms.iter().map(|(_, m)| m).sum::<u64>());
        assert_eq!(
            counts.annotation(&0u64).entries(),
            &[
                (iv(0, 3), Natural(1)),
                (iv(16, 18), Natural(1)),
                (iv(20, 24), Natural(1)),
            ]
        );
        assert_eq!(
            counts.annotation(&1u64).entries(),
            &[
                (iv(3, 8), Natural(1)),
                (iv(10, 16), Natural(1)),
                (iv(18, 20), Natural(1)),
            ]
        );
        assert_eq!(
            counts.annotation(&2u64).entries(),
            &[(iv(8, 10), Natural(1))]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let w = works();
        let snapshot = w.decode();
        let back = PeriodRelation::encode(&snapshot);
        assert_eq!(w, back);
    }

    #[test]
    fn encode_coalesces_across_adjacent_points() {
        // A tuple present at 3,4,5 with multiplicity 2 becomes [3,6) -> 2.
        let d = TimeDomain::new(0, 10);
        let mut s: SnapshotRelation<&str, Natural> = SnapshotRelation::empty(d);
        for t in 3..6 {
            s.add_at(TimePoint::new(t), "x", Natural(2));
        }
        let p = PeriodRelation::encode(&s);
        assert_eq!(p.annotation(&"x").entries(), &[(iv(3, 6), Natural(2))]);
    }

    #[test]
    fn join_intersects_periods() {
        let w = works();
        let a = assign();
        let j = w.join(&a, |wt, at| (wt.1 == at.1).then_some((wt.0, at.0)));
        // Ann [3,10) joins M1 [3,12) on SP → [3,10).
        assert_eq!(
            j.annotation(&("Ann", "M1")).entries(),
            &[(iv(3, 10), Natural(1))]
        );
        // Sam [8,16) joins M2 [6,14) → [8,14).
        assert_eq!(
            j.annotation(&("Sam", "M2")).entries(),
            &[(iv(8, 14), Natural(1))]
        );
    }

    #[test]
    fn union_sums_histories() {
        let w = works();
        let u = w.union(&w);
        assert_eq!(
            u.annotation(&("Sam", "SP")).entries(),
            &[(iv(8, 16), Natural(2))]
        );
    }

    #[test]
    fn facts_outside_domain_rejected() {
        let result = std::panic::catch_unwind(|| {
            PeriodRelation::from_facts(
                TimeDomain::new(0, 10),
                [(("x", "y"), iv(5, 15), Natural(1))],
            )
        });
        assert!(result.is_err());
    }
}
