//! Tokenizer for the SQL dialect.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively;
    /// identifiers are lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Double(f64),
    /// String literal (single-quoted, `''` escapes a quote).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
    /// End of input.
    Eof,
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `>=`
    Geq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Double(d) => write!(f, "{d}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Symbol(s) => write!(f, "{s:?}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenizes `input`, lower-casing identifiers/keywords.
pub fn tokenize(input: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '.' if !chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Symbol(Sym::Neq));
                i += 2;
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    out.push(Token::Symbol(Sym::Leq));
                    i += 2;
                }
                Some('>') => {
                    out.push(Token::Symbol(Sym::Neq));
                    i += 2;
                }
                _ => {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Symbol(Sym::Geq));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err("unterminated string literal".into()),
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(c) => {
                            s.push(*c);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '.' && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())) =>
            {
                let start = i;
                let mut saw_dot = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || (chars[i] == '.' && !saw_dot))
                {
                    if chars[i] == '.' {
                        // `1..` would be a syntax error downstream; accept one dot.
                        if chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                            saw_dot = true;
                        } else {
                            break;
                        }
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if saw_dot {
                    out.push(Token::Double(
                        text.parse()
                            .map_err(|e| format!("bad number '{text}': {e}"))?,
                    ));
                } else {
                    out.push(Token::Int(
                        text.parse()
                            .map_err(|e| format!("bad number '{text}': {e}"))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                out.push(Token::Ident(word.to_lowercase()));
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_identifiers_lowercased() {
        let toks = tokenize("SELECT Name FROM Works").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("select".into()),
                Token::Ident("name".into()),
                Token::Ident("from".into()),
                Token::Ident("works".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 3.5 .25").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Double(3.5),
                Token::Double(0.25),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into()), Token::Eof]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <= b <> c >= d != e").unwrap();
        let syms: Vec<&Token> = toks
            .iter()
            .filter(|t| matches!(t, Token::Symbol(_)))
            .collect();
        assert_eq!(
            syms,
            vec![
                &Token::Symbol(Sym::Leq),
                &Token::Symbol(Sym::Neq),
                &Token::Symbol(Sym::Geq),
                &Token::Symbol(Sym::Neq),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("select -- the names\n name").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn qualified_star_and_dot() {
        let toks = tokenize("w.name count(*)").unwrap();
        assert!(toks.contains(&Token::Symbol(Sym::Dot)));
        assert!(toks.contains(&Token::Symbol(Sym::Star)));
    }
}
