//! Recursive-descent parser.

use crate::ast::*;
use crate::lexer::{tokenize, Sym, Token};
use algebra::BinOp;
use storage::{SqlType, Value};

/// Parses one *query* statement (a query with an optional top-level
/// `ORDER BY` and optional trailing `;`).
pub fn parse_statement(input: &str) -> Result<Statement, String> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_query_statement()?;
    let _ = p.eat_symbol(Sym::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses one statement of the full dialect: a query, or one of the
/// DDL/DML commands (`CREATE TABLE`, `DROP TABLE`, `INSERT`, `DELETE`,
/// `UPDATE`). A trailing `;` is optional.
pub fn parse_sql_statement(input: &str) -> Result<SqlStatement, String> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_sql_statement()?;
    let _ = p.eat_symbol(Sym::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Splits a `;`-separated script into the *source text* of its
/// statements, without parsing them. Semicolons inside single-quoted
/// strings (with `''` escapes) and `--` line comments do not split;
/// comment-only and empty pieces are dropped; each returned piece is
/// trimmed and carries no trailing `;`.
///
/// This is the statement-granular view the durability layer needs: the
/// write-ahead log records each executed statement's exact text, so the
/// splitter must agree with the lexer on where statements end. It is
/// purely lexical — a piece may still fail to parse.
pub fn split_script(input: &str) -> Vec<String> {
    let mut pieces = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let (mut start, mut i) = (0usize, 0usize);
    let mut push = |piece: &[char]| {
        let text: String = piece.iter().collect();
        // Strip comment-only and blank lines at the edges (interior
        // comments are part of the statement text and parse fine); drop
        // pieces with no statement text at all.
        let blank = |l: &&str| {
            let l = l.trim();
            l.is_empty() || l.starts_with("--")
        };
        let lines: Vec<&str> = text.lines().collect();
        let (Some(first), Some(last)) = (
            lines.iter().position(|l| !blank(l)),
            lines.iter().rposition(|l| !blank(l)),
        ) else {
            return;
        };
        pieces.push(lines[first..=last].join("\n").trim().to_string());
    };
    while i < chars.len() {
        match chars[i] {
            ';' => {
                push(&chars[start..i]);
                i += 1;
                start = i;
            }
            '\'' => {
                // A string literal: skip to its end; `''` escapes a quote.
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\'' {
                        if chars.get(i + 1) == Some(&'\'') {
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
            }
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    push(&chars[start..]);
    pieces
}

/// Parses a `;`-separated script into its statements. Empty statements
/// (stray semicolons) are skipped; the final `;` is optional.
pub fn parse_script(input: &str) -> Result<Vec<SqlStatement>, String> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(Sym::Semicolon) {}
        if p.peek() == &Token::Eof {
            return Ok(out);
        }
        out.push(p.parse_sql_statement()?);
        if !p.eat_symbol(Sym::Semicolon) {
            p.expect_eof()?;
            return Ok(out);
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), String> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(format!("expected '{kw}', found '{}'", self.peek()))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if self.peek() == &Token::Symbol(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<(), String> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(format!("expected {s:?}, found '{}'", self.peek()))
        }
    }

    fn expect_eof(&self) -> Result<(), String> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(format!("unexpected trailing input at '{}'", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, found '{other}'")),
        }
    }

    // ---- statements -------------------------------------------------

    fn parse_query_statement(&mut self) -> Result<Statement, String> {
        let query = self.parse_query()?;
        let order_by = if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            self.parse_order_items()?
        } else {
            Vec::new()
        };
        Ok(Statement { query, order_by })
    }

    fn parse_sql_statement(&mut self) -> Result<SqlStatement, String> {
        if self.at_keyword("create") {
            return self.parse_create_table();
        }
        if self.at_keyword("drop") {
            return self.parse_drop_table();
        }
        if self.at_keyword("insert") {
            return self.parse_insert();
        }
        if self.at_keyword("delete") {
            return self.parse_delete();
        }
        if self.at_keyword("update") {
            return self.parse_update();
        }
        if self.at_keyword("begin") {
            return self.parse_txn_statement("begin", SqlStatement::Begin);
        }
        if self.at_keyword("commit") {
            return self.parse_txn_statement("commit", SqlStatement::Commit);
        }
        if self.at_keyword("explain") {
            self.eat_keyword("explain");
            let analyze = self.eat_keyword("analyze");
            let statement = Box::new(self.parse_query_statement()?);
            return Ok(SqlStatement::Explain { analyze, statement });
        }
        if self.at_keyword("rollback") {
            return self.parse_txn_statement("rollback", SqlStatement::Rollback);
        }
        if self.at_keyword("set") {
            return self.parse_set();
        }
        Ok(SqlStatement::Query(self.parse_query_statement()?))
    }

    /// `SET <name> [= | TO] <value>` — the value is a number, identifier,
    /// or string literal, carried to the session layer as raw text.
    fn parse_set(&mut self) -> Result<SqlStatement, String> {
        self.expect_keyword("set")?;
        let name = self.expect_ident()?;
        if !self.eat_symbol(Sym::Eq) {
            let _ = self.eat_keyword("to");
        }
        let negated = self.eat_symbol(Sym::Minus);
        let value = match self.bump() {
            Token::Int(i) => (if negated { -i } else { i }).to_string(),
            Token::Double(d) => (if negated { -d } else { d }).to_string(),
            Token::Str(s) if !negated => s,
            Token::Ident(s) if !negated => s,
            other => return Err(format!("expected a SET value, found '{other}'")),
        };
        Ok(SqlStatement::Set { name, value })
    }

    /// `BEGIN`/`COMMIT`/`ROLLBACK`, each tolerating an optional
    /// `TRANSACTION` or `WORK` noise word.
    fn parse_txn_statement(
        &mut self,
        keyword: &str,
        stmt: SqlStatement,
    ) -> Result<SqlStatement, String> {
        self.expect_keyword(keyword)?;
        if !self.eat_keyword("transaction") {
            let _ = self.eat_keyword("work");
        }
        Ok(stmt)
    }

    fn parse_create_table(&mut self) -> Result<SqlStatement, String> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let name = self.expect_ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty = self.parse_sql_type()?;
            columns.push(ColumnDef { name: col, ty });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        let period = if self.eat_keyword("period") {
            self.expect_symbol(Sym::LParen)?;
            let b = self.expect_ident()?;
            self.expect_symbol(Sym::Comma)?;
            let e = self.expect_ident()?;
            self.expect_symbol(Sym::RParen)?;
            Some((b, e))
        } else {
            None
        };
        Ok(SqlStatement::CreateTable {
            name,
            columns,
            period,
        })
    }

    fn parse_sql_type(&mut self) -> Result<SqlType, String> {
        let word = self.expect_ident()?;
        match word.as_str() {
            "int" | "integer" | "bigint" => Ok(SqlType::Int),
            "double" | "float" | "real" => Ok(SqlType::Double),
            "text" | "string" | "varchar" | "char" => Ok(SqlType::Str),
            "bool" | "boolean" => Ok(SqlType::Bool),
            other => Err(format!("unknown column type '{other}'")),
        }
    }

    fn parse_drop_table(&mut self) -> Result<SqlStatement, String> {
        self.expect_keyword("drop")?;
        self.expect_keyword("table")?;
        let if_exists = if self.at_keyword("if") {
            self.bump();
            self.expect_keyword("exists")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        Ok(SqlStatement::DropTable { name, if_exists })
    }

    fn parse_insert(&mut self) -> Result<SqlStatement, String> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.expect_ident()?;
        let source = if self.at_keyword("values") {
            self.bump();
            let mut rows = Vec::new();
            loop {
                self.expect_symbol(Sym::LParen)?;
                let mut row = vec![self.parse_expr()?];
                while self.eat_symbol(Sym::Comma) {
                    row.push(self.parse_expr()?);
                }
                self.expect_symbol(Sym::RParen)?;
                rows.push(row);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(Box::new(self.parse_query_statement()?))
        };
        Ok(SqlStatement::Insert { table, source })
    }

    fn parse_delete(&mut self) -> Result<SqlStatement, String> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(SqlStatement::Delete {
            table,
            where_clause,
        })
    }

    fn parse_update(&mut self) -> Result<SqlStatement, String> {
        self.expect_keyword("update")?;
        let table = self.expect_ident()?;
        self.expect_keyword("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_symbol(Sym::Eq)?;
            assignments.push((col, self.parse_expr()?));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(SqlStatement::Update {
            table,
            assignments,
            where_clause,
        })
    }

    // ---- queries ----------------------------------------------------

    fn parse_query(&mut self) -> Result<QueryExpr, String> {
        let mut left = self.parse_query_primary()?;
        loop {
            if self.at_keyword("union") {
                self.bump();
                self.expect_keyword("all")?;
                let right = self.parse_query_primary()?;
                left = QueryExpr::UnionAll(Box::new(left), Box::new(right));
            } else if self.at_keyword("except") {
                self.bump();
                self.expect_keyword("all")?;
                let right = self.parse_query_primary()?;
                left = QueryExpr::ExceptAll(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_query_primary(&mut self) -> Result<QueryExpr, String> {
        if self.at_keyword("seq") {
            self.bump();
            self.expect_keyword("vt")?;
            let window = if self.at_keyword("as") {
                self.bump();
                self.expect_keyword("of")?;
                SeqWindow::AsOf(self.parse_time_literal()?)
            } else if self.at_keyword("between") {
                self.bump();
                let t1 = self.parse_time_literal()?;
                self.expect_keyword("and")?;
                let t2 = self.parse_time_literal()?;
                SeqWindow::Between(t1, t2)
            } else {
                SeqWindow::Full
            };
            self.expect_symbol(Sym::LParen)?;
            let inner = self.parse_query()?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(QueryExpr::SeqVt(Box::new(inner), window));
        }
        if self.eat_symbol(Sym::LParen) {
            let inner = self.parse_query()?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(inner);
        }
        Ok(QueryExpr::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<SelectStmt, String> {
        self.expect_keyword("select")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat_symbol(Sym::Comma) {
            items.push(self.parse_select_item()?);
        }
        let mut stmt = SelectStmt {
            items,
            ..Default::default()
        };
        if self.eat_keyword("from") {
            stmt.from.push(self.parse_from_item()?);
            while self.eat_symbol(Sym::Comma) {
                stmt.from.push(self.parse_from_item()?);
            }
        }
        if self.eat_keyword("where") {
            stmt.where_clause = Some(self.parse_expr()?);
        }
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            stmt.group_by.push(self.parse_expr()?);
            while self.eat_symbol(Sym::Comma) {
                stmt.group_by.push(self.parse_expr()?);
            }
        }
        if self.eat_keyword("having") {
            stmt.having = Some(self.parse_expr()?);
        }
        Ok(stmt)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, String> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let (Token::Ident(t), Token::Symbol(Sym::Dot)) = (self.peek(), self.peek2()) {
            if self.tokens.get(self.pos + 2) == Some(&Token::Symbol(Sym::Star)) {
                let t = t.clone();
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(t));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("as")
            || matches!(self.peek(), Token::Ident(s) if !is_reserved(s))
        {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem, String> {
        let mut item = self.parse_from_primary()?;
        loop {
            let inner = self.at_keyword("inner");
            if inner || self.at_keyword("join") {
                if inner {
                    self.bump();
                }
                self.expect_keyword("join")?;
                let right = self.parse_from_primary()?;
                self.expect_keyword("on")?;
                let on = self.parse_expr()?;
                item = FromItem::Join {
                    left: Box::new(item),
                    right: Box::new(right),
                    on,
                };
            } else {
                return Ok(item);
            }
        }
    }

    fn parse_from_primary(&mut self) -> Result<FromItem, String> {
        if self.eat_symbol(Sym::LParen) {
            let query = self.parse_query()?;
            self.expect_symbol(Sym::RParen)?;
            let _ = self.eat_keyword("as");
            let alias = self.expect_ident()?;
            return Ok(FromItem::Subquery { query, alias });
        }
        let name = self.expect_ident()?;
        // PERIOD (b, e)
        let period = if self.at_keyword("period") {
            self.bump();
            self.expect_symbol(Sym::LParen)?;
            let b = self.expect_ident()?;
            self.expect_symbol(Sym::Comma)?;
            let e = self.expect_ident()?;
            self.expect_symbol(Sym::RParen)?;
            Some((b, e))
        } else {
            None
        };
        let alias = if self.eat_keyword("as")
            || matches!(self.peek(), Token::Ident(s) if !is_reserved(s))
        {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(FromItem::Table {
            name,
            alias,
            period,
        })
    }

    /// An integer time-point literal, with optional leading minus.
    fn parse_time_literal(&mut self) -> Result<i64, String> {
        let negated = self.eat_symbol(Sym::Minus);
        match self.bump() {
            Token::Int(i) => Ok(if negated { -i } else { i }),
            other => Err(format!("expected an integer time point, found '{other}'")),
        }
    }

    fn parse_order_items(&mut self) -> Result<Vec<OrderItem>, String> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let asc = if self.eat_keyword("desc") {
                false
            } else {
                let _ = self.eat_keyword("asc");
                true
            };
            items.push(OrderItem { expr, asc });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(items)
    }

    // ---- expressions (precedence climbing) ---------------------------

    fn parse_expr(&mut self) -> Result<AstExpr, String> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AstExpr, String> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = AstExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<AstExpr, String> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<AstExpr, String> {
        if self.eat_keyword("not") {
            Ok(AstExpr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<AstExpr, String> {
        let left = self.parse_additive()?;

        // Postfix predicates: IS [NOT] NULL, [NOT] LIKE / BETWEEN / IN.
        if self.at_keyword("is") {
            self.bump();
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.at_keyword("not")
            && matches!(self.peek2(), Token::Ident(s) if s == "like" || s == "between" || s == "in")
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_keyword("like") {
            let pattern = match self.bump() {
                Token::Str(s) => s,
                other => return Err(format!("LIKE requires a string literal, found '{other}'")),
            };
            return Ok(AstExpr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if self.eat_keyword("between") {
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("in") {
            self.expect_symbol(Sym::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_symbol(Sym::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err("dangling NOT".into());
        }

        let op = match self.peek() {
            Token::Symbol(Sym::Eq) => Some(BinOp::Eq),
            Token::Symbol(Sym::Neq) => Some(BinOp::Neq),
            Token::Symbol(Sym::Lt) => Some(BinOp::Lt),
            Token::Symbol(Sym::Leq) => Some(BinOp::Leq),
            Token::Symbol(Sym::Gt) => Some(BinOp::Gt),
            Token::Symbol(Sym::Geq) => Some(BinOp::Geq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<AstExpr, String> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Plus) => BinOp::Add,
                Token::Symbol(Sym::Minus) => BinOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<AstExpr, String> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Star) => BinOp::Mul,
                Token::Symbol(Sym::Slash) => BinOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<AstExpr, String> {
        if self.eat_symbol(Sym::Minus) {
            let inner = self.parse_unary()?;
            return Ok(AstExpr::Binary {
                op: BinOp::Sub,
                left: Box::new(AstExpr::Lit(Value::Int(0))),
                right: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstExpr, String> {
        match self.bump() {
            Token::Int(i) => Ok(AstExpr::Lit(Value::Int(i))),
            Token::Double(d) => Ok(AstExpr::Lit(Value::Double(d))),
            Token::Str(s) => Ok(AstExpr::Lit(Value::str(s))),
            Token::Symbol(Sym::LParen) => {
                let e = self.parse_expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Token::Ident(word) => match word.as_str() {
                "null" => Ok(AstExpr::Lit(Value::Null)),
                "true" => Ok(AstExpr::Lit(Value::Bool(true))),
                "false" => Ok(AstExpr::Lit(Value::Bool(false))),
                "case" => self.parse_case(),
                _ if self.peek() == &Token::Symbol(Sym::LParen) => {
                    // Function call.
                    self.bump();
                    if self.eat_symbol(Sym::Star) {
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(AstExpr::Func {
                            name: word,
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek() != &Token::Symbol(Sym::RParen) {
                        args.push(self.parse_expr()?);
                        while self.eat_symbol(Sym::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect_symbol(Sym::RParen)?;
                    Ok(AstExpr::Func {
                        name: word,
                        args,
                        star: false,
                    })
                }
                _ if is_reserved(&word) => {
                    Err(format!("unexpected keyword '{word}' in expression"))
                }
                _ if self.peek() == &Token::Symbol(Sym::Dot) => {
                    self.bump();
                    let name = self.expect_ident()?;
                    Ok(AstExpr::Column {
                        table: Some(word),
                        name,
                    })
                }
                _ => Ok(AstExpr::Column {
                    table: None,
                    name: word,
                }),
            },
            other => Err(format!("unexpected token '{other}' in expression")),
        }
    }

    fn parse_case(&mut self) -> Result<AstExpr, String> {
        let mut branches = Vec::new();
        while self.eat_keyword("when") {
            let cond = self.parse_expr()?;
            self.expect_keyword("then")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err("CASE requires at least one WHEN branch".into());
        }
        let else_expr = if self.eat_keyword("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("end")?;
        Ok(AstExpr::Case {
            branches,
            else_expr,
        })
    }
}

/// Words that terminate an implicit alias position.
fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "select"
            | "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "by"
            | "union"
            | "except"
            | "all"
            | "join"
            | "inner"
            | "on"
            | "as"
            | "and"
            | "or"
            | "not"
            | "like"
            | "between"
            | "in"
            | "is"
            | "null"
            | "case"
            | "when"
            | "then"
            | "else"
            | "end"
            | "seq"
            | "vt"
            | "of"
            | "period"
            | "asc"
            | "desc"
            | "create"
            | "table"
            | "drop"
            | "if"
            | "exists"
            | "insert"
            | "into"
            | "values"
            | "delete"
            | "update"
            | "set"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_onduty_parses() {
        let stmt = parse_statement(
            "SEQ VT (SELECT count(*) AS cnt FROM works PERIOD (ts, te) WHERE skill = 'SP')",
        )
        .unwrap();
        let QueryExpr::SeqVt(inner, window) = stmt.query else {
            panic!("expected SEQ VT");
        };
        assert_eq!(window, SeqWindow::Full);
        let QueryExpr::Select(sel) = *inner else {
            panic!("expected SELECT");
        };
        assert_eq!(sel.items.len(), 1);
        assert!(sel.where_clause.is_some());
        match &sel.from[0] {
            FromItem::Table { name, period, .. } => {
                assert_eq!(name, "works");
                assert_eq!(period, &Some(("ts".into(), "te".into())));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn q_skillreq_parses() {
        let stmt = parse_statement(
            "SEQ VT (SELECT skill FROM assign PERIOD (ts, te) \
             EXCEPT ALL SELECT skill FROM works PERIOD (ts, te))",
        )
        .unwrap();
        let QueryExpr::SeqVt(inner, _) = stmt.query else {
            panic!("expected SEQ VT");
        };
        assert!(matches!(*inner, QueryExpr::ExceptAll(_, _)));
    }

    #[test]
    fn seq_vt_windows_parse() {
        let stmt = parse_statement("SEQ VT AS OF 7 (SELECT name FROM works)").unwrap();
        let QueryExpr::SeqVt(_, window) = stmt.query else {
            panic!("expected SEQ VT");
        };
        assert_eq!(window, SeqWindow::AsOf(7));

        let stmt = parse_statement("SEQ VT BETWEEN -2 AND 9 (SELECT name FROM works)").unwrap();
        let QueryExpr::SeqVt(_, window) = stmt.query else {
            panic!("expected SEQ VT");
        };
        assert_eq!(window, SeqWindow::Between(-2, 9));

        assert!(parse_statement("SEQ VT AS OF x (SELECT 1 FROM t)").is_err());
        assert!(parse_statement("SEQ VT BETWEEN 1 (SELECT 1 FROM t)").is_err());
    }

    #[test]
    fn create_table_parses() {
        let stmt = parse_sql_statement(
            "CREATE TABLE works (name TEXT, skill TEXT, ts INT, te INT) PERIOD (ts, te)",
        )
        .unwrap();
        let SqlStatement::CreateTable {
            name,
            columns,
            period,
        } = stmt
        else {
            panic!("expected CREATE TABLE");
        };
        assert_eq!(name, "works");
        assert_eq!(columns.len(), 4);
        assert_eq!(columns[0].name, "name");
        assert_eq!(columns[0].ty, SqlType::Str);
        assert_eq!(columns[2].ty, SqlType::Int);
        assert_eq!(period, Some(("ts".into(), "te".into())));

        assert!(parse_sql_statement("CREATE TABLE t (x blob)").is_err());
    }

    #[test]
    fn drop_insert_delete_update_parse() {
        assert_eq!(
            parse_sql_statement("DROP TABLE IF EXISTS t;").unwrap(),
            SqlStatement::DropTable {
                name: "t".into(),
                if_exists: true
            }
        );

        let SqlStatement::Insert { table, source } = parse_sql_statement(
            "INSERT INTO works VALUES ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16)",
        )
        .unwrap() else {
            panic!("expected INSERT");
        };
        assert_eq!(table, "works");
        let InsertSource::Values(rows) = source else {
            panic!("expected VALUES");
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 4);

        let SqlStatement::Insert { source, .. } =
            parse_sql_statement("INSERT INTO archive SELECT * FROM works WHERE te <= 10").unwrap()
        else {
            panic!()
        };
        assert!(matches!(source, InsertSource::Query(_)));

        let SqlStatement::Delete {
            table,
            where_clause,
        } = parse_sql_statement("DELETE FROM works WHERE name = 'Joe'").unwrap()
        else {
            panic!("expected DELETE");
        };
        assert_eq!(table, "works");
        assert!(where_clause.is_some());

        let SqlStatement::Update {
            table,
            assignments,
            where_clause,
        } = parse_sql_statement("UPDATE works SET skill = 'NS', te = te + 1 WHERE name = 'Ann'")
            .unwrap()
        else {
            panic!("expected UPDATE");
        };
        assert_eq!(table, "works");
        assert_eq!(assignments.len(), 2);
        assert_eq!(assignments[0].0, "skill");
        assert!(where_clause.is_some());
    }

    #[test]
    fn scripts_split_on_semicolons() {
        let script =
            "CREATE TABLE t (x INT);\n-- a comment\nINSERT INTO t VALUES (1);;\nSELECT x FROM t;";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], SqlStatement::CreateTable { .. }));
        assert!(matches!(stmts[1], SqlStatement::Insert { .. }));
        assert!(matches!(stmts[2], SqlStatement::Query(_)));

        // Missing semicolon between statements is an error.
        assert!(parse_script("SELECT 1 FROM t SELECT 2 FROM t").is_err());
        assert!(parse_script("").unwrap().is_empty());
    }

    #[test]
    fn transaction_statements_parse() {
        for (sql, want) in [
            ("BEGIN", SqlStatement::Begin),
            ("begin transaction;", SqlStatement::Begin),
            ("BEGIN WORK", SqlStatement::Begin),
            ("COMMIT", SqlStatement::Commit),
            ("commit work;", SqlStatement::Commit),
            ("ROLLBACK", SqlStatement::Rollback),
            ("ROLLBACK TRANSACTION", SqlStatement::Rollback),
        ] {
            assert_eq!(parse_sql_statement(sql).unwrap(), want, "{sql}");
        }
        // Trailing garbage is rejected, not ignored.
        assert!(parse_sql_statement("BEGIN now").is_err());
        assert!(parse_sql_statement("COMMIT 5").is_err());
    }

    #[test]
    fn set_statements_parse() {
        let set = |name: &str, value: &str| SqlStatement::Set {
            name: name.into(),
            value: value.into(),
        };
        for (sql, want) in [
            (
                "SET statement_timeout = 500",
                set("statement_timeout", "500"),
            ),
            (
                "set statement_timeout to 500;",
                set("statement_timeout", "500"),
            ),
            (
                "SET max_rows_scanned 10000",
                set("max_rows_scanned", "10000"),
            ),
            (
                "SET statement_timeout = off",
                set("statement_timeout", "off"),
            ),
            (
                "SET slow_log_capacity TO '64'",
                set("slow_log_capacity", "64"),
            ),
            ("SET x = -3", set("x", "-3")),
        ] {
            assert_eq!(parse_sql_statement(sql).unwrap(), want, "{sql}");
        }
        assert!(parse_sql_statement("SET").is_err());
        assert!(parse_sql_statement("SET statement_timeout =").is_err());
        assert!(parse_sql_statement("SET x = 1 2").is_err());
        assert!(parse_sql_statement("SET x = -off").is_err());
    }

    #[test]
    fn split_script_respects_strings_and_comments() {
        let script = "-- header comment\n\
                      INSERT INTO t VALUES ('a; b', 'it''s; fine'); -- tail; comment\n\
                      SELECT x FROM t;\n\
                      ;;\n\
                      -- only a comment\n\
                      DELETE FROM t";
        let pieces = split_script(script);
        assert_eq!(
            pieces,
            vec![
                "INSERT INTO t VALUES ('a; b', 'it''s; fine')",
                "SELECT x FROM t",
                "DELETE FROM t",
            ]
        );
        assert!(split_script("  \n-- nothing\n").is_empty());

        // The split agrees with the parser: piece-wise parsing equals
        // whole-script parsing.
        let whole = parse_script(script).unwrap();
        let piecewise: Vec<SqlStatement> = split_script(script)
            .iter()
            .map(|s| parse_sql_statement(s).unwrap())
            .collect();
        assert_eq!(whole, piecewise);
    }

    #[test]
    fn joins_and_aliases() {
        let stmt = parse_statement(
            "SELECT w.name, a.mach FROM works w JOIN assign a ON w.skill = a.skill \
             WHERE w.name <> 'Joe' ORDER BY w.name DESC",
        )
        .unwrap();
        assert_eq!(stmt.order_by.len(), 1);
        assert!(!stmt.order_by[0].asc);
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        assert!(matches!(&sel.from[0], FromItem::Join { .. }));
    }

    #[test]
    fn group_by_having_subquery() {
        let stmt = parse_statement(
            "SELECT cnt FROM (SELECT dept, count(*) AS cnt FROM emp GROUP BY dept \
             HAVING count(*) > 21) sub",
        )
        .unwrap();
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        match &sel.from[0] {
            FromItem::Subquery { alias, .. } => assert_eq!(alias, "sub"),
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn between_in_like_case() {
        let stmt = parse_statement(
            "SELECT CASE WHEN x BETWEEN 1 AND 5 THEN 'lo' ELSE 'hi' END \
             FROM t WHERE mode IN ('MAIL','SHIP') AND name NOT LIKE 'A%'",
        )
        .unwrap();
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn arithmetic_precedence() {
        let stmt = parse_statement("SELECT 1 + 2 * 3 FROM t").unwrap();
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        match expr {
            AstExpr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(**right, AstExpr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE x LIKE y").is_err());
        assert!(parse_statement("SELECT * FROM t extra garbage !!").is_err());
        assert!(parse_statement("SEQ VT SELECT 1").is_err());
    }

    #[test]
    fn unary_minus() {
        let stmt = parse_statement("SELECT -5 FROM t").unwrap();
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        assert!(matches!(
            &sel.items[0],
            SelectItem::Expr {
                expr: AstExpr::Binary { op: BinOp::Sub, .. },
                ..
            }
        ));
    }
}
