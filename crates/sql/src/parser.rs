//! Recursive-descent parser.

use crate::ast::*;
use crate::lexer::{tokenize, Sym, Token};
use algebra::BinOp;
use storage::Value;

/// Parses one statement (queries with an optional top-level `ORDER BY` and
/// optional trailing `;`).
pub fn parse_statement(input: &str) -> Result<Statement, String> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let query = p.parse_query()?;
    let order_by = if p.eat_keyword("order") {
        p.expect_keyword("by")?;
        p.parse_order_items()?
    } else {
        Vec::new()
    };
    let _ = p.eat_symbol(Sym::Semicolon);
    p.expect_eof()?;
    Ok(Statement { query, order_by })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), String> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(format!("expected '{kw}', found '{}'", self.peek()))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if self.peek() == &Token::Symbol(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<(), String> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(format!("expected {s:?}, found '{}'", self.peek()))
        }
    }

    fn expect_eof(&self) -> Result<(), String> {
        if self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(format!("unexpected trailing input at '{}'", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, found '{other}'")),
        }
    }

    // ---- queries ----------------------------------------------------

    fn parse_query(&mut self) -> Result<QueryExpr, String> {
        let mut left = self.parse_query_primary()?;
        loop {
            if self.at_keyword("union") {
                self.bump();
                self.expect_keyword("all")?;
                let right = self.parse_query_primary()?;
                left = QueryExpr::UnionAll(Box::new(left), Box::new(right));
            } else if self.at_keyword("except") {
                self.bump();
                self.expect_keyword("all")?;
                let right = self.parse_query_primary()?;
                left = QueryExpr::ExceptAll(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_query_primary(&mut self) -> Result<QueryExpr, String> {
        if self.at_keyword("seq") {
            self.bump();
            self.expect_keyword("vt")?;
            self.expect_symbol(Sym::LParen)?;
            let inner = self.parse_query()?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(QueryExpr::SeqVt(Box::new(inner)));
        }
        if self.eat_symbol(Sym::LParen) {
            let inner = self.parse_query()?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(inner);
        }
        Ok(QueryExpr::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<SelectStmt, String> {
        self.expect_keyword("select")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat_symbol(Sym::Comma) {
            items.push(self.parse_select_item()?);
        }
        let mut stmt = SelectStmt {
            items,
            ..Default::default()
        };
        if self.eat_keyword("from") {
            stmt.from.push(self.parse_from_item()?);
            while self.eat_symbol(Sym::Comma) {
                stmt.from.push(self.parse_from_item()?);
            }
        }
        if self.eat_keyword("where") {
            stmt.where_clause = Some(self.parse_expr()?);
        }
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            stmt.group_by.push(self.parse_expr()?);
            while self.eat_symbol(Sym::Comma) {
                stmt.group_by.push(self.parse_expr()?);
            }
        }
        if self.eat_keyword("having") {
            stmt.having = Some(self.parse_expr()?);
        }
        Ok(stmt)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, String> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let (Token::Ident(t), Token::Symbol(Sym::Dot)) = (self.peek(), self.peek2()) {
            if self.tokens.get(self.pos + 2) == Some(&Token::Symbol(Sym::Star)) {
                let t = t.clone();
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(t));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("as")
            || matches!(self.peek(), Token::Ident(s) if !is_reserved(s))
        {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem, String> {
        let mut item = self.parse_from_primary()?;
        loop {
            let inner = self.at_keyword("inner");
            if inner || self.at_keyword("join") {
                if inner {
                    self.bump();
                }
                self.expect_keyword("join")?;
                let right = self.parse_from_primary()?;
                self.expect_keyword("on")?;
                let on = self.parse_expr()?;
                item = FromItem::Join {
                    left: Box::new(item),
                    right: Box::new(right),
                    on,
                };
            } else {
                return Ok(item);
            }
        }
    }

    fn parse_from_primary(&mut self) -> Result<FromItem, String> {
        if self.eat_symbol(Sym::LParen) {
            let query = self.parse_query()?;
            self.expect_symbol(Sym::RParen)?;
            let _ = self.eat_keyword("as");
            let alias = self.expect_ident()?;
            return Ok(FromItem::Subquery { query, alias });
        }
        let name = self.expect_ident()?;
        // PERIOD (b, e)
        let period = if self.at_keyword("period") {
            self.bump();
            self.expect_symbol(Sym::LParen)?;
            let b = self.expect_ident()?;
            self.expect_symbol(Sym::Comma)?;
            let e = self.expect_ident()?;
            self.expect_symbol(Sym::RParen)?;
            Some((b, e))
        } else {
            None
        };
        let alias = if self.eat_keyword("as")
            || matches!(self.peek(), Token::Ident(s) if !is_reserved(s))
        {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(FromItem::Table {
            name,
            alias,
            period,
        })
    }

    fn parse_order_items(&mut self) -> Result<Vec<OrderItem>, String> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let asc = if self.eat_keyword("desc") {
                false
            } else {
                let _ = self.eat_keyword("asc");
                true
            };
            items.push(OrderItem { expr, asc });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(items)
    }

    // ---- expressions (precedence climbing) ---------------------------

    fn parse_expr(&mut self) -> Result<AstExpr, String> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AstExpr, String> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = AstExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<AstExpr, String> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<AstExpr, String> {
        if self.eat_keyword("not") {
            Ok(AstExpr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<AstExpr, String> {
        let left = self.parse_additive()?;

        // Postfix predicates: IS [NOT] NULL, [NOT] LIKE / BETWEEN / IN.
        if self.at_keyword("is") {
            self.bump();
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.at_keyword("not")
            && matches!(self.peek2(), Token::Ident(s) if s == "like" || s == "between" || s == "in")
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_keyword("like") {
            let pattern = match self.bump() {
                Token::Str(s) => s,
                other => return Err(format!("LIKE requires a string literal, found '{other}'")),
            };
            return Ok(AstExpr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if self.eat_keyword("between") {
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("in") {
            self.expect_symbol(Sym::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_symbol(Sym::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err("dangling NOT".into());
        }

        let op = match self.peek() {
            Token::Symbol(Sym::Eq) => Some(BinOp::Eq),
            Token::Symbol(Sym::Neq) => Some(BinOp::Neq),
            Token::Symbol(Sym::Lt) => Some(BinOp::Lt),
            Token::Symbol(Sym::Leq) => Some(BinOp::Leq),
            Token::Symbol(Sym::Gt) => Some(BinOp::Gt),
            Token::Symbol(Sym::Geq) => Some(BinOp::Geq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<AstExpr, String> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Plus) => BinOp::Add,
                Token::Symbol(Sym::Minus) => BinOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<AstExpr, String> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Star) => BinOp::Mul,
                Token::Symbol(Sym::Slash) => BinOp::Div,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<AstExpr, String> {
        if self.eat_symbol(Sym::Minus) {
            let inner = self.parse_unary()?;
            return Ok(AstExpr::Binary {
                op: BinOp::Sub,
                left: Box::new(AstExpr::Lit(Value::Int(0))),
                right: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstExpr, String> {
        match self.bump() {
            Token::Int(i) => Ok(AstExpr::Lit(Value::Int(i))),
            Token::Double(d) => Ok(AstExpr::Lit(Value::Double(d))),
            Token::Str(s) => Ok(AstExpr::Lit(Value::str(s))),
            Token::Symbol(Sym::LParen) => {
                let e = self.parse_expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Token::Ident(word) => match word.as_str() {
                "null" => Ok(AstExpr::Lit(Value::Null)),
                "true" => Ok(AstExpr::Lit(Value::Bool(true))),
                "false" => Ok(AstExpr::Lit(Value::Bool(false))),
                "case" => self.parse_case(),
                _ if self.peek() == &Token::Symbol(Sym::LParen) => {
                    // Function call.
                    self.bump();
                    if self.eat_symbol(Sym::Star) {
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(AstExpr::Func {
                            name: word,
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek() != &Token::Symbol(Sym::RParen) {
                        args.push(self.parse_expr()?);
                        while self.eat_symbol(Sym::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect_symbol(Sym::RParen)?;
                    Ok(AstExpr::Func {
                        name: word,
                        args,
                        star: false,
                    })
                }
                _ if is_reserved(&word) => {
                    Err(format!("unexpected keyword '{word}' in expression"))
                }
                _ if self.peek() == &Token::Symbol(Sym::Dot) => {
                    self.bump();
                    let name = self.expect_ident()?;
                    Ok(AstExpr::Column {
                        table: Some(word),
                        name,
                    })
                }
                _ => Ok(AstExpr::Column {
                    table: None,
                    name: word,
                }),
            },
            other => Err(format!("unexpected token '{other}' in expression")),
        }
    }

    fn parse_case(&mut self) -> Result<AstExpr, String> {
        let mut branches = Vec::new();
        while self.eat_keyword("when") {
            let cond = self.parse_expr()?;
            self.expect_keyword("then")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err("CASE requires at least one WHEN branch".into());
        }
        let else_expr = if self.eat_keyword("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("end")?;
        Ok(AstExpr::Case {
            branches,
            else_expr,
        })
    }
}

/// Words that terminate an implicit alias position.
fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "select"
            | "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "by"
            | "union"
            | "except"
            | "all"
            | "join"
            | "inner"
            | "on"
            | "as"
            | "and"
            | "or"
            | "not"
            | "like"
            | "between"
            | "in"
            | "is"
            | "null"
            | "case"
            | "when"
            | "then"
            | "else"
            | "end"
            | "seq"
            | "vt"
            | "period"
            | "asc"
            | "desc"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_onduty_parses() {
        let stmt = parse_statement(
            "SEQ VT (SELECT count(*) AS cnt FROM works PERIOD (ts, te) WHERE skill = 'SP')",
        )
        .unwrap();
        let QueryExpr::SeqVt(inner) = stmt.query else {
            panic!("expected SEQ VT");
        };
        let QueryExpr::Select(sel) = *inner else {
            panic!("expected SELECT");
        };
        assert_eq!(sel.items.len(), 1);
        assert!(sel.where_clause.is_some());
        match &sel.from[0] {
            FromItem::Table { name, period, .. } => {
                assert_eq!(name, "works");
                assert_eq!(period, &Some(("ts".into(), "te".into())));
            }
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn q_skillreq_parses() {
        let stmt = parse_statement(
            "SEQ VT (SELECT skill FROM assign PERIOD (ts, te) \
             EXCEPT ALL SELECT skill FROM works PERIOD (ts, te))",
        )
        .unwrap();
        let QueryExpr::SeqVt(inner) = stmt.query else {
            panic!("expected SEQ VT");
        };
        assert!(matches!(*inner, QueryExpr::ExceptAll(_, _)));
    }

    #[test]
    fn joins_and_aliases() {
        let stmt = parse_statement(
            "SELECT w.name, a.mach FROM works w JOIN assign a ON w.skill = a.skill \
             WHERE w.name <> 'Joe' ORDER BY w.name DESC",
        )
        .unwrap();
        assert_eq!(stmt.order_by.len(), 1);
        assert!(!stmt.order_by[0].asc);
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        assert!(matches!(&sel.from[0], FromItem::Join { .. }));
    }

    #[test]
    fn group_by_having_subquery() {
        let stmt = parse_statement(
            "SELECT cnt FROM (SELECT dept, count(*) AS cnt FROM emp GROUP BY dept \
             HAVING count(*) > 21) sub",
        )
        .unwrap();
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        match &sel.from[0] {
            FromItem::Subquery { alias, .. } => assert_eq!(alias, "sub"),
            other => panic!("expected subquery, got {other:?}"),
        }
    }

    #[test]
    fn between_in_like_case() {
        let stmt = parse_statement(
            "SELECT CASE WHEN x BETWEEN 1 AND 5 THEN 'lo' ELSE 'hi' END \
             FROM t WHERE mode IN ('MAIL','SHIP') AND name NOT LIKE 'A%'",
        )
        .unwrap();
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn arithmetic_precedence() {
        let stmt = parse_statement("SELECT 1 + 2 * 3 FROM t").unwrap();
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        match expr {
            AstExpr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(**right, AstExpr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE x LIKE y").is_err());
        assert!(parse_statement("SELECT * FROM t extra garbage !!").is_err());
        assert!(parse_statement("SEQ VT SELECT 1").is_err());
    }

    #[test]
    fn unary_minus() {
        let stmt = parse_statement("SELECT -5 FROM t").unwrap();
        let QueryExpr::Select(sel) = stmt.query else {
            panic!()
        };
        assert!(matches!(
            &sel.items[0],
            SelectItem::Expr {
                expr: AstExpr::Binary { op: BinOp::Sub, .. },
                ..
            }
        ));
    }
}
