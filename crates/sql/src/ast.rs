//! The parse tree of the SQL dialect.

use algebra::BinOp;
use storage::Value;

/// A parsed statement: a query expression plus an optional top-level
/// `ORDER BY` (sorting a snapshot query's result happens *outside* the
/// `SEQ VT` block, per paper Section 10.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The query.
    pub query: QueryExpr,
    /// Top-level sort keys.
    pub order_by: Vec<OrderItem>,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: AstExpr,
    /// Ascending?
    pub asc: bool,
}

/// A query expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// A `SELECT` block.
    Select(Box<SelectStmt>),
    /// `UNION ALL`.
    UnionAll(Box<QueryExpr>, Box<QueryExpr>),
    /// `EXCEPT ALL`.
    ExceptAll(Box<QueryExpr>, Box<QueryExpr>),
    /// `SEQ VT ( query )`: evaluate under snapshot semantics.
    SeqVt(Box<QueryExpr>),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// `FROM` items (comma list = cross join).
    pub from: Vec<FromItem>,
    /// `WHERE` predicate.
    pub where_clause: Option<AstExpr>,
    /// `GROUP BY` expressions (bare columns in this dialect).
    pub group_by: Vec<AstExpr>,
    /// `HAVING` predicate.
    pub having: Option<AstExpr>,
}

/// An item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// An item of the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// A stored table, optionally `PERIOD (b, e)` and/or aliased.
    Table {
        /// Catalog name.
        name: String,
        /// `AS alias`.
        alias: Option<String>,
        /// `PERIOD (begin_col, end_col)` — names of the period attributes
        /// (only meaningful inside `SEQ VT`; overrides the catalog default).
        period: Option<(String, String)>,
    },
    /// A parenthesized subquery with a mandatory alias.
    Subquery {
        /// The subquery.
        query: QueryExpr,
        /// Alias.
        alias: String,
    },
    /// `left JOIN right ON condition`.
    Join {
        /// Left input.
        left: Box<FromItem>,
        /// Right input.
        right: Box<FromItem>,
        /// Join condition.
        on: AstExpr,
    },
}

/// An unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference, optionally qualified.
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// `NOT e`.
    Not(Box<AstExpr>),
    /// `e IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<AstExpr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// Searched `CASE`.
    Case {
        /// `(WHEN, THEN)` pairs.
        branches: Vec<(AstExpr, AstExpr)>,
        /// `ELSE`.
        else_expr: Option<Box<AstExpr>>,
    },
    /// `e [NOT] LIKE 'pattern'`.
    Like {
        /// Operand.
        expr: Box<AstExpr>,
        /// Pattern.
        pattern: String,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// `e [NOT] BETWEEN lo AND hi` (desugared by the binder).
    Between {
        /// Operand.
        expr: Box<AstExpr>,
        /// Lower bound (inclusive).
        low: Box<AstExpr>,
        /// Upper bound (inclusive).
        high: Box<AstExpr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// `e [NOT] IN (v, ...)` (desugared by the binder).
    InList {
        /// Operand.
        expr: Box<AstExpr>,
        /// The candidate list.
        list: Vec<AstExpr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// Function call — aggregate (`count`/`sum`/`avg`/`min`/`max`) or
    /// scalar (`least`/`greatest`).
    Func {
        /// Lower-cased function name.
        name: String,
        /// Arguments (`count(*)` has `star = true` and no args).
        args: Vec<AstExpr>,
        /// Whether the argument is `*`.
        star: bool,
    },
}
