//! The parse tree of the SQL dialect.

use algebra::BinOp;
use storage::{SqlType, Value};

/// A parsed SQL statement: a query, or one of the DDL/DML commands the
/// session layer executes against a live [`storage::Catalog`].
#[derive(Debug, Clone, PartialEq)]
pub enum SqlStatement {
    /// A query statement (possibly a `SEQ VT` snapshot query).
    Query(Statement),
    /// `CREATE TABLE name (col type, ...) [PERIOD (b, e)]`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions in order.
        columns: Vec<ColumnDef>,
        /// `PERIOD (begin_col, end_col)` — names of the period attributes.
        period: Option<(String, String)>,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Table name.
        name: String,
        /// Whether `IF EXISTS` was given.
        if_exists: bool,
    },
    /// `INSERT INTO name VALUES (...), ...` or `INSERT INTO name query`.
    Insert {
        /// Target table.
        table: String,
        /// The inserted rows.
        source: InsertSource,
    },
    /// `DELETE FROM name [WHERE pred]` (non-sequenced: the period columns
    /// are ordinary columns of the predicate, per the paper's storage
    /// model).
    Delete {
        /// Target table.
        table: String,
        /// Row predicate (`None` deletes everything).
        where_clause: Option<AstExpr>,
    },
    /// `UPDATE name SET col = expr, ... [WHERE pred]` (non-sequenced).
    Update {
        /// Target table.
        table: String,
        /// `(column, value expression)` assignments.
        assignments: Vec<(String, AstExpr)>,
        /// Row predicate (`None` updates everything).
        where_clause: Option<AstExpr>,
    },
    /// `BEGIN [TRANSACTION | WORK]` — opens an explicit transaction; until
    /// `COMMIT`/`ROLLBACK`, statements run against a private snapshot of
    /// the catalog (snapshot isolation).
    Begin,
    /// `COMMIT [TRANSACTION | WORK]` — publishes the open transaction's
    /// writes (first-committer-wins on write-write conflicts).
    Commit,
    /// `ROLLBACK [TRANSACTION | WORK]` — discards the open transaction's
    /// writes; the catalog is exactly as it was at `BEGIN`.
    Rollback,
    /// `EXPLAIN [ANALYZE] <query>` — renders the compiled plan; with
    /// `ANALYZE`, also executes it and annotates every operator with the
    /// actual row count, call count, and inclusive wall-clock time.
    Explain {
        /// Whether `ANALYZE` was given (execute and annotate).
        analyze: bool,
        /// The explained query statement.
        statement: Box<Statement>,
    },
    /// `SET <name> [= | TO] <value>` — a session option assignment. The
    /// value is kept as raw text; the session layer interprets it (e.g.
    /// `SET statement_timeout = 500`).
    Set {
        /// Option name (lower-cased by the lexer).
        name: String,
        /// Raw option value (number, identifier, or string literal).
        value: String,
    },
}

/// One column of a `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (lower-cased by the lexer).
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
}

/// The row source of an `INSERT`.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (expr, ...), (expr, ...)` — constant rows.
    Values(Vec<Vec<AstExpr>>),
    /// `INSERT INTO t SELECT ...` (or any query statement, including
    /// `SEQ VT` blocks).
    Query(Box<Statement>),
}

/// The temporal window of a `SEQ VT` block.
///
/// `SEQ VT (...)` evaluates the snapshot query over the whole time domain;
/// `SEQ VT AS OF t (...)` asks for the single snapshot at `t` (a plain,
/// non-temporal result); `SEQ VT BETWEEN t1 AND t2 (...)` restricts
/// evaluation to the snapshots with `t1 <= t <= t2` (both inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqWindow {
    /// The whole time domain.
    Full,
    /// A single time point.
    AsOf(i64),
    /// An inclusive range of time points.
    Between(i64, i64),
}

/// A parsed statement: a query expression plus an optional top-level
/// `ORDER BY` (sorting a snapshot query's result happens *outside* the
/// `SEQ VT` block, per paper Section 10.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The query.
    pub query: QueryExpr,
    /// Top-level sort keys.
    pub order_by: Vec<OrderItem>,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: AstExpr,
    /// Ascending?
    pub asc: bool,
}

/// A query expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// A `SELECT` block.
    Select(Box<SelectStmt>),
    /// `UNION ALL`.
    UnionAll(Box<QueryExpr>, Box<QueryExpr>),
    /// `EXCEPT ALL`.
    ExceptAll(Box<QueryExpr>, Box<QueryExpr>),
    /// `SEQ VT [AS OF t | BETWEEN t1 AND t2] ( query )`: evaluate under
    /// snapshot semantics over the given temporal window.
    SeqVt(Box<QueryExpr>, SeqWindow),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// `FROM` items (comma list = cross join).
    pub from: Vec<FromItem>,
    /// `WHERE` predicate.
    pub where_clause: Option<AstExpr>,
    /// `GROUP BY` expressions (bare columns in this dialect).
    pub group_by: Vec<AstExpr>,
    /// `HAVING` predicate.
    pub having: Option<AstExpr>,
}

/// An item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// An item of the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// A stored table, optionally `PERIOD (b, e)` and/or aliased.
    Table {
        /// Catalog name.
        name: String,
        /// `AS alias`.
        alias: Option<String>,
        /// `PERIOD (begin_col, end_col)` — names of the period attributes
        /// (only meaningful inside `SEQ VT`; overrides the catalog default).
        period: Option<(String, String)>,
    },
    /// A parenthesized subquery with a mandatory alias.
    Subquery {
        /// The subquery.
        query: QueryExpr,
        /// Alias.
        alias: String,
    },
    /// `left JOIN right ON condition`.
    Join {
        /// Left input.
        left: Box<FromItem>,
        /// Right input.
        right: Box<FromItem>,
        /// Join condition.
        on: AstExpr,
    },
}

/// An unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference, optionally qualified.
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// `NOT e`.
    Not(Box<AstExpr>),
    /// `e IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<AstExpr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// Searched `CASE`.
    Case {
        /// `(WHEN, THEN)` pairs.
        branches: Vec<(AstExpr, AstExpr)>,
        /// `ELSE`.
        else_expr: Option<Box<AstExpr>>,
    },
    /// `e [NOT] LIKE 'pattern'`.
    Like {
        /// Operand.
        expr: Box<AstExpr>,
        /// Pattern.
        pattern: String,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// `e [NOT] BETWEEN lo AND hi` (desugared by the binder).
    Between {
        /// Operand.
        expr: Box<AstExpr>,
        /// Lower bound (inclusive).
        low: Box<AstExpr>,
        /// Upper bound (inclusive).
        high: Box<AstExpr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
    /// `e [NOT] IN (v, ...)` (desugared by the binder).
    InList {
        /// Operand.
        expr: Box<AstExpr>,
        /// The candidate list.
        list: Vec<AstExpr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// Function call — aggregate (`count`/`sum`/`avg`/`min`/`max`) or
    /// scalar (`least`/`greatest`).
    Func {
        /// Lower-cased function name.
        name: String,
        /// Arguments (`count(*)` has `star = true` and no args).
        args: Vec<AstExpr>,
        /// Whether the argument is `*`.
        star: bool,
    },
}
