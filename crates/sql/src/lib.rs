//! SQL front end with `SEQ VT (...)` snapshot blocks.
//!
//! The paper's middleware "exposes snapshot semantics as a new language
//! feature in SQL": a query enclosed in `SEQ VT (...)` is evaluated under
//! snapshot semantics, and each table accessed inside the block names the
//! attributes storing its validity period — `works PERIOD (ts, te)` —
//! unless the catalog already registered a period for the table
//! (Section 9). This crate provides that dialect:
//!
//! * [`lexer`] / [`parser`] — hand-written lexer and recursive-descent
//!   parser for the supported subset (SELECT/FROM/WHERE/GROUP BY/HAVING,
//!   JOIN..ON, UNION ALL, EXCEPT ALL, subqueries in FROM, CASE, LIKE,
//!   BETWEEN, IN, aggregates, top-level ORDER BY),
//! * [`ast`] — the parse tree,
//! * [`binder`] — name resolution and typing against a
//!   [`storage::Catalog`], producing either a plain [`algebra::Plan`] or a
//!   snapshot [`algebra::SnapshotPlan`] ready for the `rewrite` crate.
//!
//! `SEQ VT` is supported at statement level (optionally under a top-level
//! `ORDER BY`), which covers every query of the paper's evaluation;
//! `ORDER BY` *inside* a snapshot block is rejected, as in the paper.
//!
//! Beyond queries, the dialect covers the statement surface the session
//! layer (`snapshot_session`) executes against a live database: temporal
//! DDL (`CREATE TABLE ... PERIOD (b, e)`, `DROP TABLE`), non-sequenced DML
//! (`INSERT ... VALUES`/`... SELECT`, `DELETE`, `UPDATE`), and windowed
//! snapshot queries (`SEQ VT AS OF t (...)`,
//! `SEQ VT BETWEEN t1 AND t2 (...)`). Use [`parse_sql_statement`] /
//! [`parse_script`] for the full dialect and [`parse_statement`] for
//! queries alone.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use ast::{
    AstExpr, ColumnDef, FromItem, InsertSource, OrderItem, QueryExpr, SelectItem, SelectStmt,
    SeqWindow, SqlStatement, Statement,
};
pub use binder::{bind_scalar_expr, bind_statement, BoundStatement};
pub use parser::{parse_script, parse_sql_statement, parse_statement, split_script};
