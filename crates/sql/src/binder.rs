//! Name resolution and typing: AST → logical plans.
//!
//! Binding runs in one of two modes. Outside `SEQ VT`, a query binds to a
//! plain [`Plan`] in which period columns are ordinary columns. Inside
//! `SEQ VT`, the query binds to a [`SnapshotPlan`]: each table access must
//! have a period specification (explicit `PERIOD (b, e)` or the catalog
//! default), the period attributes are hidden from the query, and the
//! resulting plan is handed to the `rewrite` crate for the `REWR`
//! translation of Figure 4.

use crate::ast::*;
use algebra::{AggExpr, AggFunc, BinOp, Expr, Plan, SnapshotPlan};
use storage::{Catalog, Column, Schema, SqlType};

/// The result of binding a statement.
#[derive(Debug, Clone)]
pub enum BoundStatement {
    /// A plain non-temporal query (ORDER BY folded in as a Sort node).
    Query(Plan),
    /// A snapshot-semantics query with optional top-level sort keys.
    ///
    /// The sort keys are bound against the snapshot plan's data schema;
    /// after rewriting, the period columns are appended *behind* the data
    /// columns, so the key indices stay valid (and for an `AS OF` window,
    /// whose result has no period columns, they address the data directly).
    Snapshot {
        /// The snapshot plan for `rewrite::SnapshotCompiler`.
        plan: SnapshotPlan,
        /// Bound `(key, ascending)` pairs.
        order_by: Vec<(Expr, bool)>,
        /// The temporal window of the `SEQ VT` block.
        window: SeqWindow,
    },
}

/// Binds a parsed statement against a catalog.
pub fn bind_statement(stmt: &Statement, catalog: &Catalog) -> Result<BoundStatement, String> {
    match &stmt.query {
        QueryExpr::SeqVt(inner, window) => {
            let bound = bind_query(inner, catalog, Mode::Snapshot)?;
            let QB::Snap(plan) = bound.qb else {
                unreachable!("snapshot mode produced a plain plan")
            };
            let mut order_by = Vec::new();
            for item in &stmt.order_by {
                let e = bind_order_key(&item.expr, &plan.schema)?;
                order_by.push((e, item.asc));
            }
            Ok(BoundStatement::Snapshot {
                plan,
                order_by,
                window: *window,
            })
        }
        _ => {
            let bound = bind_query(&stmt.query, catalog, Mode::Plain)?;
            let QB::Plain(mut plan) = bound.qb else {
                unreachable!("plain mode produced a snapshot plan")
            };
            if !stmt.order_by.is_empty() {
                let mut keys = Vec::new();
                for item in &stmt.order_by {
                    keys.push((bind_order_key(&item.expr, &plan.schema)?, item.asc));
                }
                plan = plan.sort(keys);
            }
            Ok(BoundStatement::Query(plan))
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Plain,
    Snapshot,
}

/// Either kind of plan, with parallel combinators.
enum QB {
    Plain(Plan),
    Snap(SnapshotPlan),
}

impl QB {
    fn schema(&self) -> &Schema {
        match self {
            QB::Plain(p) => &p.schema,
            QB::Snap(p) => &p.schema,
        }
    }

    fn filter(self, predicate: Expr) -> QB {
        match self {
            QB::Plain(p) => QB::Plain(p.filter(predicate)),
            QB::Snap(p) => QB::Snap(p.filter(predicate)),
        }
    }

    fn project(self, exprs: Vec<Expr>, names: Vec<String>) -> Result<QB, String> {
        match self {
            QB::Plain(p) => Ok(QB::Plain(p.project(exprs, names)?)),
            QB::Snap(p) => Ok(QB::Snap(p.project(exprs, names)?)),
        }
    }

    fn join(self, right: QB, condition: Expr) -> Result<QB, String> {
        match (self, right) {
            (QB::Plain(l), QB::Plain(r)) => Ok(QB::Plain(l.join(r, condition))),
            (QB::Snap(l), QB::Snap(r)) => Ok(QB::Snap(l.join(r, condition))),
            _ => Err("cannot mix snapshot and plain inputs in a join".into()),
        }
    }

    fn union(self, right: QB) -> Result<QB, String> {
        match (self, right) {
            (QB::Plain(l), QB::Plain(r)) => Ok(QB::Plain(l.union(r)?)),
            (QB::Snap(l), QB::Snap(r)) => Ok(QB::Snap(l.union(r)?)),
            _ => Err("cannot mix snapshot and plain inputs in UNION ALL".into()),
        }
    }

    fn except_all(self, right: QB) -> Result<QB, String> {
        match (self, right) {
            (QB::Plain(l), QB::Plain(r)) => Ok(QB::Plain(l.except_all(r)?)),
            (QB::Snap(l), QB::Snap(r)) => Ok(QB::Snap(l.except_all(r)?)),
            _ => Err("cannot mix snapshot and plain inputs in EXCEPT ALL".into()),
        }
    }

    fn aggregate(self, group_cols: Vec<usize>, aggs: Vec<AggExpr>) -> Result<QB, String> {
        match self {
            QB::Plain(p) => Ok(QB::Plain(p.aggregate(group_cols, aggs)?)),
            QB::Snap(p) => Ok(QB::Snap(p.aggregate(group_cols, aggs)?)),
        }
    }
}

/// A bound query: the plan plus the qualified schema used for name
/// resolution by enclosing scopes (positions align with the plan schema).
struct Bound {
    qb: QB,
    visible: Schema,
}

fn bind_query(query: &QueryExpr, catalog: &Catalog, mode: Mode) -> Result<Bound, String> {
    match query {
        QueryExpr::Select(sel) => bind_select(sel, catalog, mode),
        QueryExpr::UnionAll(l, r) => {
            let lb = bind_query(l, catalog, mode)?;
            let rb = bind_query(r, catalog, mode)?;
            let visible = lb.visible.clone();
            Ok(Bound {
                qb: lb.qb.union(rb.qb)?,
                visible,
            })
        }
        QueryExpr::ExceptAll(l, r) => {
            let lb = bind_query(l, catalog, mode)?;
            let rb = bind_query(r, catalog, mode)?;
            let visible = lb.visible.clone();
            Ok(Bound {
                qb: lb.qb.except_all(rb.qb)?,
                visible,
            })
        }
        QueryExpr::SeqVt(..) => {
            Err("SEQ VT is only supported at the top level of a statement".into())
        }
    }
}

fn bind_select(sel: &SelectStmt, catalog: &Catalog, mode: Mode) -> Result<Bound, String> {
    // FROM: fold the comma list into cross joins.
    let mut from_iter = sel.from.iter();
    let first = from_iter
        .next()
        .ok_or("queries without FROM are not supported")?;
    let mut bound = bind_from_item(first, catalog, mode)?;
    for item in from_iter {
        let right = bind_from_item(item, catalog, mode)?;
        let visible = bound.visible.concat(&right.visible);
        bound = Bound {
            qb: bound.qb.join(right.qb, Expr::lit(true))?,
            visible,
        };
    }

    // WHERE.
    if let Some(w) = &sel.where_clause {
        let pred = bind_expr(w, &bound.visible)?;
        expect_bool(&pred, bound.qb.schema(), "WHERE")?;
        bound = Bound {
            qb: bound.qb.filter(pred),
            visible: bound.visible,
        };
    }

    let has_aggs = sel.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => contains_aggregate(expr),
        _ => false,
    });

    if !sel.group_by.is_empty() || has_aggs || sel.having.is_some() {
        bind_aggregate_select(sel, bound, catalog)
    } else {
        bind_plain_select(sel, bound)
    }
}

fn bind_plain_select(sel: &SelectStmt, bound: Bound) -> Result<Bound, String> {
    let mut exprs = Vec::new();
    let mut names = Vec::new();
    for (idx, item) in sel.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (i, c) in bound.visible.columns().iter().enumerate() {
                    exprs.push(Expr::Col(i));
                    names.push(c.name.clone());
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for (i, c) in bound.visible.columns().iter().enumerate() {
                    if c.table.as_deref() == Some(q.as_str()) {
                        exprs.push(Expr::Col(i));
                        names.push(c.name.clone());
                        any = true;
                    }
                }
                if !any {
                    return Err(format!("unknown table alias '{q}' in {q}.*"));
                }
            }
            SelectItem::Expr { expr, alias } => {
                exprs.push(bind_expr(expr, &bound.visible)?);
                names.push(output_name(expr, alias.as_deref(), idx));
            }
        }
    }
    let qb = bound.qb.project(exprs, names.clone())?;
    let visible = qb.schema().clone();
    Ok(Bound { qb, visible })
}

fn bind_aggregate_select(
    sel: &SelectStmt,
    bound: Bound,
    _catalog: &Catalog,
) -> Result<Bound, String> {
    // GROUP BY: bare columns only (pre-project for anything else).
    let mut group_cols = Vec::new();
    for g in &sel.group_by {
        match bind_expr(g, &bound.visible)? {
            Expr::Col(i) => group_cols.push(i),
            other => {
                return Err(format!(
                    "GROUP BY supports plain columns only, got expression {other}"
                ))
            }
        }
    }

    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut post_exprs = Vec::new();
    let mut post_names = Vec::new();
    for (idx, item) in sel.items.iter().enumerate() {
        let SelectItem::Expr { expr, alias } = item else {
            return Err("* is not allowed in an aggregating SELECT".into());
        };
        let post = bind_post_agg(expr, &bound.visible, &group_cols, &mut aggs)?;
        post_exprs.push(post);
        post_names.push(output_name(expr, alias.as_deref(), idx));
    }

    // HAVING may reference (and introduce) aggregates.
    let having = sel
        .having
        .as_ref()
        .map(|h| bind_post_agg(h, &bound.visible, &group_cols, &mut aggs))
        .transpose()?;

    if aggs.is_empty() {
        return Err("GROUP BY query without aggregates; use SELECT DISTINCT instead".into());
    }

    let qb = bound.qb.aggregate(group_cols, aggs)?;
    let qb = match having {
        Some(h) => {
            expect_bool(&h, qb.schema(), "HAVING")?;
            qb.filter(h)
        }
        None => qb,
    };
    let qb = qb.project(post_exprs, post_names)?;
    let visible = qb.schema().clone();
    Ok(Bound { qb, visible })
}

fn bind_from_item(item: &FromItem, catalog: &Catalog, mode: Mode) -> Result<Bound, String> {
    match item {
        FromItem::Table {
            name,
            alias,
            period,
        } => {
            let qualifier = alias.clone().unwrap_or_else(|| name.clone());
            // A real catalog table shadows a virtual table of the same
            // name; the virtual route only answers catalog misses.
            let table = match catalog.get(name) {
                Some(t) => t,
                None => match algebra::vtab::virtual_table_schema(name) {
                    Some(schema) => {
                        if mode == Mode::Snapshot {
                            return Err(format!(
                                "virtual table '{name}' is not a temporal relation and \
                                 cannot appear in a SEQ VT block"
                            ));
                        }
                        if period.is_some() {
                            return Err(format!(
                                "PERIOD specification is not valid on virtual table '{name}'"
                            ));
                        }
                        let visible = schema.with_qualifier(&qualifier);
                        return Ok(Bound {
                            qb: QB::Plain(Plan::virtual_scan(name.clone(), schema)),
                            visible,
                        });
                    }
                    None => return Err(format!("unknown table '{name}'")),
                },
            };
            match mode {
                Mode::Plain => {
                    if period.is_some() {
                        return Err(format!(
                            "PERIOD specification on '{name}' requires a SEQ VT block"
                        ));
                    }
                    let plan = Plan::scan(name.clone(), table.schema().clone());
                    let visible = table.schema().with_qualifier(&qualifier);
                    Ok(Bound {
                        qb: QB::Plain(plan),
                        visible,
                    })
                }
                Mode::Snapshot => {
                    let (b, e) = match period {
                        Some((bn, en)) => {
                            let b = table.schema().resolve(None, bn)?;
                            let e = table.schema().resolve(None, en)?;
                            if table.schema().column(b).ty != SqlType::Int
                                || table.schema().column(e).ty != SqlType::Int
                            {
                                return Err(format!("period attributes of '{name}' must be INT"));
                            }
                            (b, e)
                        }
                        None => table.period().ok_or_else(|| {
                            format!(
                                "table '{name}' accessed in SEQ VT without a period: \
                                 add PERIOD (begin, end) or register the table with one"
                            )
                        })?,
                    };
                    let data_cols: Vec<usize> = (0..table.schema().arity())
                        .filter(|&i| i != b && i != e)
                        .collect();
                    let data_schema = Schema::new(
                        data_cols
                            .iter()
                            .map(|&i| {
                                let c = table.schema().column(i);
                                Column::qualified(qualifier.clone(), c.name.clone(), c.ty)
                            })
                            .collect(),
                    );
                    let plan =
                        SnapshotPlan::access(name.clone(), data_cols, (b, e), data_schema.clone());
                    Ok(Bound {
                        qb: QB::Snap(plan),
                        visible: data_schema,
                    })
                }
            }
        }
        FromItem::Subquery { query, alias } => {
            let inner = bind_query(query, catalog, mode)?;
            let visible = inner.visible.unqualified().with_qualifier(alias);
            Ok(Bound {
                qb: inner.qb,
                visible,
            })
        }
        FromItem::Join { left, right, on } => {
            let lb = bind_from_item(left, catalog, mode)?;
            let rb = bind_from_item(right, catalog, mode)?;
            let visible = lb.visible.concat(&rb.visible);
            let condition = bind_expr(on, &visible)?;
            Ok(Bound {
                qb: lb.qb.join(rb.qb, condition)?,
                visible,
            })
        }
    }
}

// ---- expression binding ---------------------------------------------

/// Binds a scalar (non-aggregate) expression against a schema — the entry
/// point the session layer uses for DML: `WHERE` predicates of
/// `DELETE`/`UPDATE`, `SET` value expressions, and `INSERT ... VALUES`
/// literals (bound against the empty schema).
pub fn bind_scalar_expr(ast: &AstExpr, schema: &Schema) -> Result<Expr, String> {
    bind_expr(ast, schema)
}

fn bind_expr(ast: &AstExpr, schema: &Schema) -> Result<Expr, String> {
    match ast {
        AstExpr::Column { table, name } => {
            let i = schema.resolve(table.as_deref(), name)?;
            Ok(Expr::Col(i))
        }
        AstExpr::Lit(v) => Ok(Expr::Lit(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(bind_expr(left, schema)?),
            right: Box::new(bind_expr(right, schema)?),
        }),
        AstExpr::Not(e) => Ok(Expr::Not(Box::new(bind_expr(e, schema)?))),
        AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(bind_expr(expr, schema)?),
            negated: *negated,
        }),
        AstExpr::Case {
            branches,
            else_expr,
        } => Ok(Expr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| Ok((bind_expr(c, schema)?, bind_expr(r, schema)?)))
                .collect::<Result<_, String>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|e| Ok::<_, String>(Box::new(bind_expr(e, schema)?)))
                .transpose()?,
        }),
        AstExpr::Like {
            expr,
            pattern,
            negated,
        } => Ok(Expr::Like {
            expr: Box::new(bind_expr(expr, schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
        AstExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let e = bind_expr(expr, schema)?;
            let lo = bind_expr(low, schema)?;
            let hi = bind_expr(high, schema)?;
            let in_range =
                Expr::binary(BinOp::Geq, e.clone(), lo).and(Expr::binary(BinOp::Leq, e, hi));
            Ok(if *negated {
                Expr::Not(Box::new(in_range))
            } else {
                in_range
            })
        }
        AstExpr::InList {
            expr,
            list,
            negated,
        } => {
            let e = bind_expr(expr, schema)?;
            let mut disjunction: Option<Expr> = None;
            for candidate in list {
                let c = bind_expr(candidate, schema)?;
                let eq = e.clone().eq(c);
                disjunction = Some(match disjunction {
                    None => eq,
                    Some(d) => Expr::binary(BinOp::Or, d, eq),
                });
            }
            let d = disjunction.ok_or("IN requires a non-empty list")?;
            Ok(if *negated { Expr::Not(Box::new(d)) } else { d })
        }
        AstExpr::Func { name, args, star } => match name.as_str() {
            "least" | "greatest" => {
                let bound: Vec<Expr> = args
                    .iter()
                    .map(|a| bind_expr(a, schema))
                    .collect::<Result<_, _>>()?;
                if bound.is_empty() {
                    return Err(format!("{name} requires at least one argument"));
                }
                Ok(if name == "least" {
                    Expr::Least(bound)
                } else {
                    Expr::Greatest(bound)
                })
            }
            "count" | "sum" | "avg" | "min" | "max" => Err(format!(
                "aggregate {name}({}) is not allowed in this context",
                if *star { "*" } else { "..." }
            )),
            other => Err(format!("unknown function '{other}'")),
        },
    }
}

/// Binds an expression appearing *above* an aggregation (select item or
/// HAVING): aggregate calls are collected into `aggs` and replaced by
/// references to the aggregate output; plain columns must be group columns.
fn bind_post_agg(
    ast: &AstExpr,
    input: &Schema,
    group_cols: &[usize],
    aggs: &mut Vec<AggExpr>,
) -> Result<Expr, String> {
    match ast {
        AstExpr::Func { name, args, star }
            if matches!(name.as_str(), "count" | "sum" | "avg" | "min" | "max") =>
        {
            let agg = if *star {
                if name != "count" {
                    return Err(format!("{name}(*) is not valid"));
                }
                AggExpr::count_star(format!("agg{}", aggs.len()))
            } else {
                if args.len() != 1 {
                    return Err(format!("{name} takes exactly one argument"));
                }
                if contains_aggregate(&args[0]) {
                    return Err("nested aggregates are not allowed".into());
                }
                let arg = bind_expr(&args[0], input)?;
                let func = match name.as_str() {
                    "count" => AggFunc::Count,
                    "sum" => AggFunc::Sum,
                    "avg" => AggFunc::Avg,
                    "min" => AggFunc::Min,
                    "max" => AggFunc::Max,
                    _ => unreachable!(),
                };
                AggExpr {
                    func,
                    arg: Some(arg),
                    name: format!("agg{}", aggs.len()),
                }
            };
            // Reuse an identical aggregate if present (ignoring the name).
            let pos = aggs
                .iter()
                .position(|a| a.func == agg.func && a.arg == agg.arg)
                .unwrap_or_else(|| {
                    aggs.push(agg);
                    aggs.len() - 1
                });
            Ok(Expr::Col(group_cols.len() + pos))
        }
        AstExpr::Column { table, name } => {
            let i = input.resolve(table.as_deref(), name)?;
            let pos = group_cols.iter().position(|&g| g == i).ok_or_else(|| {
                format!("column {name} must appear in GROUP BY or be used in an aggregate")
            })?;
            Ok(Expr::Col(pos))
        }
        AstExpr::Lit(v) => Ok(Expr::Lit(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(bind_post_agg(left, input, group_cols, aggs)?),
            right: Box::new(bind_post_agg(right, input, group_cols, aggs)?),
        }),
        AstExpr::Not(e) => Ok(Expr::Not(Box::new(bind_post_agg(
            e, input, group_cols, aggs,
        )?))),
        AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(bind_post_agg(expr, input, group_cols, aggs)?),
            negated: *negated,
        }),
        AstExpr::Case {
            branches,
            else_expr,
        } => Ok(Expr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| {
                    Ok((
                        bind_post_agg(c, input, group_cols, aggs)?,
                        bind_post_agg(r, input, group_cols, aggs)?,
                    ))
                })
                .collect::<Result<_, String>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|e| Ok::<_, String>(Box::new(bind_post_agg(e, input, group_cols, aggs)?)))
                .transpose()?,
        }),
        AstExpr::Like {
            expr,
            pattern,
            negated,
        } => Ok(Expr::Like {
            expr: Box::new(bind_post_agg(expr, input, group_cols, aggs)?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
        AstExpr::Between { .. } | AstExpr::InList { .. } => {
            Err("BETWEEN/IN above aggregates are not supported; compare explicitly".into())
        }
        AstExpr::Func { name, .. } => Err(format!("unknown function '{name}'")),
    }
}

fn bind_order_key(ast: &AstExpr, schema: &Schema) -> Result<Expr, String> {
    // ORDER BY 2 — ordinal reference.
    if let AstExpr::Lit(storage::Value::Int(i)) = ast {
        let idx = *i - 1;
        if idx < 0 || idx as usize >= schema.arity() {
            return Err(format!("ORDER BY position {i} out of range"));
        }
        return Ok(Expr::Col(idx as usize));
    }
    bind_expr(ast, schema)
}

fn contains_aggregate(ast: &AstExpr) -> bool {
    match ast {
        AstExpr::Func { name, args, .. } => {
            matches!(name.as_str(), "count" | "sum" | "avg" | "min" | "max")
                || args.iter().any(contains_aggregate)
        }
        AstExpr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        AstExpr::Not(e) => contains_aggregate(e),
        AstExpr::IsNull { expr, .. } => contains_aggregate(expr),
        AstExpr::Case {
            branches,
            else_expr,
        } => {
            branches
                .iter()
                .any(|(c, r)| contains_aggregate(c) || contains_aggregate(r))
                || else_expr.as_deref().is_some_and(contains_aggregate)
        }
        AstExpr::Like { expr, .. } => contains_aggregate(expr),
        AstExpr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        AstExpr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        AstExpr::Column { .. } | AstExpr::Lit(_) => false,
    }
}

fn output_name(expr: &AstExpr, alias: Option<&str>, idx: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::Func { name, .. } => name.clone(),
        _ => format!("col{idx}"),
    }
}

fn expect_bool(e: &Expr, schema: &Schema, clause: &str) -> Result<(), String> {
    let ty = e.infer_type(schema)?;
    if ty != SqlType::Bool {
        return Err(format!("{clause} predicate must be boolean, got {ty}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;
    use algebra::{PlanNode, SnapshotNode};
    use storage::{row, Table};

    fn catalog() -> Catalog {
        let works = Schema::of(&[
            ("name", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let assign = Schema::of(&[
            ("mach", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let mut c = Catalog::new();
        let mut w = Table::with_period(works, 2, 3);
        w.push(row!["Ann", "SP", 3, 10]);
        c.register("works", w);
        c.register("assign", Table::with_period(assign, 2, 3));
        c
    }

    fn bind(sql: &str) -> Result<BoundStatement, String> {
        bind_statement(&parse_statement(sql)?, &catalog())
    }

    #[test]
    fn plain_query_binds_to_plan() {
        let b = bind("SELECT name FROM works WHERE skill = 'SP'").unwrap();
        let BoundStatement::Query(plan) = b else {
            panic!("expected plain query")
        };
        assert_eq!(plan.schema.arity(), 1);
        assert_eq!(plan.schema.column(0).name, "name");
    }

    #[test]
    fn snapshot_query_hides_period_columns() {
        let b = bind("SEQ VT (SELECT * FROM works)").unwrap();
        let BoundStatement::Snapshot { plan, .. } = b else {
            panic!("expected snapshot query")
        };
        // * expands to data columns only.
        assert_eq!(plan.schema.arity(), 2);
        assert_eq!(plan.schema.column(0).name, "name");
        assert_eq!(plan.schema.column(1).name, "skill");
    }

    #[test]
    fn snapshot_query_period_override() {
        let b = bind("SEQ VT (SELECT * FROM works PERIOD (ts, te))").unwrap();
        let BoundStatement::Snapshot { plan, .. } = b else {
            panic!()
        };
        // Walk to the access leaf.
        fn find_access(p: &SnapshotPlan) -> Option<(usize, usize)> {
            match &p.node {
                SnapshotNode::Access { period, .. } => Some(*period),
                SnapshotNode::Project { input, .. } | SnapshotNode::Filter { input, .. } => {
                    find_access(input)
                }
                _ => None,
            }
        }
        assert_eq!(find_access(&plan), Some((2, 3)));
    }

    #[test]
    fn q_onduty_binds() {
        let b = bind("SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')").unwrap();
        let BoundStatement::Snapshot { plan, .. } = b else {
            panic!()
        };
        assert_eq!(plan.schema.arity(), 1);
        assert_eq!(plan.schema.column(0).name, "cnt");
    }

    #[test]
    fn q_skillreq_binds() {
        let b =
            bind("SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)").unwrap();
        assert!(matches!(b, BoundStatement::Snapshot { .. }));
    }

    #[test]
    fn group_by_with_having_and_arithmetic() {
        let b = bind(
            "SELECT skill, count(*) AS c, max(te) - min(ts) AS span \
             FROM works GROUP BY skill HAVING count(*) > 1",
        )
        .unwrap();
        let BoundStatement::Query(plan) = b else {
            panic!()
        };
        assert_eq!(plan.schema.arity(), 3);
        // Having introduces no extra output column.
        assert_eq!(plan.schema.column(1).name, "c");
        assert_eq!(plan.schema.column(2).name, "span");
        // The plan is Project over Filter over Aggregate.
        let PlanNode::Project { input, .. } = &plan.node else {
            panic!("expected project on top")
        };
        assert!(matches!(input.node, PlanNode::Filter { .. }));
    }

    #[test]
    fn aggregates_are_deduplicated() {
        let b = bind("SELECT sum(ts), sum(ts) + count(*) FROM works").unwrap();
        let BoundStatement::Query(plan) = b else {
            panic!()
        };
        fn find_agg_count(p: &Plan) -> usize {
            match &p.node {
                PlanNode::Aggregate { aggs, .. } => aggs.len(),
                PlanNode::Project { input, .. } | PlanNode::Filter { input, .. } => {
                    find_agg_count(input)
                }
                _ => 0,
            }
        }
        assert_eq!(find_agg_count(&plan), 2); // sum(ts) reused, count(*) added
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        let err = bind("SELECT name, count(*) FROM works GROUP BY skill").unwrap_err();
        assert!(err.contains("GROUP BY"));
    }

    #[test]
    fn missing_period_reported() {
        let mut c = catalog();
        c.register("noperiod", Table::new(Schema::of(&[("x", SqlType::Int)])));
        let stmt = parse_statement("SEQ VT (SELECT x FROM noperiod)").unwrap();
        let err = bind_statement(&stmt, &c).unwrap_err();
        assert!(err.contains("without a period"));
    }

    #[test]
    fn nested_seq_vt_rejected() {
        let err = bind("SELECT * FROM (SEQ VT (SELECT name FROM works)) s").unwrap_err();
        assert!(err.contains("top level"));
    }

    #[test]
    fn ambiguous_columns_detected() {
        let err = bind("SELECT skill FROM works w JOIN assign a ON w.skill = a.skill").unwrap_err();
        assert!(err.contains("ambiguous"));
    }

    #[test]
    fn subquery_alias_requalifies() {
        let b = bind("SELECT s.n FROM (SELECT name AS n FROM works) s WHERE s.n <> 'Joe'").unwrap();
        assert!(matches!(b, BoundStatement::Query(_)));
    }

    #[test]
    fn order_by_binds_ordinal_and_name() {
        let b = bind("SELECT name, skill FROM works ORDER BY 2 DESC, name").unwrap();
        let BoundStatement::Query(plan) = b else {
            panic!()
        };
        let PlanNode::Sort { keys, .. } = &plan.node else {
            panic!("expected sort")
        };
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].0, Expr::Col(1));
        assert!(!keys[0].1);
    }

    #[test]
    fn snapshot_order_by_binds_against_data_schema() {
        let b = bind("SEQ VT (SELECT name, skill FROM works) ORDER BY skill").unwrap();
        let BoundStatement::Snapshot { order_by, .. } = b else {
            panic!()
        };
        assert_eq!(order_by, vec![(Expr::Col(1), true)]);
    }

    #[test]
    fn seq_vt_window_carried_through_binding() {
        let b = bind("SEQ VT AS OF 7 (SELECT name FROM works)").unwrap();
        let BoundStatement::Snapshot { window, .. } = b else {
            panic!()
        };
        assert_eq!(window, crate::ast::SeqWindow::AsOf(7));

        let b = bind("SEQ VT BETWEEN 3 AND 9 (SELECT name FROM works)").unwrap();
        let BoundStatement::Snapshot { window, .. } = b else {
            panic!()
        };
        assert_eq!(window, crate::ast::SeqWindow::Between(3, 9));
    }

    #[test]
    fn scalar_expr_binding_for_dml() {
        let schema = catalog()
            .get("works")
            .unwrap()
            .schema()
            .with_qualifier("works");
        let ast = crate::parser::parse_sql_statement("DELETE FROM works WHERE te <= 10").unwrap();
        let crate::ast::SqlStatement::Delete {
            where_clause: Some(pred),
            ..
        } = ast
        else {
            panic!()
        };
        let bound = bind_scalar_expr(&pred, &schema).unwrap();
        assert_eq!(bound.infer_type(&schema).unwrap(), SqlType::Bool);
        // Aggregates are rejected in scalar position.
        let bad = AstExpr::Func {
            name: "count".into(),
            args: vec![],
            star: true,
        };
        assert!(bind_scalar_expr(&bad, &schema).is_err());
    }
}
