//! Lexer torture fixture: not compiled, only lexed by snapshot_lint tests.
//! Exactly ONE `unwrap` ident in production position and TWO in test
//! regions; everything else hides inside literals and comments.

pub fn production(x: Option<u8>) -> u8 {
    // The word unwrap() in this comment is not a token.
    /* nor in /* this nested */ block comment: unwrap() */
    let _raw = r#"a raw "string" with unwrap() inside"#;
    let _rawer = r##"more #"# hashes, still one token: unwrap()"##;
    let _bytes = b"byte string unwrap()";
    let _c: char = '\'';
    let _nl = '\n';
    let _lifetime_fn: fn(&'static str) = drop;
    let _range: Vec<u8> = (0..4).collect();
    x.unwrap()
}

#[cfg(not(test))]
pub fn still_production() -> &'static str {
    r"raw without hashes: unwrap()"
}

#[test]
fn attr_test_region(x: [u8; 4]) {
    let _ = Some(x[0]).unwrap();
}

#[cfg(test)]
mod tests {
    #[allow(dead_code)]
    fn helper() -> u8 {
        Some(1_u8).unwrap()
    }
}
