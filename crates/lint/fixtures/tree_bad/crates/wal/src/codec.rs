//! Bad-tree fixture: every panic primitive the rule bans.

pub fn decode(bytes: &[u8]) -> u32 {
    let first = bytes.first().unwrap();
    let second = bytes.get(1).expect("second byte");
    if *first > 9 {
        panic!("bad byte");
    }
    u32::from(*second) + u32::from(bytes[2])
}

pub fn allowed(bytes: &[u8]) -> u8 {
    // lint:allow(panic_freedom) fixture proves suppression works
    bytes[0]
}
