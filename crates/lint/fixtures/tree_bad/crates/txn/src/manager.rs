//! Bad-tree fixture: raw locking and inverted acquisition order.

use std::sync::Mutex;

mod lock {
    pub fn lock(_name: &str, _m: &str) {}
}

pub fn bare(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn inverted() {
    let _b = lock::lock("b.inner", "m2");
    let _a = lock::lock("a.outer", "m1");
    let _c = lock::lock("c.undeclared", "m3");
}
