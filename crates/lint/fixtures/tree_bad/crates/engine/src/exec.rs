//! Bad-tree fixture: a loop that never polls the token.

pub fn scan(rows: &[u32]) -> u64 {
    let mut sum = 0;
    for &r in rows {
        sum += u64::from(r);
    }
    sum
}
