//! Bad-tree fixture: constructs the cancel marker by hand.

pub fn cancel_message(id: u64) -> String {
    format!("statement cancelled: {id}")
}

pub fn classify(err: &str) -> bool {
    err.contains(CANCEL_ERROR_MARKER)
}
