//! Bad-tree fixture: metric hygiene violations.

pub struct Reg;
impl Reg {
    pub fn counter(&self, _n: &str) {}
    pub fn gauge(&self, _n: &str) {}
}

pub fn register(reg: &Reg, dynamic: &str) {
    reg.counter("session_good_total");
    reg.counter("Bad_Name_Total");
    reg.counter("mystery_total");
    reg.counter("session_undocumented_total");
    reg.gauge("session_good_total");
    reg.counter(dynamic);
}
