//! Good-tree fixture: panic-free decoding.

pub fn decode(bytes: &[u8]) -> Result<u32, String> {
    let word: [u8; 4] = bytes
        .get(0..4)
        .ok_or("short")?
        .try_into()
        .map_err(|_| "short")?;
    Ok(u32::from_le_bytes(word))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        assert_eq!(super::decode(&[1, 0, 0, 0]).unwrap(), 1);
    }
}
