//! Good-tree fixture: loops poll the token.

pub struct Token;
impl Token {
    pub fn check(&self) -> Result<(), String> {
        Ok(())
    }
}

pub fn scan(rows: &[u32], token: &Token) -> Result<u64, String> {
    let mut sum = 0u64;
    for &r in rows {
        token.check()?;
        sum += u64::from(r);
    }
    // lint:allow(cancellation) bounded by a constant
    for i in 0..4u32 {
        sum += u64::from(i);
    }
    Ok(sum)
}
