//! Good-tree fixture: the registry impl may forward dynamic names.

pub struct Reg;
impl Reg {
    pub fn counter(&self, _n: &str) {}
}

pub fn forward(reg: &Reg, name: &str) {
    reg.counter(name);
}

pub fn register(reg: &Reg) {
    reg.counter("wal_good_total");
}
