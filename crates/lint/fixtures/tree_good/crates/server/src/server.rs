//! Good-tree fixture: ordered, helper-mediated locking.

mod lock {
    pub fn lock(_name: &str, _m: &str) {}
}

pub fn ordered() {
    let _a = lock::lock("a.outer", "m1");
    let _b = lock::lock("b.inner", "m2");
}
