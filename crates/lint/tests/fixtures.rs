//! Fixture-tree integration tests: the good tree is clean, the bad tree
//! produces exactly the expected `(file, line, rule)` findings, and the
//! CLI wires findings to exit codes.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn good_tree_is_clean() {
    let findings = snapshot_lint::run(&fixture("tree_good")).unwrap();
    assert!(findings.is_empty(), "unexpected findings: {findings:#?}");
}

#[test]
fn bad_tree_reports_every_rule_at_the_right_line() {
    let findings = snapshot_lint::run(&fixture("tree_bad")).unwrap();
    let got: Vec<(&str, u32, &str)> = findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    let want: Vec<(&str, u32, &str)> = vec![
        // README cites a metric nothing registers.
        ("README.md", 3, "metric_hygiene"),
        // A `for` loop that never reaches the cancel token.
        ("crates/engine/src/exec.rs", 5, "cancellation"),
        // Hand-rolled marker string; direct marker-constant comparison.
        ("crates/server/src/conn.rs", 4, "cancel_marker"),
        ("crates/server/src/conn.rs", 8, "cancel_marker"),
        // Not snake_case; unknown prefix; uncataloged; kind clash;
        // non-literal name.
        ("crates/session/src/session.rs", 11, "metric_hygiene"),
        ("crates/session/src/session.rs", 12, "metric_hygiene"),
        ("crates/session/src/session.rs", 13, "metric_hygiene"),
        ("crates/session/src/session.rs", 14, "metric_hygiene"),
        ("crates/session/src/session.rs", 15, "metric_hygiene"),
        // Raw `.lock()`; rank inversion; undeclared lock name.
        ("crates/txn/src/manager.rs", 10, "bare_lock"),
        ("crates/txn/src/manager.rs", 15, "lock_order"),
        ("crates/txn/src/manager.rs", 16, "lock_order"),
        // unwrap, expect, panic!, indexing — the allowed `bytes[0]` at
        // line 14 must NOT appear (suppression works).
        ("crates/wal/src/codec.rs", 4, "panic_freedom"),
        ("crates/wal/src/codec.rs", 5, "panic_freedom"),
        ("crates/wal/src/codec.rs", 7, "panic_freedom"),
        ("crates/wal/src/codec.rs", 9, "panic_freedom"),
        // Cataloged-but-unregistered: flagged by the catalog check and by
        // the citation check (the catalog is itself a doc).
        ("docs/metrics.md", 8, "metric_hygiene"),
        ("docs/metrics.md", 8, "metric_hygiene"),
    ];
    assert_eq!(got, want);
}

#[test]
fn cli_exit_codes_and_output_formats() {
    let bin = env!("CARGO_BIN_EXE_snapshot_lint");
    let out = Command::new(bin)
        .arg("--root")
        .arg(fixture("tree_bad"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "findings exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/wal/src/codec.rs:4: [panic_freedom]"),
        "human output carries file:line: {stdout}"
    );

    let out = Command::new(bin)
        .arg("--root")
        .arg(fixture("tree_good"))
        .arg("--json")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "clean tree exits 0");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "[]");

    let out = Command::new(bin)
        .arg("--root")
        .arg(fixture("tree_bad"))
        .arg("--json")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"rule\":\"cancel_marker\""));
    assert!(json.contains("\"line\":4"));
}
