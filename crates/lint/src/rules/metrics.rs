//! Rule `metric_hygiene`: metric names are snake_case, prefixed, unique
//! per kind, and documented.
//!
//! Registration sites are recognized syntactically:
//!
//! - `.counter("name")` / `.gauge(..)` / `.histogram(..)` /
//!   `.histogram_with(..)` / `.info(..)` with a literal first argument;
//! - the same with `&format!("engine_{op}_rows_total")` — the `{..}` hole
//!   becomes a wildcard, matched against `<..>` placeholders in the docs;
//! - `LazyCounter::new("name", ..)` / `LazyHistogram::new(..)`.
//!
//! Checks: names are `[a-z][a-z0-9_]*` with a known subsystem prefix; a
//! name is registered under at most one metric kind workspace-wide; every
//! registered name appears in the `docs/metrics.md` catalog and every
//! cataloged name resolves to a registration (both directions, so the doc
//! can neither rot nor pad); and every metric-shaped identifier cited in
//! backticks anywhere in `README.md` or `docs/*.md` resolves to a real
//! registration. A non-literal name outside the registry implementation
//! (`crates/obs/src/metrics.rs`, which hosts the forwarding internals) is
//! itself a finding: dynamic names defeat the doc cross-check.

use crate::lexer::Tok;
use crate::rules::Finding;
use crate::SourceFile;
use std::collections::BTreeMap;
use std::path::Path;

pub const RULE: &str = "metric_hygiene";

/// Registration methods on the registry (and their metric kind).
const METHODS: &[(&str, &str)] = &[
    ("counter", "counter"),
    ("gauge", "gauge"),
    ("histogram", "histogram"),
    ("histogram_with", "histogram"),
    ("info", "info"),
];

/// Lazy handle types whose `new` takes the metric name.
const LAZY_TYPES: &[(&str, &str)] = &[("LazyCounter", "counter"), ("LazyHistogram", "histogram")];

/// Allowed name prefixes, one per subsystem.
const PREFIXES: &[&str] = &[
    "snapshot_",
    "session_",
    "engine_",
    "txn_",
    "wal_",
    "index_",
    "server_",
    "statements_",
    "statement_",
    "slow_log_",
    "stmt_stats_",
];

/// Suffixes that make a backticked doc token "metric-shaped" for the
/// citation check.
const CITATION_SUFFIXES: &[&str] = &["_total", "_seconds", "_info", "_active"];

/// The registry implementation: the one place non-literal names are fine
/// (its internals forward already-validated names).
const REGISTRY_IMPL: &str = "crates/obs/src/metrics.rs";

struct Registration {
    /// Name with `{..}` holes normalized to the wildcard byte `*`.
    pattern: String,
    kind: &'static str,
    file: String,
    line: u32,
}

pub fn check(root: &Path, files: &[SourceFile], out: &mut Vec<Finding>) {
    let mut regs: Vec<Registration> = Vec::new();
    for file in files {
        collect_registrations(file, &mut regs, out);
    }

    // Shape and prefix checks.
    for r in &regs {
        if !well_formed(&r.pattern) {
            out.push(Finding {
                file: r.file.clone(),
                line: r.line,
                rule: RULE,
                message: format!(
                    "metric name `{}` is not snake_case (`[a-z][a-z0-9_]*`)",
                    display(&r.pattern)
                ),
            });
        } else if !PREFIXES.iter().any(|p| r.pattern.starts_with(p)) {
            out.push(Finding {
                file: r.file.clone(),
                line: r.line,
                rule: RULE,
                message: format!(
                    "metric name `{}` lacks a known subsystem prefix ({})",
                    display(&r.pattern),
                    PREFIXES.join(" ")
                ),
            });
        }
    }

    // Kind uniqueness: the same name must not register as two kinds.
    let mut kinds: BTreeMap<&str, (&Registration, &'static str)> = BTreeMap::new();
    for r in &regs {
        match kinds.get(r.pattern.as_str()) {
            Some(&(first, kind)) if kind != r.kind => {
                out.push(Finding {
                    file: r.file.clone(),
                    line: r.line,
                    rule: RULE,
                    message: format!(
                        "metric `{}` registered as {} here but as {} at {}:{}",
                        display(&r.pattern),
                        r.kind,
                        kind,
                        first.file,
                        first.line
                    ),
                });
            }
            Some(_) => {}
            None => {
                kinds.insert(&r.pattern, (r, r.kind));
            }
        }
    }

    // docs/metrics.md: bidirectional cross-check.
    let doc_rel = "docs/metrics.md";
    match std::fs::read_to_string(root.join(doc_rel)) {
        Err(e) => out.push(Finding {
            file: doc_rel.to_string(),
            line: 1,
            rule: RULE,
            message: format!("cannot read the metric catalog: {e}"),
        }),
        Ok(doc) => {
            let cataloged = catalog_names(&doc);
            let mut seen: Vec<&str> = Vec::new();
            for r in &regs {
                if seen.contains(&r.pattern.as_str()) {
                    continue;
                }
                seen.push(&r.pattern);
                if !cataloged
                    .iter()
                    .any(|(n, _)| n == &r.pattern || patterns_match(n, &r.pattern))
                {
                    out.push(Finding {
                        file: r.file.clone(),
                        line: r.line,
                        rule: RULE,
                        message: format!(
                            "metric `{}` is not cataloged in {doc_rel}",
                            display(&r.pattern)
                        ),
                    });
                }
            }
            for (name, line) in &cataloged {
                if !regs.iter().any(|r| patterns_match(&r.pattern, name)) {
                    out.push(Finding {
                        file: doc_rel.to_string(),
                        line: *line,
                        rule: RULE,
                        message: format!(
                            "cataloged metric `{}` has no registration in the source tree",
                            display(name)
                        ),
                    });
                }
            }
        }
    }

    // Citation check: metric-shaped backticked tokens in prose must exist.
    for doc_rel in doc_files(root) {
        let Ok(text) = std::fs::read_to_string(root.join(&doc_rel)) else {
            continue;
        };
        for (token, line) in backticked_tokens(&text) {
            let normalized = normalize(&token);
            let shaped = PREFIXES.iter().any(|p| normalized.starts_with(p))
                && CITATION_SUFFIXES.iter().any(|s| normalized.ends_with(s));
            if !shaped {
                continue;
            }
            if !regs.iter().any(|r| patterns_match(&r.pattern, &normalized)) {
                out.push(Finding {
                    file: doc_rel.clone(),
                    line,
                    rule: RULE,
                    message: format!("`{token}` looks like a metric name but nothing registers it"),
                });
            }
        }
    }
}

fn collect_registrations(file: &SourceFile, regs: &mut Vec<Registration>, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    let in_registry_impl = file.rel_path.ends_with(REGISTRY_IMPL);
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        // `.method("name", ..)` and the format! variant.
        if t.tok == Tok::Punct('.') {
            let Some(Tok::Ident(method)) = toks.get(i + 1).map(|t| &t.tok) else {
                continue;
            };
            let Some(&(_, kind)) = METHODS.iter().find(|(m, _)| m == method) else {
                continue;
            };
            if toks.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
                continue;
            }
            match name_argument(toks, i + 3) {
                Some((pattern, line)) => regs.push(Registration {
                    pattern,
                    kind,
                    file: file.rel_path.clone(),
                    line,
                }),
                None if in_registry_impl => {} // forwarding internals
                None => out.push(Finding {
                    file: file.rel_path.clone(),
                    line: t.line,
                    rule: RULE,
                    message: format!(
                        "`.{method}(..)` with a non-literal metric name; dynamic names \
                         defeat the docs/metrics.md cross-check (use a literal or \
                         `format!` with literal skeleton)"
                    ),
                }),
            }
            continue;
        }
        // `LazyCounter::new("name", ..)`.
        if let Tok::Ident(ty) = &t.tok {
            let Some(&(_, kind)) = LAZY_TYPES.iter().find(|(n, _)| n == ty) else {
                continue;
            };
            if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "new")
                && toks.get(i + 4).map(|t| &t.tok) == Some(&Tok::Punct('('))
            {
                if let Some((pattern, line)) = name_argument(toks, i + 5) {
                    regs.push(Registration {
                        pattern,
                        kind,
                        file: file.rel_path.clone(),
                        line,
                    });
                }
            }
        }
    }
}

/// Reads the metric-name argument starting at token `i`: a string literal,
/// or `&format!("...")` whose holes become wildcards. `None` = non-literal.
fn name_argument(toks: &[crate::lexer::Token], i: usize) -> Option<(String, u32)> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Str(s)) => Some((normalize_holes(s), toks[i].line)),
        Some(Tok::Punct('&')) => {
            if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "format")
                && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('!'))
                && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct('('))
            {
                if let Some(Tok::Str(s)) = toks.get(i + 4).map(|t| &t.tok) {
                    return Some((normalize_holes(s), toks[i + 4].line));
                }
            }
            None
        }
        _ => None,
    }
}

/// `engine_{op}_rows_total` → `engine_*_rows_total`.
fn normalize_holes(s: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// `engine_<op>_rows_total` (docs notation) → `engine_*_rows_total`.
fn normalize(s: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '<' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '>' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

fn display(pattern: &str) -> String {
    pattern.replace('*', "<..>")
}

/// Snake-case with optional wildcard segments.
fn well_formed(pattern: &str) -> bool {
    !pattern.is_empty()
        && pattern.starts_with(|c: char| c.is_ascii_lowercase())
        && pattern
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '*')
        && !pattern.contains("__")
}

/// True when `name` (a literal or another pattern) is described by
/// `pattern`. Two patterns match only if identical; a literal matches a
/// pattern if the `*`-separated segments appear in order at the ends.
fn patterns_match(pattern: &str, name: &str) -> bool {
    if pattern == name {
        return true;
    }
    if !pattern.contains('*') || name.contains('*') {
        return false;
    }
    let segments: Vec<&str> = pattern.split('*').collect();
    let (first, rest) = segments.split_first().unwrap_or((&"", &[]));
    let (last, middle) = rest.split_last().unwrap_or((&"", &[]));
    if !name.starts_with(first) || !name.ends_with(last) {
        return false;
    }
    if name.len() < first.len() + last.len() {
        return false;
    }
    let mut hay = &name[first.len()..name.len() - last.len()];
    for seg in middle {
        match hay.find(seg) {
            Some(pos) => hay = &hay[pos + seg.len()..],
            None => return false,
        }
    }
    true
}

/// Extracts backticked names from the catalog's table rows (first cell).
fn catalog_names(doc: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        let name_cell = cells[1];
        if let Some(name) = name_cell
            .strip_prefix('`')
            .and_then(|n| n.strip_suffix('`'))
        {
            if !name.is_empty() {
                out.push((normalize(name), idx as u32 + 1));
            }
        }
    }
    out
}

/// All backticked single-token code spans in a markdown file, with lines.
fn backticked_tokens(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let mut parts = line.split('`');
        parts.next(); // before the first backtick
        let mut inside = true;
        for part in parts {
            if inside
                && !part.is_empty()
                && part
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_<>".contains(c))
            {
                out.push((part.to_string(), idx as u32 + 1));
            }
            inside = !inside;
        }
    }
    out
}

/// `README.md` plus everything directly under `docs/`.
fn doc_files(root: &Path) -> Vec<String> {
    let mut out = vec!["README.md".to_string()];
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                if let Some(name) = path.file_name() {
                    out.push(format!("docs/{}", name.to_string_lossy()));
                }
            }
        }
    }
    out.sort();
    out
}
