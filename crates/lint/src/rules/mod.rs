//! The rule engine: each submodule implements one workspace invariant.
//!
//! Rules push [`Finding`]s into a shared vector; the driver in
//! [`crate::run`] applies `lint:allow` suppressions afterwards, so rules
//! only need to report what they see. Rule names (used in allow comments
//! and JSON output) are the module names: `panic_freedom`, `cancellation`,
//! `bare_lock`, `lock_order`, `metric_hygiene`, `cancel_marker`.

pub mod cancel_marker;
pub mod cancellation;
pub mod locks;
pub mod metrics;
pub mod panic_freedom;

/// One rule violation, anchored to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Scan-root-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule name, also the token accepted by `lint:allow(...)`.
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    /// The human-readable one-line form: `file:line: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}
