//! Rule `cancel_marker`: cancel errors have exactly one constructor.
//!
//! Cancellation is reported in-band as an error string, and several layers
//! (the session retry loop, the server, the tests) *classify* errors by
//! that marker. Classification via `snapshot_obs::is_cancel_error` is safe
//! only while construction stays centralized in `CancelToken::error()` —
//! a second construction site could drift (different casing, extra
//! context) and silently stop being classified.
//!
//! Outside `crates/obs/src/`, any non-test string literal containing the
//! marker text, and any use of the `CANCEL_ERROR_MARKER` identifier (which
//! only exists to be re-exported and classified against), is a finding.

use crate::lexer::Tok;
use crate::rules::Finding;
use crate::SourceFile;

pub const RULE: &str = "cancel_marker";

/// The marker text, assembled so this file does not itself contain the
/// banned literal (the lint scans its own sources).
const MARKER: &str = concat!("statement", " ", "cancelled");

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.rel_path.contains("crates/obs/src/") {
        return;
    }
    for t in &file.lexed.tokens {
        if t.in_test {
            continue;
        }
        match &t.tok {
            Tok::Str(s) if s.contains(MARKER) => out.push(Finding {
                file: file.rel_path.clone(),
                line: t.line,
                rule: RULE,
                message: format!(
                    "string literal contains the cancel marker \"{MARKER}\"; construct \
                     cancel errors only via CancelToken::error() and classify via \
                     snapshot_obs::is_cancel_error()"
                ),
            }),
            Tok::Ident(id) if id == "CANCEL_ERROR_MARKER" => out.push(Finding {
                file: file.rel_path.clone(),
                line: t.line,
                rule: RULE,
                message: "use snapshot_obs::is_cancel_error() instead of comparing against \
                          CANCEL_ERROR_MARKER directly"
                    .to_string(),
            }),
            _ => {}
        }
    }
}
