//! Rule `cancellation`: executor loops must poll the cancel token.
//!
//! Cooperative cancellation only works if every loop that can run long
//! reaches `CancelToken::check` (directly, via a helper that checks, or
//! via an enclosing loop that checks each iteration). This rule walks every
//! `for` / `while` / `loop` in the executor and the index join/sweep
//! kernels and demands one of:
//!
//! - the loop body (including nested calls to *local* functions, resolved
//!   to a fixpoint) contains a call to `check(..)` or to one of the known
//!   cancellation-propagating helpers;
//! - an enclosing loop in the same function is covered (the inner loop then
//!   runs at most once per checked iteration);
//! - a `// lint:allow(cancellation) reason` states why the loop is bounded.
//!
//! The rule is intraprocedural plus one level of local-call resolution; it
//! does not track closures by name. Tight bounded loops (per-row column
//! walks, key-arity loops) are exactly what the allow comment is for.

use crate::lexer::Tok;
use crate::rules::Finding;
use crate::SourceFile;
use std::collections::BTreeSet;
use std::ops::Range;

pub const RULE: &str = "cancellation";

const ZONES: &[&str] = &[
    "crates/engine/src/exec.rs",
    "crates/index/src/join.rs",
    "crates/index/src/parallel.rs",
];

/// Calls that count as reaching the token: `check` itself plus helpers
/// that are known to poll it internally (emitters and the sweep kernels).
const PROPAGATORS: &[&str] = &[
    "check",
    "emit",
    "consider",
    "sweep_join",
    "sweep_join_presorted",
    "try_sweep_join_presorted",
    "parallel_sweep_join",
    "try_parallel_sweep_join_presorted",
];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !ZONES.iter().any(|z| file.rel_path.ends_with(z)) {
        return;
    }
    let toks = &file.lexed.tokens;

    // Fixpoint over local functions: a function "checks" if its body calls
    // a propagator or another local function that checks.
    let fns = collect_fns(toks);
    let mut checking: BTreeSet<&str> = BTreeSet::new();
    for (name, body) in &fns {
        if calls_any(toks, body.clone(), PROPAGATORS) {
            checking.insert(name.as_str());
        }
    }
    loop {
        let names: Vec<&str> = checking.iter().copied().collect();
        let mut grew = false;
        for (name, body) in &fns {
            if !checking.contains(name.as_str()) && calls_any(toks, body.clone(), &names) {
                checking.insert(name.as_str());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let checking: Vec<&str> = checking.into_iter().collect();

    // Walk loops outermost-first; a covered ancestor covers its children.
    let mut stack: Vec<(usize, bool)> = Vec::new(); // (body end, covered)
    for lp in collect_loops(toks) {
        while stack.last().is_some_and(|&(end, _)| end <= lp.kw_index) {
            stack.pop();
        }
        let inherited = stack.iter().any(|&(_, covered)| covered);
        let own = calls_any(toks, lp.body.clone(), PROPAGATORS)
            || calls_any(toks, lp.body.clone(), &checking)
            || file.lexed.allowed(RULE, lp.line);
        if !own && !inherited {
            out.push(Finding {
                file: file.rel_path.clone(),
                line: lp.line,
                rule: RULE,
                message: format!(
                    "`{}` loop never reaches CancelToken::check; poll the token or add \
                     `// lint:allow({RULE}) <why bounded>`",
                    lp.keyword
                ),
            });
        }
        stack.push((lp.body.end, own || inherited));
    }
}

struct Loop {
    keyword: &'static str,
    kw_index: usize,
    line: u32,
    body: Range<usize>,
}

/// True when any token in `range` is a call `name(` with `name` in `names`.
fn calls_any(toks: &[crate::lexer::Token], range: Range<usize>, names: &[&str]) -> bool {
    let end = range.end.min(toks.len());
    for i in range.start..end {
        if let Tok::Ident(id) = &toks[i].tok {
            if names.contains(&id.as_str())
                && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
            {
                return true;
            }
        }
    }
    false
}

/// Finds `fn name ... { body }` items and returns their body token ranges.
fn collect_fns(toks: &[crate::lexer::Token]) -> Vec<(String, Range<usize>)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].tok == Tok::Ident("fn".into()) {
            if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                // Scan the signature for the body `{` (or `;` for decls).
                let mut j = i + 2;
                let mut depth = 0i32;
                let body_open = loop {
                    match toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => depth += 1,
                        Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
                        Some(Tok::Punct('{')) if depth == 0 => break Some(j),
                        Some(Tok::Punct(';')) if depth == 0 => break None,
                        None => break None,
                        _ => {}
                    }
                    j += 1;
                };
                if let Some(open) = body_open {
                    let close = matching_brace(toks, open);
                    out.push((name.clone(), open + 1..close));
                }
            }
        }
        i += 1;
    }
    out
}

/// Finds every `for`/`while`/`loop` outside test code, in source order.
fn collect_loops(toks: &[crate::lexer::Token]) -> Vec<Loop> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Tok::Ident(id) = &t.tok else { continue };
        let keyword: &'static str = match id.as_str() {
            "for" => "for",
            "while" => "while",
            "loop" => "loop",
            _ => continue,
        };
        // Find the body `{` at group depth 0 (skipping closure bodies in
        // the loop header, which sit inside parens).
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut saw_in = false;
        let open = loop {
            match toks.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => depth += 1,
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
                Some(Tok::Ident(w)) if depth == 0 && w == "in" => saw_in = true,
                Some(Tok::Punct('{')) if depth == 0 => break Some(j),
                Some(Tok::Punct(';')) if depth == 0 => break None,
                None => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        // `impl Trait for Type { .. }` also hits the `for` keyword: a real
        // for-loop always has `in` between the pattern and the body.
        if keyword == "for" && !saw_in {
            continue;
        }
        out.push(Loop {
            keyword,
            kw_index: i,
            line: t.line,
            body: open + 1..matching_brace(toks, open),
        });
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or EOF).
fn matching_brace(toks: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len()
}
