//! Rule `panic_freedom`: recovery and wire-protocol code must be total.
//!
//! The WAL decode path runs against whatever bytes survived a crash, and
//! the server's frame parser runs against whatever bytes a client sent. A
//! panic in either turns "corrupt input" into "database won't start" or
//! "connection thread dies without a response". Inside the zone files, any
//! non-test use of `.unwrap()` / `.expect(..)`, the panicking macros, or
//! `[...]` indexing on a value is a finding; fallible alternatives
//! (`get`, `strip_prefix`, `try_into`, pattern matching) always exist.
//!
//! `unwrap_or`, `unwrap_or_else`, `unwrap_or_default` are distinct
//! identifiers and therefore (correctly) not matched.

use crate::lexer::Tok;
use crate::rules::Finding;
use crate::SourceFile;

pub const RULE: &str = "panic_freedom";

/// Files where panics are forbidden (suffix-matched against the
/// scan-root-relative path, so fixture trees exercise the same list).
const ZONES: &[&str] = &[
    "crates/wal/src/codec.rs",
    "crates/wal/src/log.rs",
    "crates/wal/src/persistence.rs",
    "crates/wal/src/checkpoint.rs",
    "crates/wal/src/dump.rs",
    "crates/server/src/protocol.rs",
];

/// Keywords that legitimately precede `[` (array literals, not indexing).
const BEFORE_ARRAY_LITERAL: &[&str] = &[
    "in", "return", "if", "else", "match", "loop", "while", "for", "let", "mut", "ref", "move",
    "break", "continue", "as", "where", "do",
];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !ZONES.iter().any(|z| file.rel_path.ends_with(z)) {
        return;
    }
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match &t.tok {
            Tok::Ident(id)
                if (id == "unwrap" || id == "expect")
                    && i > 0
                    && toks[i - 1].tok == Tok::Punct('.') =>
            {
                out.push(Finding {
                    file: file.rel_path.clone(),
                    line: t.line,
                    rule: RULE,
                    message: format!(
                        "`.{id}()` in a panic-freedom zone; decode paths must be total \
                         (use `get`/`ok_or`/`match`)"
                    ),
                });
            }
            Tok::Ident(id)
                if matches!(
                    id.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(i + 1).map(|n| &n.tok) == Some(&Tok::Punct('!')) =>
            {
                out.push(Finding {
                    file: file.rel_path.clone(),
                    line: t.line,
                    rule: RULE,
                    message: format!("`{id}!` in a panic-freedom zone"),
                });
            }
            Tok::Punct('[') if indexes_a_value(file, i) => {
                out.push(Finding {
                    file: file.rel_path.clone(),
                    line: t.line,
                    rule: RULE,
                    message: "slice/array indexing can panic on corrupt input; use `.get(..)`"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

/// True when the `[` at `i` indexes a value: it directly follows an
/// expression-ending token (identifier, `)`, `]`, `?`) rather than opening
/// an array literal, attribute, or type.
fn indexes_a_value(file: &SourceFile, i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| file.lexed.tokens.get(p)) else {
        return false;
    };
    match &prev.tok {
        Tok::Ident(id) => !BEFORE_ARRAY_LITERAL.contains(&id.as_str()),
        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?') => true,
        _ => false,
    }
}
