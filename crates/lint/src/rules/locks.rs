//! Rules `bare_lock` and `lock_order`: all locking goes through the named,
//! ordered helpers.
//!
//! `bare_lock` flags any non-test `.lock()` / zero-argument `.read()` /
//! `.write()` outside `crates/obs/src/lock.rs` — those bypass both poison
//! recovery and the debug-build order tracker. New shared state must call
//! `snapshot_obs::lock::{lock,read,write}("declared.name", &cell)`.
//!
//! `lock_order` reads the rank table in `docs/lock_order.md` (the same
//! table `snapshot_obs::lock` embeds for its runtime checker) and checks
//! every *named* acquisition site: the name must be declared, and whenever
//! one acquisition is syntactically nested inside another's guard scope the
//! outer lock's rank must be strictly smaller. Because ranks form a total
//! order, any cycle necessarily contains an inverted edge, so checking
//! edges against the table is also the cycle check. Guard scopes are
//! tracked per block: a `let g = lock(..)` holds to the end of its
//! enclosing block (or an explicit `drop(g)`); a non-bound acquisition is
//! a temporary and releases immediately. Cross-function holds (a guard
//! passed into or returned from a helper) are the runtime checker's job.

use crate::lexer::Tok;
use crate::rules::Finding;
use crate::SourceFile;
use std::collections::BTreeMap;
use std::path::Path;

pub const BARE_RULE: &str = "bare_lock";
pub const ORDER_RULE: &str = "lock_order";

/// The one file allowed to call raw `Mutex`/`RwLock` methods: the helper
/// implementation itself.
const HELPER_IMPL: &str = "crates/obs/src/lock.rs";

pub fn check_bare(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.rel_path.ends_with(HELPER_IMPL) {
        return;
    }
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.tok != Tok::Punct('.') {
            continue;
        }
        let Some(Tok::Ident(method)) = toks.get(i + 1).map(|t| &t.tok) else {
            continue;
        };
        if !matches!(method.as_str(), "lock" | "read" | "write") {
            continue;
        }
        // Zero-argument call only: `.read()` on a File takes a buffer, and
        // `.write(buf)` is io::Write — both have arguments.
        if toks.get(i + 2).map(|t| &t.tok) != Some(&Tok::Punct('('))
            || toks.get(i + 3).map(|t| &t.tok) != Some(&Tok::Punct(')'))
        {
            continue;
        }
        // `io::stdout().lock()` and friends are fine: that lock is
        // process-stdio, not shared state, and cannot participate in the
        // declared order.
        let receiver_is_stdio = (1..=4).any(|back| {
            i.checked_sub(back)
                .and_then(|p| toks.get(p))
                .is_some_and(|t| {
                    matches!(&t.tok, Tok::Ident(id)
                             if matches!(id.as_str(), "stdin" | "stdout" | "stderr"))
                })
        });
        if receiver_is_stdio {
            continue;
        }
        out.push(Finding {
            file: file.rel_path.clone(),
            line: t.line,
            rule: BARE_RULE,
            message: format!(
                "raw `.{method}()` bypasses poison recovery and the lock-order tracker; \
                 use `snapshot_obs::lock::{method}(\"<declared.name>\", ..)`"
            ),
        });
    }
}

/// Parses the rank table out of `docs/lock_order.md`: rows shaped
/// `| <rank> | `name` | ... |`.
pub fn parse_ranks(doc: &str) -> BTreeMap<String, usize> {
    let mut ranks = BTreeMap::new();
    for line in doc.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        if let Ok(rank) = cells[1].parse::<usize>() {
            let name = cells[2].trim_matches('`');
            if !name.is_empty() {
                ranks.insert(name.to_string(), rank);
            }
        }
    }
    ranks
}

pub fn check_order(root: &Path, files: &[SourceFile], out: &mut Vec<Finding>) {
    let doc_path = root.join("docs/lock_order.md");
    let doc = match std::fs::read_to_string(&doc_path) {
        Ok(doc) => doc,
        Err(e) => {
            out.push(Finding {
                file: "docs/lock_order.md".to_string(),
                line: 1,
                rule: ORDER_RULE,
                message: format!("cannot read the declared lock order: {e}"),
            });
            return;
        }
    };
    let ranks = parse_ranks(&doc);
    if ranks.is_empty() {
        out.push(Finding {
            file: "docs/lock_order.md".to_string(),
            line: 1,
            rule: ORDER_RULE,
            message: "no rank table rows found (expected `| <rank> | `name` | ... |`)".to_string(),
        });
        return;
    }

    for file in files {
        check_file_order(file, &ranks, out);
    }
}

/// A lock currently held in the static scan of one file.
struct Held {
    name: String,
    /// The `let`-bound guard variable, if any (for `drop(g)` release).
    guard: Option<String>,
    /// Brace depth the binding lives at; leaving that block releases it.
    depth: i32,
}

fn check_file_order(file: &SourceFile, ranks: &BTreeMap<String, usize>, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    let mut depth = 0i32;
    let mut held: Vec<Held> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            // `drop(guard)` ends a hold early.
            Tok::Ident(id)
                if id == "drop"
                    && toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
                    && toks.get(i + 3).map(|t| &t.tok) == Some(&Tok::Punct(')')) =>
            {
                if let Some(Tok::Ident(g)) = toks.get(i + 2).map(|t| &t.tok) {
                    held.retain(|h| h.guard.as_deref() != Some(g.as_str()));
                }
            }
            Tok::Ident(id) if !t.in_test && matches!(id.as_str(), "lock" | "read" | "write") => {
                // Acquisition site: a path call through the helper module,
                // `…lock::{lock,read,write}("name", ..)`. Requiring the
                // `lock::` segment keeps `write!(..)`, `fs::write(..)` and
                // io method calls out of the picture; `bare_lock` is what
                // forces acquisitions into this shape in the first place.
                let qualified = i >= 3
                    && toks[i - 1].tok == Tok::Punct(':')
                    && toks[i - 2].tok == Tok::Punct(':')
                    && matches!(&toks[i - 3].tok, Tok::Ident(m) if m == "lock");
                if !qualified {
                    continue;
                }
                if toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
                    continue;
                }
                let Some(Tok::Str(name)) = toks.get(i + 2).map(|t| &t.tok) else {
                    continue;
                };
                let Some(&rank) = ranks.get(name) else {
                    out.push(Finding {
                        file: file.rel_path.clone(),
                        line: t.line,
                        rule: ORDER_RULE,
                        message: format!("lock `{name}` is not declared in docs/lock_order.md"),
                    });
                    continue;
                };
                for h in &held {
                    let outer = ranks.get(&h.name).copied().unwrap_or(usize::MAX);
                    if outer >= rank {
                        out.push(Finding {
                            file: file.rel_path.clone(),
                            line: t.line,
                            rule: ORDER_RULE,
                            message: format!(
                                "acquires `{name}` (rank {rank}) while holding `{}` \
                                 (rank {outer}); declared order requires strictly \
                                 increasing ranks",
                                h.name
                            ),
                        });
                    }
                }
                if let Some(guard) = let_binding_before(toks, i) {
                    held.push(Held {
                        name: name.clone(),
                        guard: Some(guard),
                        depth,
                    });
                }
                // Non-bound acquisitions are temporaries: the guard drops
                // at the end of the statement, so nothing stays held.
            }
            _ => {}
        }
    }
}

/// If the call at `call` (the `lock`/`read`/`write` ident) is the RHS of
/// `let [mut] g = path::to::call(..)`, returns `g`.
fn let_binding_before(toks: &[crate::lexer::Token], call: usize) -> Option<String> {
    // Walk back over the path qualifier: `obs :: lock :: lock` etc.
    let mut j = call;
    while j >= 2 && toks[j - 1].tok == Tok::Punct(':') && toks[j - 2].tok == Tok::Punct(':') {
        j -= 2;
        if j >= 1 && matches!(toks[j - 1].tok, Tok::Ident(_)) {
            j -= 1;
        }
    }
    // Optional `*` / `&` sigils between `=` and the path don't bind guards.
    if j < 3 || toks[j - 1].tok != Tok::Punct('=') {
        return None;
    }
    let Tok::Ident(g) = &toks[j - 2].tok else {
        return None;
    };
    let kw = |idx: usize| match toks.get(idx).map(|t| &t.tok) {
        Some(Tok::Ident(id)) => Some(id.as_str()),
        _ => None,
    };
    let is_let = kw(j - 3) == Some("let")
        || (kw(j - 3) == Some("mut") && j >= 4 && kw(j - 4) == Some("let"));
    if is_let && g != "_" {
        Some(g.clone())
    } else {
        None
    }
}
