//! CLI for `snapshot_lint`: `cargo run -p snapshot_lint [-- --json] [--root PATH]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. CI runs this as
//! a required gate (see `.github/workflows/ci.yml` and `docs/lint.md`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "snapshot_lint: workspace invariant checks (see docs/lint.md)\n\
                     \n\
                     usage: cargo run -p snapshot_lint [-- OPTIONS]\n\
                       --json        machine-readable output\n\
                       --root PATH   scan PATH instead of this workspace"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace this binary was built from (two levels up
    // from crates/lint).
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or(manifest)
    });

    let findings = match snapshot_lint::run(&root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("snapshot_lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", snapshot_lint::to_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            println!("snapshot_lint: clean");
        } else {
            println!(
                "snapshot_lint: {} finding(s) — fix them or add `// lint:allow(rule) reason`",
                findings.len()
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
