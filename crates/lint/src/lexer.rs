//! A lossless-enough Rust lexer for rule checking.
//!
//! This is not a full Rust lexer: it produces exactly the token stream the
//! rules in [`crate::rules`] need, and nothing more. What it must get right —
//! and what the fixture tests pin down — is the *boundaries*:
//!
//! - string/char literals (so `"a.unwrap()"` inside a string is not a call),
//!   including raw strings with any number of `#` guards and byte strings;
//! - nested block comments (`/* /* */ */` is one comment);
//! - lifetimes vs char literals (`'a>` is a lifetime, `'a'` is a char);
//! - raw identifiers (`r#type` is the identifier `type`, not a raw string);
//! - numeric literals that stop before `..` (so `0..n` lexes as a range);
//! - `#[test]` / `#[cfg(test)]` / `mod tests` regions, so rules can skip
//!   test-only code without understanding Rust semantics.
//!
//! Tokens carry their 1-based source line and an `in_test` flag. Line
//! comments are scanned for `lint:allow(rule)` escape hatches, which are
//! returned alongside the tokens.

/// One lexed token. Comments and whitespace are dropped (comments leave
/// [`Allow`] records behind); everything else becomes one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident(String),
    /// A lifetime such as `'a` (name stored without the quote).
    Lifetime(String),
    /// A char or byte literal; rules never need its value.
    Char,
    /// A string literal's *contents* (cooked, raw, or byte).
    Str(String),
    /// A numeric literal (digits/underscores/suffix, possibly a float).
    Num(String),
    /// Any single ASCII punctuation byte.
    Punct(char),
}

/// A token plus where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    /// 1-based source line of the token's first byte.
    pub line: u32,
    /// True when the token sits inside a `#[test]` / `#[cfg(test)]` item or
    /// a `mod tests` block.
    pub in_test: bool,
}

/// One `// lint:allow(rule) reason` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub line: u32,
    pub rule: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

impl LexedFile {
    /// True when `rule` is allowed for a finding on `line` — the allow
    /// comment may sit on the same line (trailing) or the line above.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Lexes `src`; never fails (unterminated literals just run to EOF).
pub fn lex(src: &str) -> LexedFile {
    let b = src.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (incl. doc comments): scan for lint:allow markers.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            record_allow(
                &String::from_utf8_lossy(&b[start..i]),
                line,
                &mut out.allows,
            );
            continue;
        }
        // Block comments nest in Rust.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let next = b.get(i).copied();
            if (word == "r" || word == "br") && matches!(next, Some(b'"') | Some(b'#')) {
                let mut hashes = 0usize;
                while b.get(i + hashes) == Some(&b'#') {
                    hashes += 1;
                }
                if b.get(i + hashes) == Some(&b'"') {
                    // Raw (byte) string: runs to `"` followed by `hashes` #s.
                    i += hashes + 1;
                    let content_start = i;
                    let start_line = line;
                    while i < b.len() {
                        if b[i] == b'"'
                            && b[i + 1..].len() >= hashes
                            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
                        {
                            break;
                        }
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    let content = String::from_utf8_lossy(&b[content_start..i.min(b.len())]);
                    push(&mut out.tokens, Tok::Str(content.into_owned()), start_line);
                    i = (i + 1 + hashes).min(b.len());
                } else if word == "r" && hashes == 1 {
                    // Raw identifier r#ident.
                    i += 1;
                    let id_start = i;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    push(
                        &mut out.tokens,
                        Tok::Ident(src[id_start..i].to_string()),
                        line,
                    );
                } else {
                    push(&mut out.tokens, Tok::Ident(word.to_string()), line);
                }
                continue;
            }
            if word == "b" && next == Some(b'"') {
                let start_line = line;
                let content = cooked_string(b, &mut i, &mut line);
                push(&mut out.tokens, Tok::Str(content), start_line);
                continue;
            }
            if word == "b" && next == Some(b'\'') {
                char_or_lifetime(b, &mut i, &mut line, &mut out.tokens);
                continue;
            }
            push(&mut out.tokens, Tok::Ident(word.to_string()), line);
            continue;
        }
        if c == b'"' {
            let start_line = line;
            let content = cooked_string(b, &mut i, &mut line);
            push(&mut out.tokens, Tok::Str(content), start_line);
            continue;
        }
        if c == b'\'' {
            char_or_lifetime(b, &mut i, &mut line, &mut out.tokens);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut seen_dot = false;
            while i < b.len() {
                let d = b[i];
                if d.is_ascii_alphanumeric() || d == b'_' {
                    i += 1;
                } else if d == b'.' && !seen_dot && b.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                {
                    // `1.5` is a float; `1..n` is a range — stop before `..`.
                    seen_dot = true;
                    i += 1;
                } else {
                    break;
                }
            }
            push(&mut out.tokens, Tok::Num(src[start..i].to_string()), line);
            continue;
        }
        if c < 0x80 {
            push(&mut out.tokens, Tok::Punct(c as char), line);
            i += 1;
            continue;
        }
        // Non-ASCII outside strings/comments (only legal in identifiers,
        // which this workspace does not use): skip the byte.
        i += 1;
    }
    mark_test_regions(&mut out.tokens);
    out
}

fn push(tokens: &mut Vec<Token>, tok: Tok, line: u32) {
    tokens.push(Token {
        tok,
        line,
        in_test: false,
    });
}

/// Consumes a cooked string starting at `*i` (the opening quote); returns
/// its contents with escapes left as written.
fn cooked_string(b: &[u8], i: &mut usize, line: &mut u32) -> String {
    *i += 1;
    let start = *i;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'"' => break,
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    let end = (*i).min(b.len());
    let content = String::from_utf8_lossy(&b[start..end]).into_owned();
    *i = end + 1; // past the closing quote (or EOF)
    content
}

/// Disambiguates `'a'` / `b'x'` / `'\n'` (char literals) from `'a` /
/// `'static` (lifetimes). `*i` points at the quote.
fn char_or_lifetime(b: &[u8], i: &mut usize, line: &mut u32, tokens: &mut Vec<Token>) {
    let quote = *i;
    let mut j = quote + 1;
    match b.get(j) {
        Some(b'\\') => j += 2, // escape: at least one more byte belongs to it
        Some(&c) if c < 0x80 => j += 1,
        Some(&c) => {
            // Multi-byte char literal like 'é': skip the UTF-8 sequence.
            j += utf8_len(c);
        }
        None => {
            *i = j;
            return;
        }
    }
    if b.get(j) == Some(&b'\'') {
        push(tokens, Tok::Char, *line);
        *i = j + 1;
        return;
    }
    let first = b.get(quote + 1).copied().unwrap_or(0);
    if first.is_ascii_alphabetic() || first == b'_' {
        // No closing quote right after one char: a lifetime.
        let mut k = quote + 1;
        while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
            k += 1;
        }
        let name = String::from_utf8_lossy(&b[quote + 1..k]).into_owned();
        push(tokens, Tok::Lifetime(name), *line);
        *i = k;
        return;
    }
    // Longer escape like '\u{1F600}': scan to the closing quote.
    while j < b.len() && b[j] != b'\'' {
        if b[j] == b'\n' {
            *line += 1;
        }
        j += 1;
    }
    push(tokens, Tok::Char, *line);
    *i = (j + 1).min(b.len());
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

fn record_allow(comment: &str, line: u32, allows: &mut Vec<Allow>) {
    let marker = "lint:allow(";
    if let Some(pos) = comment.find(marker) {
        let rest = &comment[pos + marker.len()..];
        if let Some(end) = rest.find(')') {
            allows.push(Allow {
                line,
                rule: rest[..end].trim().to_string(),
            });
        }
    }
}

/// Flags every token inside a test-only region.
///
/// A region opens at the `{` that follows either an attribute whose tokens
/// include `test` (e.g. `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]` —
/// but not `#[cfg(not(test))]`) or the item header `mod tests`, and closes
/// at its matching `}`. A `;` at paren/bracket depth 0 before any `{`
/// cancels the pending attribute (covers `#[cfg(test)] use ...;`).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut brace_depth = 0i32;
    let mut group_depth = 0i32; // () and [] nesting
    let mut regions: Vec<i32> = Vec::new(); // brace depth each region opened at
    let mut pending = false;
    let mut i = 0usize;
    while i < tokens.len() {
        if matches!(tokens[i].tok, Tok::Punct('#')) {
            let mut j = i + 1;
            if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                j += 1;
            }
            if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
                let mut depth = 0i32;
                let mut has_test = false;
                let mut has_not = false;
                let mut k = j;
                while k < tokens.len() {
                    match &tokens[k].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(id) if id == "test" => has_test = true,
                        Tok::Ident(id) if id == "not" => has_not = true,
                        _ => {}
                    }
                    k += 1;
                }
                if has_test && !has_not {
                    pending = true;
                }
                let in_test = !regions.is_empty();
                let upto = tokens.len().min(k + 1);
                for t in tokens.iter_mut().take(upto).skip(i) {
                    t.in_test = in_test;
                }
                i = k + 1;
                continue;
            }
        }
        if let Tok::Ident(id) = &tokens[i].tok {
            if id == "mod"
                && matches!(tokens.get(i + 1).map(|t| &t.tok),
                            Some(Tok::Ident(name)) if name == "tests")
            {
                pending = true;
            }
        }
        match &tokens[i].tok {
            Tok::Punct('{') => {
                if pending {
                    regions.push(brace_depth);
                    pending = false;
                }
                brace_depth += 1;
            }
            Tok::Punct('}') => {
                brace_depth -= 1;
                if regions.last() == Some(&brace_depth) {
                    regions.pop();
                }
            }
            Tok::Punct('(') | Tok::Punct('[') => group_depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => group_depth -= 1,
            Tok::Punct(';') if group_depth == 0 => pending = false,
            _ => {}
        }
        tokens[i].in_test = !regions.is_empty();
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRICKY: &str = include_str!("../fixtures/lexer/tricky.rs");

    fn idents(f: &LexedFile) -> Vec<&str> {
        f.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes_are_single_tokens() {
        let f = lex(r####"let x = r#"an "unwrap()" inside"#; call();"####);
        let strs: Vec<_> = f
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![r#"an "unwrap()" inside"#]);
        assert!(idents(&f).contains(&"call"));
        assert!(
            !idents(&f).contains(&"unwrap"),
            "string contents must not leak"
        );
    }

    #[test]
    fn raw_identifiers_are_identifiers_not_strings() {
        let f = lex("let r#type = 1; let r = 2;");
        assert!(idents(&f).contains(&"type"));
        assert!(f.tokens.iter().all(|t| !matches!(t.tok, Tok::Str(_))));
    }

    #[test]
    fn nested_block_comments_are_skipped_entirely() {
        let f = lex("a /* x /* y.unwrap() */ z */ b");
        assert_eq!(idents(&f), vec!["a", "b"]);
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let f = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = f
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            f.tokens.iter().filter(|t| t.tok == Tok::Char).count(),
            1,
            "one char literal"
        );
        let f = lex(r"let c = '\n'; let s = '\u{1F600}';");
        assert_eq!(f.tokens.iter().filter(|t| t.tok == Tok::Char).count(), 2);
    }

    #[test]
    fn numbers_stop_before_range_dots() {
        let f = lex("for i in 0..n { x[1.5 as usize]; }");
        let nums: Vec<_> = f
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "1.5"]);
    }

    #[test]
    fn lines_track_through_multiline_strings_and_comments() {
        let f = lex("a\n\"two\nline\"\n/* c\nc */\nb");
        let a = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("a".into()))
            .unwrap();
        let b = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 6);
    }

    #[test]
    fn allow_comments_are_recorded_and_matched() {
        let f = lex("// lint:allow(cancellation) bounded by arity\nfor x in y {}\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "cancellation");
        assert_eq!(f.allows[0].line, 1);
        assert!(f.allowed("cancellation", 2), "line-above allow applies");
        assert!(f.allowed("cancellation", 1), "same-line allow applies");
        assert!(!f.allowed("cancellation", 3));
        assert!(!f.allowed("panic_freedom", 2), "rule names must match");
    }

    #[test]
    fn test_regions_cover_mod_tests_and_test_attrs() {
        let f = lex(TRICKY);
        let unwraps: Vec<(u32, bool)> = f
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Ident("unwrap".into()))
            .map(|t| (t.line, t.in_test))
            .collect();
        // tricky.rs places one unwrap in production code and two in test code.
        assert_eq!(unwraps.iter().filter(|(_, t)| !t).count(), 1);
        assert_eq!(unwraps.iter().filter(|(_, t)| *t).count(), 2);
    }

    #[test]
    fn cfg_not_test_stays_production_and_cfg_test_use_clears_pending() {
        let f = lex("#[cfg(not(test))]\nfn p() { a.unwrap(); }\n#[cfg(test)]\nuse x;\nfn q() { b.unwrap(); }");
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Ident("unwrap".into()))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, false]);
    }

    #[test]
    fn array_type_in_signature_does_not_cancel_test_attr() {
        let f = lex("#[test]\nfn f(x: [u8; 4]) { g.unwrap(); }");
        let t = f
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unwrap".into()))
            .unwrap();
        assert!(
            t.in_test,
            "`;` inside `[u8; 4]` must not clear the pending attr"
        );
    }
}
