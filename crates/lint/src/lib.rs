//! `snapshot_lint`: workspace-invariant static analysis.
//!
//! The workspace has invariants `rustc` and `clippy` cannot see — recovery
//! decoders must never panic, locks must be taken in the declared order of
//! `docs/lock_order.md`, long-running executor loops must poll the
//! cancellation token, metric names must follow the naming scheme and stay
//! in sync with `docs/metrics.md`, and cancel errors must be constructed in
//! exactly one place. This crate enforces them with a purpose-built lexer
//! ([`lexer`]) and a set of token-level rules ([`rules`]), run over the
//! workspace's own sources by `cargo run -p snapshot_lint` (a required CI
//! gate; see `docs/lint.md`).
//!
//! Rules are deliberately syntactic: no type information, no macro
//! expansion. That keeps them fast, dependency-free, and predictable — and
//! it means every rule ships with an escape hatch
//! (`// lint:allow(rule) reason`) for the cases the syntax-level view gets
//! wrong. The escape hatch is part of the design: an allow comment is a
//! reviewable artifact, a silent false negative is not.

pub mod lexer;
pub mod rules;

pub use rules::Finding;

use std::fs;
use std::path::{Path, PathBuf};

/// One workspace source file, lexed and ready for rule checking.
pub struct SourceFile {
    /// Path relative to the scan root, always with `/` separators.
    pub rel_path: String,
    pub lexed: lexer::LexedFile,
}

/// Collects and lexes every Rust source under `root` that the rules cover:
/// `crates/*/src/**/*.rs` plus the root package's `src/**/*.rs`. Crate
/// `tests/`, `benches/`, `shims/`, and anything under a `fixtures/`
/// directory are out of scope (integration tests and benches may panic and
/// poll nothing; fixtures are deliberately full of violations).
pub fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    if root.join("src").is_dir() {
        dirs.push(root.join("src"));
    }
    if dirs.is_empty() {
        return Err(format!("no crate sources found under {}", root.display()));
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for dir in dirs {
        walk(&dir, &mut files)?;
    }
    files.sort();

    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>();
        if rel.iter().any(|c| c == "fixtures") {
            continue;
        }
        let rel_path = rel.join("/");
        let src = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        out.push(SourceFile {
            rel_path,
            lexed: lexer::lex(&src),
        });
    }
    Ok(out)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Runs every rule over the workspace at `root` and returns the surviving
/// findings (allow comments already applied), sorted by file then line.
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let files = collect_sources(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    for file in &files {
        rules::panic_freedom::check(file, &mut findings);
        rules::cancellation::check(file, &mut findings);
        rules::locks::check_bare(file, &mut findings);
        rules::cancel_marker::check(file, &mut findings);
    }
    rules::locks::check_order(root, &files, &mut findings);
    rules::metrics::check(root, &files, &mut findings);

    findings.retain(|f| {
        !files
            .iter()
            .any(|s| s.rel_path == f.file && s.lexed.allowed(f.rule, f.line))
    });
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Renders findings as a JSON array (stable key order, no dependencies).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
