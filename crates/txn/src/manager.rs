//! The transaction manager: shared committed state, snapshot handout, and
//! the serialized first-committer-wins commit path.

use crate::snapshot::CatalogSnapshot;
use crate::transaction::Transaction;
use index::IndexCatalog;
use snapshot_obs::{self as obs, LazyCounter, LazyHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;
use storage::{Catalog, Table};

/// Transaction-manager telemetry. The histograms split the commit path
/// into its contended pieces — mutex wait, validation, publication — and
/// time the snapshot handout (the `O(#tables)` Arc-bump under the state
/// read lock that ROADMAP suspects in the flat multi-reader throughput).
static SNAPSHOTS: LazyCounter = LazyCounter::new("txn_snapshots_total");
static SNAPSHOT_SECONDS: LazyHistogram = LazyHistogram::new("txn_snapshot_seconds");
static COMMITS: LazyCounter = LazyCounter::new("txn_commits_total");
static CONFLICTS: LazyCounter = LazyCounter::new("txn_conflicts_total");
static ROLLBACKS: LazyCounter = LazyCounter::new("txn_rollbacks_total");
static COMMIT_WAIT_SECONDS: LazyHistogram = LazyHistogram::new("txn_commit_wait_seconds");
static VALIDATE_SECONDS: LazyHistogram = LazyHistogram::new("txn_validate_seconds");
static PUBLISH_SECONDS: LazyHistogram = LazyHistogram::new("txn_publish_seconds");

/// The committed state: what a new snapshot pins.
#[derive(Debug)]
struct Committed {
    catalog: Catalog,
    indexes: IndexCatalog,
    commit_seq: u64,
}

/// What a successful commit published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The commit sequence number this transaction became (snapshots with
    /// `commit_seq >= this` see its writes).
    pub commit_seq: u64,
    /// Tables published (write-set size; `0` for a read-only commit, which
    /// does not consume a sequence number).
    pub published: usize,
}

/// The shared transaction manager over one committed catalog.
///
/// Concurrency model — snapshot isolation with a single-writer commit
/// path:
///
/// * **Readers never block.** [`TxnManager::begin`] and
///   [`TxnManager::snapshot`] take the state read-lock only long enough to
///   `Arc`-bump every table (`O(#tables)`); they never wait on a writer's
///   *work*, only on the equally short publish swap.
/// * **Writers never disturb readers.** A transaction's writes go to its
///   private copy-on-write working catalog; publication swaps `Arc`
///   handles in the committed catalog, so a pinned snapshot keeps the old
///   tables bit-for-bit.
/// * **Commits are serialized and validated.** The commit lock admits one
///   committer at a time; under it, every write-set table is checked
///   *first-committer-wins*: if its committed version epoch differs from
///   the epoch the transaction pinned at `BEGIN`, a concurrent transaction
///   committed it first and this one is refused (version epochs are
///   globally unique, so a drop-and-recreate look-alike can never slip
///   through). Plain reads are not validated — this is snapshot isolation,
///   not serializability: write skew is admitted, lost updates are not.
///   Recorded *replay dependencies* ([`Transaction::record_read`], e.g.
///   `INSERT ... SELECT` sources) do join validation, so the logical WAL
///   replays every logged statement deterministically.
/// * **Durability slots in between.** The callback passed to
///   [`TxnManager::commit_with`] runs after validation and before
///   publication, still under the commit lock — the write-ahead log
///   receives only committable units, in commit order, and a unit that
///   fails to log aborts the commit with the committed state untouched.
#[derive(Debug)]
pub struct TxnManager {
    state: RwLock<Committed>,
    /// Held for the whole validate → log → publish sequence.
    commit_lock: Mutex<()>,
    next_txn_id: AtomicU64,
}

/// First-committer-wins validation of `txn` against `committed`: every
/// conflict-set table (written, or read as a replay dependency) must still
/// carry the version epoch the transaction pinned at `BEGIN`. Version
/// epochs are globally unique, so a drop-and-recreate look-alike can never
/// slip through. Shared by [`TxnManager::commit_with`] and the session
/// layer's owned-database commit path.
pub fn validate_first_committer_wins(txn: &Transaction, committed: &Catalog) -> Result<(), String> {
    for name in txn.conflict_set() {
        let now = committed.get(name).map(Table::version);
        let pinned = txn.snapshot().catalog().get(name).map(Table::version);
        if now != pinned {
            return Err(format!(
                "{CONFLICT_ERROR_MARKER} on table '{name}': a concurrent transaction \
                 committed it first (first-committer-wins) — rollback and retry"
            ));
        }
    }
    Ok(())
}

/// The stable prefix of every first-committer-wins refusal (errors are
/// plain strings throughout this workspace, so the class marker lives in
/// the text).
const CONFLICT_ERROR_MARKER: &str = "write-write conflict";

/// Whether an error is the manager's first-committer-wins conflict
/// refusal — the *retryable* failure class: the transaction lost a race,
/// nothing about the statement itself is invalid, and re-running it over
/// a fresh snapshot may well succeed. Everything else (validation errors,
/// durability failures) is not retryable.
pub fn is_conflict_error(error: &str) -> bool {
    error.contains(CONFLICT_ERROR_MARKER)
}

/// Publishes a validated transaction's write set from its `working`
/// catalog into `catalog`/`indexes`: written tables swap in by `Arc`
/// handle (no row copying), dropped ones leave, and the published tables'
/// indexes are repaired (incremental when the writes were pure appends) so
/// the next reader finds them fresh. Shared by
/// [`TxnManager::commit_with`] and the owned-database commit path.
pub fn publish_write_set<'a>(
    working: &Catalog,
    write_set: impl Iterator<Item = &'a str>,
    catalog: &mut Catalog,
    indexes: &mut IndexCatalog,
) {
    let names: Vec<&str> = write_set.collect();
    for name in &names {
        match working.get_shared(name) {
            Some(table) => catalog.register_shared(name.to_string(), table.clone()),
            None => {
                catalog.remove(name);
                indexes.remove(name);
            }
        }
    }
    for name in &names {
        if let Some(table) = catalog.get(name) {
            indexes.ensure(name, table);
        }
    }
}

impl TxnManager {
    /// A manager over an initial catalog (indexes are built lazily).
    pub fn new(catalog: Catalog, indexes: IndexCatalog) -> Self {
        TxnManager {
            state: RwLock::new(Committed {
                catalog,
                indexes,
                commit_seq: 0,
            }),
            commit_lock: Mutex::new(()),
            next_txn_id: AtomicU64::new(1),
        }
    }

    // Poisoning only happens when a thread panicked mid-operation; the
    // committed state is swapped atomically (publication builds the new
    // handles before touching the guard), so the data is still consistent —
    // the obs::lock helpers recover the guard instead of cascading panics
    // through every session, and enforce `docs/lock_order.md` in debug.
    fn read_state(&self) -> obs::ReadGuard<'_, Committed> {
        obs::lock::read("txn.state", &self.state)
    }

    fn write_state(&self) -> obs::WriteGuard<'_, Committed> {
        obs::lock::write("txn.state", &self.state)
    }

    fn lock_commits(&self) -> obs::LockGuard<'_, ()> {
        obs::lock::lock("txn.commit", &self.commit_lock)
    }

    /// Pins a snapshot of the current committed state.
    pub fn snapshot(&self) -> CatalogSnapshot {
        let _span = obs::Span::enter("txn.snapshot");
        let started = Instant::now();
        let state = self.read_state();
        let snap = CatalogSnapshot::new(
            state.catalog.clone(),
            state.indexes.clone(),
            state.commit_seq,
        );
        drop(state);
        SNAPSHOTS.inc();
        SNAPSHOT_SECONDS.observe_duration(started.elapsed());
        snap
    }

    /// Opens a transaction over a freshly pinned snapshot.
    pub fn begin(&self) -> Transaction {
        let id = self.next_txn_id.fetch_add(1, Ordering::Relaxed);
        Transaction::begin(id, self.snapshot())
    }

    /// The current commit sequence number.
    pub fn commit_seq(&self) -> u64 {
        self.read_state().commit_seq
    }

    /// Commits a transaction: validate (first-committer-wins), make
    /// durable, publish. `durability` receives the buffered statement
    /// texts and is called only for validated, non-read-only commits; an
    /// `Err` from it aborts the commit with the committed state untouched.
    pub fn commit_with<F>(&self, txn: Transaction, durability: F) -> Result<CommitOutcome, String>
    where
        F: FnOnce(&[String]) -> Result<(), String>,
    {
        if txn.is_read_only() {
            // Nothing to validate, log, or publish; the snapshot simply
            // unpins. (Statements cannot have been buffered: only writes
            // are.)
            let commit_seq = txn.snapshot().commit_seq();
            return Ok(CommitOutcome {
                commit_seq,
                published: 0,
            });
        }
        let _span = obs::Span::enter("txn.commit");
        let wait_started = Instant::now();
        let _commit = self.lock_commits();
        COMMIT_WAIT_SECONDS.observe_duration(wait_started.elapsed());
        // Validate against the committed state *now*. The commit lock
        // keeps it stable through publication; concurrent `begin`s only
        // read.
        {
            let _span = obs::Span::enter("txn.validate");
            let validate_started = Instant::now();
            let state = self.read_state();
            let verdict = validate_first_committer_wins(&txn, &state.catalog);
            VALIDATE_SECONDS.observe_duration(validate_started.elapsed());
            if let Err(e) = verdict {
                CONFLICTS.inc();
                return Err(e);
            }
        }
        let (_, working, write_set, statements) = txn.into_parts();
        durability(&statements)?;
        // Publish: swap the written tables' Arc handles into the committed
        // catalog and repair their committed indexes, so later snapshots
        // pin fresh entries.
        let _pspan = obs::Span::enter("txn.publish");
        let publish_started = Instant::now();
        let mut guard = self.write_state();
        let state = &mut *guard;
        publish_write_set(
            &working,
            write_set.iter().map(String::as_str),
            &mut state.catalog,
            &mut state.indexes,
        );
        state.commit_seq += 1;
        PUBLISH_SECONDS.observe_duration(publish_started.elapsed());
        COMMITS.inc();
        Ok(CommitOutcome {
            commit_seq: state.commit_seq,
            published: write_set.len(),
        })
    }

    /// Rolls a transaction back. The committed state was never touched, so
    /// this only drops the working catalog — kept as an explicit method
    /// because "rollback is free" is an API promise worth naming. Counted
    /// in `txn_rollbacks_total` (explicit `ROLLBACK` statements and
    /// cancellation unwinds both land here).
    pub fn rollback(&self, txn: Transaction) {
        ROLLBACKS.inc();
        drop(txn);
    }

    /// Runs `f` over the committed catalog and index registry (a consistent
    /// read view; prefer [`TxnManager::snapshot`] for anything that
    /// outlives the call).
    pub fn with_committed<R>(&self, f: impl FnOnce(&Catalog, &IndexCatalog) -> R) -> R {
        let state = self.read_state();
        f(&state.catalog, &state.indexes)
    }

    /// Runs `f` over the committed catalog with the *commit path locked
    /// out* — the checkpointing entry point. A checkpoint must not run
    /// between a commit's WAL append and its publication: it would cover
    /// the commit's LSNs (and reset the log) while snapshotting a catalog
    /// that does not yet contain the commit, losing an acknowledged
    /// transaction on recovery. Under the commit lock, every unit in the
    /// WAL is also in the catalog `f` sees.
    ///
    /// Lock order: commit lock, then state read lock, then whatever `f`
    /// takes — the same order as the commit path, so callers may lock
    /// their durability state inside `f`.
    pub fn with_committed_serialized<R>(&self, f: impl FnOnce(&Catalog, &IndexCatalog) -> R) -> R {
        let _commit = self.lock_commits();
        let state = self.read_state();
        f(&state.catalog, &state.indexes)
    }

    /// Installs tables wholesale into the committed state (the bulk-load
    /// path, which has no statement form): serialized against commits,
    /// published as one commit. Concurrent transactions that wrote any of
    /// these tables will fail their commit validation — exactly as if the
    /// load were a competing transaction that committed first.
    pub fn install_tables<I>(&self, tables: I) -> CommitOutcome
    where
        I: IntoIterator<Item = (String, Table)>,
    {
        let _commit = self.lock_commits();
        let mut guard = self.write_state();
        let state = &mut *guard;
        let mut published = 0;
        for (name, table) in tables {
            state.indexes.remove(&name);
            state.catalog.register(name, table);
            published += 1;
        }
        state.commit_seq += 1;
        CommitOutcome {
            commit_seq: state.commit_seq,
            published,
        }
    }

    /// Repairs the committed indexes of the named tables (every table when
    /// `None`) — the shared analogue of a session's explicit `.index`
    /// refresh. Readers that pinned older snapshots are unaffected.
    pub fn refresh_committed_indexes(&self, tables: Option<&[String]>) {
        let mut guard = self.write_state();
        let state = &mut *guard;
        let names: Vec<String> = match tables {
            Some(ts) => ts.to_vec(),
            None => state.catalog.table_names().map(String::from).collect(),
        };
        for name in &names {
            if let Some(table) = state.catalog.get(name) {
                state.indexes.ensure(name, table);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{row, Schema, SqlType};

    fn works_table() -> Table {
        let schema = Schema::of(&[
            ("name", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let mut t = Table::with_period(schema, 1, 2);
        t.push(row!["Ann", 3, 10]);
        t.push(row!["Joe", 8, 16]);
        t
    }

    fn manager() -> TxnManager {
        let mut catalog = Catalog::new();
        catalog.register("works", works_table());
        TxnManager::new(catalog, IndexCatalog::new())
    }

    #[test]
    fn snapshot_is_immune_to_later_commits() {
        let mgr = manager();
        let reader = mgr.snapshot();
        let v_pinned = reader.catalog().get("works").unwrap().version();

        let mut txn = mgr.begin();
        txn.catalog_mut()
            .get_mut("works")
            .unwrap()
            .push(row!["Sam", 1, 4]);
        txn.record_write("works");
        mgr.commit_with(txn, |_| Ok(())).unwrap();

        // The committed state moved on; the pinned snapshot did not.
        assert_eq!(mgr.snapshot().catalog().get("works").unwrap().len(), 3);
        assert_eq!(reader.catalog().get("works").unwrap().len(), 2);
        assert_eq!(reader.catalog().get("works").unwrap().version(), v_pinned);
    }

    #[test]
    fn transaction_reads_its_own_writes_only() {
        let mgr = manager();
        let mut txn = mgr.begin();
        txn.catalog_mut()
            .get_mut("works")
            .unwrap()
            .push(row!["Sam", 1, 4]);
        txn.record_write("works");
        assert_eq!(txn.catalog().get("works").unwrap().len(), 3);
        // Uncommitted: invisible to fresh snapshots.
        assert_eq!(mgr.snapshot().catalog().get("works").unwrap().len(), 2);
        mgr.rollback(txn);
        assert_eq!(mgr.snapshot().catalog().get("works").unwrap().len(), 2);
    }

    #[test]
    fn first_committer_wins_on_write_write_conflict() {
        let mgr = manager();
        let mut a = mgr.begin();
        let mut b = mgr.begin();
        a.catalog_mut()
            .get_mut("works")
            .unwrap()
            .push(row!["A", 1, 2]);
        a.record_write("works");
        b.catalog_mut()
            .get_mut("works")
            .unwrap()
            .push(row!["B", 1, 2]);
        b.record_write("works");

        mgr.commit_with(a, |_| Ok(())).unwrap();
        let err = mgr.commit_with(b, |_| Ok(())).unwrap_err();
        assert!(err.contains("write-write conflict"), "{err}");
        // The winner's row is there; the loser's never lands.
        let state = mgr.snapshot();
        let names: Vec<String> = state
            .catalog()
            .get("works")
            .unwrap()
            .rows()
            .iter()
            .map(|r| r.get(0).to_string())
            .collect();
        assert!(names.contains(&"'A'".to_string()) || names.iter().any(|n| n.contains('A')));
        assert!(!names.iter().any(|n| n.contains('B')));
    }

    #[test]
    fn disjoint_write_sets_commit_concurrently() {
        let mgr = manager();
        let mut a = mgr.begin();
        let mut b = mgr.begin();
        a.catalog_mut().register("a_new", works_table());
        a.record_write("a_new");
        b.catalog_mut().register("b_new", works_table());
        b.record_write("b_new");
        mgr.commit_with(a, |_| Ok(())).unwrap();
        mgr.commit_with(b, |_| Ok(())).unwrap();
        let snap = mgr.snapshot();
        assert!(snap.catalog().get("a_new").is_some());
        assert!(snap.catalog().get("b_new").is_some());
    }

    #[test]
    fn create_create_and_drop_races_conflict() {
        let mgr = manager();
        // Both create the same table.
        let mut a = mgr.begin();
        let mut b = mgr.begin();
        a.catalog_mut().register("t", works_table());
        a.record_write("t");
        b.catalog_mut().register("t", works_table());
        b.record_write("t");
        mgr.commit_with(a, |_| Ok(())).unwrap();
        assert!(mgr.commit_with(b, |_| Ok(())).is_err());

        // Drop racing an insert: the insert commits first, the drop (which
        // pinned the pre-insert version) must conflict.
        let mut ins = mgr.begin();
        let mut drp = mgr.begin();
        ins.catalog_mut()
            .get_mut("works")
            .unwrap()
            .push(row!["X", 1, 2]);
        ins.record_write("works");
        drp.catalog_mut().remove("works");
        drp.record_write("works");
        mgr.commit_with(ins, |_| Ok(())).unwrap();
        assert!(mgr.commit_with(drp, |_| Ok(())).is_err());
        assert!(mgr.snapshot().catalog().get("works").is_some());
    }

    #[test]
    fn durability_failure_aborts_before_publication() {
        let mgr = manager();
        let mut txn = mgr.begin();
        txn.catalog_mut()
            .get_mut("works")
            .unwrap()
            .push(row!["X", 1, 2]);
        txn.record_write("works");
        txn.push_statement("INSERT INTO works VALUES ('X', 1, 2)".into());
        let err = mgr
            .commit_with(txn, |stmts| {
                assert_eq!(stmts.len(), 1);
                Err("disk on fire".into())
            })
            .unwrap_err();
        assert!(err.contains("disk on fire"));
        assert_eq!(mgr.snapshot().catalog().get("works").unwrap().len(), 2);
        assert_eq!(mgr.commit_seq(), 0);
    }

    #[test]
    fn read_only_commit_is_free_and_skips_durability() {
        let mgr = manager();
        let txn = mgr.begin();
        let outcome = mgr
            .commit_with(txn, |_| panic!("durability must not run"))
            .unwrap();
        assert_eq!(outcome.published, 0);
        assert_eq!(mgr.commit_seq(), 0);
    }

    #[test]
    fn committed_indexes_are_refreshed_on_publish() {
        let mgr = manager();
        mgr.refresh_committed_indexes(None);
        let before = mgr.snapshot();
        let works = before.catalog().get("works").unwrap();
        assert!(before.indexes().get_fresh("works", works).is_some());

        let mut txn = mgr.begin();
        txn.catalog_mut()
            .get_mut("works")
            .unwrap()
            .push(row!["Sam", 1, 4]);
        txn.record_write("works");
        mgr.commit_with(txn, |_| Ok(())).unwrap();

        let after = mgr.snapshot();
        let works = after.catalog().get("works").unwrap();
        assert!(
            after.indexes().get_fresh("works", works).is_some(),
            "publish repairs the committed index for the new version"
        );
    }

    #[test]
    fn install_tables_competes_like_a_committed_transaction() {
        let mgr = manager();
        let mut txn = mgr.begin();
        txn.catalog_mut()
            .get_mut("works")
            .unwrap()
            .push(row!["X", 1, 2]);
        txn.record_write("works");
        // A bulk load replaces the table while the transaction is open.
        mgr.install_tables(vec![("works".to_string(), works_table())]);
        assert!(mgr.commit_with(txn, |_| Ok(())).is_err());
    }
}
