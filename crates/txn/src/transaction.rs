//! Transactions: a pinned snapshot plus a private working catalog.

use crate::snapshot::CatalogSnapshot;
use index::IndexCatalog;
use std::collections::BTreeSet;
use storage::Catalog;

/// One open transaction under snapshot isolation.
///
/// Reads see the transaction's *working* catalog: a copy-on-write clone of
/// the pinned snapshot that receives this transaction's own writes (so the
/// transaction reads its own writes, and nobody else reads them). Writes
/// additionally enter the *write set* — the table names whose identity
/// this transaction changed — which [`crate::TxnManager::commit_with`]
/// validates first-committer-wins against the committed state, and the
/// *statement buffer* — the SQL texts the session layer logs as one atomic
/// WAL commit unit on commit.
///
/// Dropping a transaction (or explicit rollback) is the undo: the
/// committed state was never touched, so discarding the working catalog
/// restores exactly the pinned snapshot's world.
#[derive(Debug)]
pub struct Transaction {
    id: u64,
    snapshot: CatalogSnapshot,
    working: Catalog,
    working_indexes: IndexCatalog,
    write_set: BTreeSet<String>,
    /// Tables whose *contents* a logged statement depends on without
    /// writing them — today the source tables of `INSERT ... SELECT`.
    /// They join conflict validation so the logical WAL replays the
    /// statement deterministically (see
    /// [`crate::manager::validate_first_committer_wins`]).
    read_set: BTreeSet<String>,
    statements: Vec<String>,
}

impl Transaction {
    /// Opens a transaction over a pinned snapshot (use
    /// [`crate::TxnManager::begin`] for the shared, managed path).
    pub fn begin(id: u64, snapshot: CatalogSnapshot) -> Self {
        let working = snapshot.catalog().clone();
        let working_indexes = snapshot.indexes().clone();
        Transaction {
            id,
            snapshot,
            working,
            working_indexes,
            write_set: BTreeSet::new(),
            read_set: BTreeSet::new(),
            statements: Vec::new(),
        }
    }

    /// The transaction id (process-unique, diagnostic).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The snapshot pinned at `BEGIN` — the state this transaction's reads
    /// are based on and conflicts are validated against.
    pub fn snapshot(&self) -> &CatalogSnapshot {
        &self.snapshot
    }

    /// The working catalog: the pinned snapshot plus this transaction's
    /// own writes.
    pub fn catalog(&self) -> &Catalog {
        &self.working
    }

    /// The working catalog, mutably — the DML/DDL entry point. Callers
    /// must also [`Transaction::record_write`] every table they change;
    /// the borrow is split so validation helpers can hold the catalog
    /// while deciding.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.working
    }

    /// The working index registry (repaired lazily before indexed reads).
    pub fn indexes(&self) -> &IndexCatalog {
        &self.working_indexes
    }

    /// Marks `name` as written by this transaction (created, dropped, or
    /// mutated): it joins the write set for conflict validation and
    /// publication.
    pub fn record_write(&mut self, name: &str) {
        self.write_set.insert(name.to_string());
        // A written table's pinned index is stale by definition; drop it
        // from the working registry so a later read in this transaction
        // repairs against the working table, not the snapshot's.
        // (`ensure` would detect the staleness anyway — this just keeps
        // dropped tables from lingering.)
        if self.working.get(name).is_none() {
            self.working_indexes.remove(name);
        }
    }

    /// Marks `name` as a *replay dependency*: a logged statement of this
    /// transaction reads it without writing it (an `INSERT ... SELECT`
    /// source). It joins conflict validation — without this, the
    /// statement's WAL replay could see a different source state than the
    /// transaction's snapshot did.
    pub fn record_read(&mut self, name: &str) {
        self.read_set.insert(name.to_string());
    }

    /// Buffers one executed statement's text for the WAL commit unit.
    pub fn push_statement(&mut self, sql: String) {
        self.statements.push(sql);
    }

    /// The buffered statement texts, in execution order.
    pub fn statements(&self) -> &[String] {
        &self.statements
    }

    /// Tables written by this transaction, sorted.
    pub fn write_set(&self) -> impl Iterator<Item = &str> {
        self.write_set.iter().map(String::as_str)
    }

    /// Every table whose pinned state this transaction's outcome depends
    /// on: the write set plus the recorded replay dependencies, sorted and
    /// deduplicated.
    pub fn conflict_set(&self) -> impl Iterator<Item = &str> {
        self.write_set.union(&self.read_set).map(String::as_str)
    }

    /// Whether the transaction has written nothing (commit is a no-op).
    pub fn is_read_only(&self) -> bool {
        self.write_set.is_empty()
    }

    /// Repairs the working indexes of the named tables against the working
    /// catalog (the transaction-local analogue of
    /// [`CatalogSnapshot::refresh_indexes`]).
    pub fn refresh_indexes(&mut self, tables: &[String]) {
        for name in tables {
            if let Some(table) = self.working.get(name) {
                self.working_indexes.ensure(name, table);
            }
        }
    }

    /// Decomposes the transaction for publication: `(snapshot, working
    /// catalog, write set, statements)`.
    pub(crate) fn into_parts(self) -> (CatalogSnapshot, Catalog, BTreeSet<String>, Vec<String>) {
        (self.snapshot, self.working, self.write_set, self.statements)
    }
}
