//! MVCC concurrency subsystem: multi-version catalog snapshots,
//! snapshot-isolation transactions, and the transaction manager.
//!
//! The paper's snapshot-reducibility result (Theorem 5.4 and the
//! point-wise semantics of Definition 4.4) means a sequenced query is
//! fully determined by one consistent state of its input relations — so a
//! reader that pins a *catalog snapshot* and never sees anything else is
//! already correct under bag semantics. Multi-version concurrency control
//! hands out exactly that for free:
//!
//! * [`CatalogSnapshot`] — a consistent, immutable point-in-version view
//!   of the whole catalog plus its index registry. Cloning a
//!   [`storage::Catalog`] is an `O(#tables)` `Arc` bump (PR 4 made tables
//!   copy-on-write), so pinning is cheap and readers never block writers,
//!   and writers never disturb readers.
//! * [`Transaction`] — a pinned snapshot plus a private copy-on-write
//!   *working* catalog that receives the transaction's own writes (it
//!   reads its own writes; nobody else does), the write set, and the
//!   statement texts to log as one WAL commit unit.
//! * [`TxnManager`] — `begin`/`commit`/`rollback` over a shared committed
//!   state. Commits are serialized (single-writer commit path) and
//!   validated *first-committer-wins*: a transaction whose write set
//!   overlaps a table that changed identity (its globally unique
//!   [`storage::Table::version`] epoch) since the transaction began is
//!   refused. Rollback is trivial — the committed state was never touched,
//!   dropping the working catalog *is* the snapshot restore.
//!
//! The subsystem is storage-level by design: it never parses SQL and never
//! touches the write-ahead log directly. The session layer
//! (`snapshot_session`) drives statements into transactions and passes a
//! durability callback into [`TxnManager::commit_with`], which is invoked
//! under the commit lock, after conflict validation and before publication
//! — the WAL sees only committable units, and a unit that fails to reach
//! the log aborts cleanly.

pub mod manager;
pub mod snapshot;
pub mod transaction;

pub use manager::{
    is_conflict_error, publish_write_set, validate_first_committer_wins, CommitOutcome, TxnManager,
};
pub use snapshot::CatalogSnapshot;
pub use transaction::Transaction;
