//! Pinned catalog snapshots: the consistent read view of a transaction.

use index::IndexCatalog;
use storage::Catalog;

/// A consistent, immutable view of the catalog (and its index registry) as
/// of one commit sequence number.
///
/// Pinning is cheap: tables and index bundles live behind `Arc`, so the
/// snapshot is an `O(#tables)` handle copy. Whatever later writers commit,
/// the pinned tables — identified by their globally unique version epochs
/// — stay alive and bit-for-bit unchanged until the snapshot drops.
///
/// The *index* view is lazily repairable: committed indexes may lag the
/// committed tables (maintenance is lazy everywhere in this system), so a
/// reader about to run an indexed query calls
/// [`CatalogSnapshot::refresh_indexes`] on its own pinned registry. The
/// repair is private to the snapshot — version epochs guarantee a repaired
/// entry exactly matches the pinned table, never a newer committed one.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    catalog: Catalog,
    indexes: IndexCatalog,
    commit_seq: u64,
}

impl CatalogSnapshot {
    /// Pins a snapshot of `catalog`/`indexes` at `commit_seq`.
    pub fn new(catalog: Catalog, indexes: IndexCatalog, commit_seq: u64) -> Self {
        CatalogSnapshot {
            catalog,
            indexes,
            commit_seq,
        }
    }

    /// The pinned catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The pinned index registry.
    pub fn indexes(&self) -> &IndexCatalog {
        &self.indexes
    }

    /// The commit sequence number this snapshot reflects: every commit
    /// published up to (and including) this one, nothing after.
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// Repairs the pinned indexes of the named tables against the pinned
    /// catalog (incremental after pure appends, full rebuild otherwise —
    /// see [`IndexCatalog::ensure`]). Unknown and non-temporal names are
    /// skipped.
    pub fn refresh_indexes(&mut self, tables: &[String]) {
        for name in tables {
            if let Some(table) = self.catalog.get(name) {
                self.indexes.ensure(name, table);
            }
        }
    }
}
