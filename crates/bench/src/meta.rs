//! The common metadata header of the `BENCH_*.json` summaries.
//!
//! Every bench emitter used to hand-roll its own preamble, so the files
//! disagreed about what environment facts they recorded (only
//! `parallel_join` reported the hardware thread count, none reported the
//! `SNAPSHOT_PARALLELISM` setting). [`BenchMeta`] renders one shared
//! header — bench name, hardware threads, configured parallelism, and the
//! bench's own workload parameters — that every emitter embeds at the top
//! of its JSON object, so downstream tooling can always join results on
//! the same keys.

use std::fmt::Display;

/// Builder for the shared `BENCH_*.json` header.
///
/// ```
/// use bench_harness::meta::BenchMeta;
/// let header = BenchMeta::new("txn")
///     .param("read_rows", 4000)
///     .param("queries_per_thread", 8)
///     .render();
/// assert!(header.starts_with("  \"bench\": \"txn\""));
/// assert!(header.contains("\"hardware_threads\""));
/// ```
#[derive(Debug, Clone)]
pub struct BenchMeta {
    bench: &'static str,
    params: Vec<(String, String)>,
}

impl BenchMeta {
    /// A header for the named bench. Hardware thread count and the
    /// effective `SNAPSHOT_PARALLELISM` setting are captured here, so
    /// every emitter reports them identically.
    pub fn new(bench: &'static str) -> Self {
        BenchMeta {
            bench,
            params: Vec::new(),
        }
    }

    /// Adds a numeric (or otherwise raw-JSON) workload parameter.
    pub fn param(mut self, key: &str, value: impl Display) -> Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a string workload parameter (JSON-quoted).
    pub fn param_str(mut self, key: &str, value: &str) -> Self {
        self.params
            .push((key.to_string(), format!("\"{}\"", value.replace('"', "'"))));
        self
    }

    /// Renders the header lines (2-space indent, no trailing comma or
    /// newline) for embedding right after the opening `{`:
    ///
    /// ```json
    ///   "bench": "txn",
    ///   "hardware_threads": 8,
    ///   "parallelism": 1,
    ///   "workload": {"read_rows": 4000}
    /// ```
    pub fn render(&self) -> String {
        let workload = self
            .params
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "  \"bench\": \"{}\",\n  \"hardware_threads\": {},\n  \
             \"parallelism\": {},\n  \"workload\": {{{workload}}}",
            self.bench,
            hardware_threads(),
            configured_parallelism(),
        )
    }
}

/// One worker per hardware thread (what `--parallelism 0` resolves to).
pub fn hardware_threads() -> usize {
    engine::resolve_parallelism(0)
}

/// The parallelism a default session would run with: the
/// `SNAPSHOT_PARALLELISM` environment variable (0 = hardware threads),
/// or 1 (sequential) when unset — the same convention as the session
/// layer and CI.
pub fn configured_parallelism() -> usize {
    std::env::var("SNAPSHOT_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(engine::resolve_parallelism)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_has_all_common_keys() {
        let h = BenchMeta::new("example")
            .param("rows", 42)
            .param_str("query", "SEQ VT (SELECT 1)")
            .render();
        assert!(h.contains("\"bench\": \"example\""));
        assert!(h.contains("\"hardware_threads\": "));
        assert!(h.contains("\"parallelism\": "));
        assert!(h.contains("\"workload\": {\"rows\": 42, \"query\": \"SEQ VT (SELECT 1)\"}"));
        assert!(!h.ends_with('\n'));
    }

    #[test]
    fn header_embeds_as_valid_json_prefix() {
        let json = format!(
            "{{\n{},\n  \"extra\": 1\n}}\n",
            BenchMeta::new("x").render()
        );
        // Structural sanity without a JSON parser: balanced braces, every
        // line is key: value.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"extra\": 1"));
    }
}
