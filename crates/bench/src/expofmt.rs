//! Line-format checker for the Prometheus text exposition produced by
//! `snapshot_obs::MetricsRegistry::render_text` (and dumped by the
//! shell's `.metrics`).
//!
//! Not a full parser — just enough structure to fail CI when the
//! exposition format regresses: every sample line must be
//! `name[{labels}] value`, every sampled series must belong to a
//! preceding `# TYPE` declaration (with the `_bucket`/`_sum`/`_count`
//! suffix convention for histograms), histogram buckets must be
//! cumulative in `le` order, and the `+Inf` bucket must equal `_count`.

use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// Checks one exposition dump; `Err` carries the first offending line.
pub fn check_exposition(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, Kind> = HashMap::new();
    // Per-histogram bucket state: (last le bound, last cumulative count,
    // +Inf cumulative count).
    let mut buckets: HashMap<String, (f64, f64, Option<f64>)> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let fail = |msg: &str| Err(format!("line {}: {msg}: {line}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let words: Vec<&str> = rest.split_whitespace().collect();
            if words.first() == Some(&"TYPE") {
                let [_, name, kind] = words[..] else {
                    return fail("malformed # TYPE comment");
                };
                let kind = match kind {
                    "counter" => Kind::Counter,
                    "gauge" => Kind::Gauge,
                    "histogram" => Kind::Histogram,
                    _ => return fail("unknown metric kind"),
                };
                if !is_metric_name(name) {
                    return fail("invalid metric name");
                }
                types.insert(name.to_string(), kind);
            }
            continue;
        }
        // Sample line: name[{labels}] value.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line}", lineno + 1))?;
        let value: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) => return fail("value is not a number"),
        };
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => match rest.strip_suffix('}') {
                Some(labels) => (n, Some(labels)),
                None => return fail("unterminated label set"),
            },
            None => (series, None),
        };
        if !is_metric_name(name) {
            return fail("invalid metric name");
        }
        // Resolve the declared family: exact name, or base + histogram
        // suffix.
        let (family, kind) = match types.get(name) {
            Some(kind) => (name.to_string(), *kind),
            None => {
                let base = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"));
                match base.and_then(|b| types.get(b).map(|k| (b.to_string(), *k))) {
                    Some((b, Kind::Histogram)) => (b, Kind::Histogram),
                    _ => return fail("sample without a preceding # TYPE"),
                }
            }
        };
        if kind == Kind::Histogram && name.ends_with("_bucket") {
            let le = parse_le(labels.unwrap_or("")).ok_or_else(|| {
                format!("line {}: _bucket without an le label: {line}", lineno + 1)
            })?;
            let entry = buckets
                .entry(family.clone())
                .or_insert((f64::MIN, 0.0, None));
            if le <= entry.0 {
                return fail("bucket bounds not increasing");
            }
            if value < entry.1 {
                return fail("bucket counts not cumulative");
            }
            *entry = (
                le,
                value,
                if le.is_infinite() {
                    Some(value)
                } else {
                    entry.2
                },
            );
        }
        if kind == Kind::Histogram && name.ends_with("_count") {
            counts.insert(family, value);
        }
    }
    for (family, (_, _, inf)) in &buckets {
        let Some(inf) = inf else {
            return Err(format!("histogram {family}: no +Inf bucket"));
        };
        match counts.get(family) {
            Some(c) if c == inf => {}
            Some(c) => {
                return Err(format!(
                    "histogram {family}: +Inf bucket {inf} != _count {c}"
                ))
            }
            None => return Err(format!("histogram {family}: no _count sample")),
        }
    }
    Ok(())
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn is_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// The `le` bound from a label set like `le="0.001"` (or `le="+Inf"`).
fn parse_le(labels: &str) -> Option<f64> {
    for pair in labels.split(',') {
        let (key, value) = pair.split_once('=')?;
        if key.trim() != "le" {
            continue;
        }
        let value = value.trim().trim_matches('"');
        return if value == "+Inf" {
            Some(f64::INFINITY)
        } else {
            value.parse().ok()
        };
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_real_registry_output() {
        let reg = snapshot_obs::MetricsRegistry::new();
        reg.counter("expofmt_test_total").add(3);
        reg.gauge("expofmt_test_gauge").set(-2);
        let h = reg.histogram("expofmt_test_seconds");
        for v in [0.0001, 0.002, 0.03, 10_000.0] {
            h.observe(v);
        }
        let text = reg.render_text();
        check_exposition(&text).unwrap();
    }

    #[test]
    fn rejects_undeclared_sample() {
        let err = check_exposition("mystery_total 5\n").unwrap_err();
        assert!(err.contains("# TYPE"), "{err}");
    }

    #[test]
    fn rejects_non_numeric_value() {
        let text = "# TYPE x counter\nx five\n";
        assert!(check_exposition(text).is_err());
    }

    #[test]
    fn rejects_non_cumulative_buckets() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"0.1\"} 5\n\
                    h_bucket{le=\"1\"} 3\n\
                    h_bucket{le=\"+Inf\"} 3\n\
                    h_sum 1\nh_count 3\n";
        let err = check_exposition(text).unwrap_err();
        assert!(err.contains("cumulative"), "{err}");
    }

    #[test]
    fn rejects_inf_count_mismatch() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"0.1\"} 5\n\
                    h_bucket{le=\"+Inf\"} 5\n\
                    h_sum 1\nh_count 6\n";
        let err = check_exposition(text).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }
}
