//! Shared machinery for the benchmark harness.
//!
//! The `paper_tables` binary and the criterion benches both run snapshot
//! queries through the three evaluation routes of the paper's experiments:
//!
//! * **Seq** — our middleware: SQL → bind → `REWR` → engine (the paper's
//!   PG-Seq / DBX-Seq / DBY-Seq, distinguished here by engine join strategy
//!   and rewrite options),
//! * **Nat** — the native-style baselines (alignment ≈ PG-Nat,
//!   interval preservation ≈ ATSQL), paired with final coalescing as in
//!   Section 10,
//! * **Oracle** — the point-wise ground truth, used to fill the bug columns
//!   experimentally (small scales only).

pub mod expofmt;
pub mod meta;

use baseline::{BaselineKind, NativeEvaluator, PointwiseOracle};
use engine::{Engine, EngineConfig, JoinStrategy};
use index::IndexCatalog;
use rewrite::{RewriteOptions, SnapshotCompiler};
use sql::{bind_statement, parse_statement, BoundStatement};
use storage::{Catalog, Table};
use timeline::TimeDomain;

/// An evaluation route for a snapshot query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Our rewriting with hash joins (PG-Seq / DBY-Seq analogue).
    SeqHash,
    /// Our rewriting with the merge interval join (DBX-Seq analogue).
    SeqMerge,
    /// Our rewriting over table indexes: endpoint-sweep joins and the
    /// coalescing accelerator of the `index` crate (Timeline-Index-style).
    SeqIndex,
    /// Temporal alignment baseline (PG-Nat analogue).
    NatAlignment,
    /// Interval preservation baseline (ATSQL/DBX-Nat analogue).
    NatIntervalPreservation,
}

impl Approach {
    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            Approach::SeqHash => "Seq (hash)",
            Approach::SeqMerge => "Seq (merge)",
            Approach::SeqIndex => "Seq (index)",
            Approach::NatAlignment => "Nat-Align",
            Approach::NatIntervalPreservation => "Nat-IP",
        }
    }

    /// All approaches, in table order.
    pub fn all() -> [Approach; 5] {
        [
            Approach::SeqHash,
            Approach::SeqMerge,
            Approach::SeqIndex,
            Approach::NatAlignment,
            Approach::NatIntervalPreservation,
        ]
    }
}

/// Parses and binds a statement.
pub fn bind_snapshot(sql_text: &str, catalog: &Catalog) -> Result<BoundStatement, String> {
    let stmt = parse_statement(sql_text)?;
    bind_statement(&stmt, catalog)
}

/// Runs one snapshot query through an approach, returning the result table.
pub fn run_approach(
    approach: Approach,
    sql_text: &str,
    catalog: &Catalog,
    domain: TimeDomain,
    options: RewriteOptions,
) -> Result<Table, String> {
    let bound = bind_snapshot(sql_text, catalog)?;
    match approach {
        Approach::SeqHash | Approach::SeqMerge => {
            let strategy = if approach == Approach::SeqMerge {
                JoinStrategy::MergeInterval
            } else {
                JoinStrategy::Hash
            };
            let compiler = SnapshotCompiler::with_options(domain, options);
            let plan = compiler.compile_statement(&bound, catalog)?;
            Engine::with_config(EngineConfig {
                join_strategy: strategy,
                ..EngineConfig::default()
            })
            .execute(&plan, catalog)
        }
        Approach::SeqIndex => {
            // Index build cost is included here; benches that want to
            // amortize it across queries should use [`run_indexed`] with a
            // prebuilt registry.
            let indexes = IndexCatalog::build_all(catalog);
            run_indexed(&bound, catalog, &indexes, domain, options)
        }
        Approach::NatAlignment | Approach::NatIntervalPreservation => {
            let BoundStatement::Snapshot { plan, .. } = &bound else {
                return Err("native approaches only evaluate snapshot queries".into());
            };
            let kind = if approach == Approach::NatAlignment {
                BaselineKind::Alignment
            } else {
                BaselineKind::IntervalPreservation
            };
            NativeEvaluator::new(kind).eval(plan, catalog)
        }
    }
}

/// Runs one bound snapshot statement through the rewriting with a prebuilt
/// table index registry: the engine dispatches overlap joins to the
/// endpoint sweep and coalescing to the accelerator wherever indexes apply.
pub fn run_indexed(
    bound: &BoundStatement,
    catalog: &Catalog,
    indexes: &IndexCatalog,
    domain: TimeDomain,
    options: RewriteOptions,
) -> Result<Table, String> {
    let compiler = SnapshotCompiler::with_options(domain, options);
    let plan = compiler.compile_statement(bound, catalog)?;
    Engine::new().execute_indexed(&plan, catalog, indexes)
}

/// Runs the point-wise oracle (small domains only) returning `PERIODENC`
/// rows.
pub fn run_oracle(
    sql_text: &str,
    catalog: &Catalog,
    domain: TimeDomain,
) -> Result<Vec<storage::Row>, String> {
    let bound = bind_snapshot(sql_text, catalog)?;
    let BoundStatement::Snapshot { plan, .. } = &bound else {
        return Err("oracle only evaluates snapshot queries".into());
    };
    PointwiseOracle::new(domain).eval_rows(plan, catalog)
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Minimal fixed-width text table for harness output.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.lines().next().map(str::len).unwrap_or(8)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Employee workload runs end-to-end on every approach at a
    /// small scale, and the two Seq variants agree exactly.
    #[test]
    fn employee_workload_runs_on_all_approaches() {
        let catalog = datagen::employees::generate(0.0005, 42);
        let domain = datagen::employees::domain();
        for (name, sql_text) in datagen::employees::queries() {
            let reference = run_approach(
                Approach::SeqHash,
                sql_text,
                &catalog,
                domain,
                RewriteOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{name} (SeqHash) failed: {e}"))
            .canonicalized();
            let merge = run_approach(
                Approach::SeqMerge,
                sql_text,
                &catalog,
                domain,
                RewriteOptions::default(),
            )
            .unwrap()
            .canonicalized();
            assert_eq!(reference.rows(), merge.rows(), "{name}: hash vs merge");
            let indexed = run_approach(
                Approach::SeqIndex,
                sql_text,
                &catalog,
                domain,
                RewriteOptions::default(),
            )
            .unwrap()
            .canonicalized();
            assert_eq!(reference.rows(), indexed.rows(), "{name}: hash vs index");
            for nat in [Approach::NatAlignment, Approach::NatIntervalPreservation] {
                run_approach(nat, sql_text, &catalog, domain, RewriteOptions::default())
                    .unwrap_or_else(|e| panic!("{name} ({nat:?}) failed: {e}"));
            }
        }
    }

    /// The TPC-BiH workload binds, compiles, and runs at a tiny scale.
    #[test]
    fn tpcbih_workload_runs() {
        let catalog = datagen::tpcbih::generate(0.0002, 7);
        let domain = datagen::tpcbih::domain();
        for (name, sql_text) in datagen::tpcbih::queries() {
            let out = run_approach(
                Approach::SeqHash,
                sql_text,
                &catalog,
                domain,
                RewriteOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            // Q5/Q7/Q8 filter on nation pairs and can legitimately come up
            // empty at this tiny scale; everything else must produce rows.
            if !matches!(name, "Q5" | "Q7" | "Q8") {
                assert!(!out.is_empty(), "{name} returned no rows");
            }
        }
    }

    #[test]
    fn text_table_renders() {
        let mut t = TextTable::new(&["query", "time"]);
        t.row(vec!["join-1".into(), "0.5".into()]);
        let s = t.render();
        assert!(s.contains("join-1"));
        assert!(s.contains("query"));
    }
}
