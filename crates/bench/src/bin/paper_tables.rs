//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! paper_tables [table1|table2|table3|table3-tpch|figure5|ablation|all]
//!              [--employee-scale S] [--tpch-sf S1,S2] [--check-scale S]
//! ```
//!
//! Absolute numbers depend on the host; the reproduction targets are the
//! *shapes* reported in Section 10: who wins per query class, the bug
//! column, and the linear scaling of multiset coalescing.

use bench_harness::{run_approach, run_oracle, timed, Approach, TextTable};
use engine::coalesce::coalesce_rows;
use rewrite::RewriteOptions;
use snapshot_core::TemporalElement;
use std::collections::HashMap;
use storage::Catalog;
use timeline::TimeDomain;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = "all".to_string();
    let mut employee_scale = 0.005f64;
    let mut tpch_sfs = vec![0.002f64, 0.01f64];
    let mut check_scale = 0.0005f64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--employee-scale" => {
                i += 1;
                employee_scale = args[i].parse().expect("bad --employee-scale");
            }
            "--tpch-sf" => {
                i += 1;
                tpch_sfs = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("bad --tpch-sf"))
                    .collect();
            }
            "--check-scale" => {
                i += 1;
                check_scale = args[i].parse().expect("bad --check-scale");
            }
            cmd => command = cmd.to_string(),
        }
        i += 1;
    }

    match command.as_str() {
        "table1" => table1(),
        "table2" => table2(employee_scale, &tpch_sfs),
        "table3" => table3(employee_scale, check_scale),
        "table3-tpch" => table3_tpch(&tpch_sfs),
        "figure5" => figure5(),
        "ablation" => ablation(employee_scale),
        "all" => {
            table1();
            table2(employee_scale, &tpch_sfs);
            table3(employee_scale, check_scale);
            table3_tpch(&tpch_sfs);
            figure5();
            ablation(employee_scale);
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!(
                "usage: paper_tables [table1|table2|table3|table3-tpch|figure5|ablation|all]"
            );
            std::process::exit(2);
        }
    }
}

/// The Figure 1 database, used by Table 1.
fn figure1_catalog() -> (Catalog, TimeDomain) {
    use storage::{row, Schema, SqlType, Table};
    let works = Schema::of(&[
        ("name", SqlType::Str),
        ("skill", SqlType::Str),
        ("ts", SqlType::Int),
        ("te", SqlType::Int),
    ]);
    let assign = Schema::of(&[
        ("mach", SqlType::Str),
        ("skill", SqlType::Str),
        ("ts", SqlType::Int),
        ("te", SqlType::Int),
    ]);
    let mut w = Table::with_period(works, 2, 3);
    w.push(row!["Ann", "SP", 3, 10]);
    w.push(row!["Joe", "NS", 8, 16]);
    w.push(row!["Sam", "SP", 8, 16]);
    w.push(row!["Ann", "SP", 18, 20]);
    let mut a = Table::with_period(assign, 2, 3);
    a.push(row!["M1", "SP", 3, 12]);
    a.push(row!["M2", "SP", 6, 14]);
    a.push(row!["M3", "NS", 3, 16]);
    let mut c = Catalog::new();
    c.register("works", w);
    c.register("assign", a);
    (c, TimeDomain::new(0, 24))
}

/// Table 1: approach × {AG-bug-free, BD-bug-free, unique encoding},
/// determined experimentally on the Figure 1 queries.
fn table1() {
    println!("\n== Table 1: interval-based approaches (checked experimentally) ==\n");
    let (catalog, domain) = figure1_catalog();
    let agg_q = "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
    let diff_q = "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)";
    let agg_oracle = run_oracle(agg_q, &catalog, domain).unwrap();
    let diff_oracle = run_oracle(diff_q, &catalog, domain).unwrap();

    let mut table = TextTable::new(&["Approach", "AG bug free", "BD bug free", "Unique encoding"]);
    for approach in Approach::all() {
        let agg =
            run_approach(approach, agg_q, &catalog, domain, RewriteOptions::default()).unwrap();
        let diff = run_approach(
            approach,
            diff_q,
            &catalog,
            domain,
            RewriteOptions::default(),
        )
        .unwrap();
        let ag_free = baseline::bugs::diff_against_oracle(
            agg.rows(),
            &agg_oracle,
            agg.schema().arity(),
            domain,
        )
        .is_clean();
        let bd_free = baseline::bugs::diff_against_oracle(
            diff.rows(),
            &diff_oracle,
            diff.schema().arity(),
            domain,
        )
        .is_clean();
        let unique = encoding_unique_for(approach);
        table.row(vec![
            approach.name().to_string(),
            tick(ag_free),
            tick(bd_free),
            tick(unique),
        ]);
    }
    println!("{}", table.render());
}

/// Checks the unique-encoding property: equivalent input encodings must
/// yield byte-identical outputs. Native approaches are tested *without*
/// the final coalescing patch (their own semantics).
fn encoding_unique_for(approach: Approach) -> bool {
    use storage::{row, Schema, SqlType, Table};
    let q = "SEQ VT (SELECT name FROM works)";
    let domain = TimeDomain::new(0, 24);
    let mk = |split: bool| {
        let schema = Schema::of(&[
            ("name", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let mut w = Table::with_period(schema, 2, 3);
        if split {
            w.push(row!["Ann", "SP", 3, 8]);
            w.push(row!["Ann", "SP", 8, 10]);
        } else {
            w.push(row!["Ann", "SP", 3, 10]);
        }
        let mut c = Catalog::new();
        c.register("works", w);
        c
    };
    let eval = |c: &Catalog| -> Vec<storage::Row> {
        match approach {
            Approach::SeqHash | Approach::SeqMerge | Approach::SeqIndex => {
                run_approach(approach, q, c, domain, RewriteOptions::default())
                    .unwrap()
                    .canonicalized()
                    .rows()
                    .to_vec()
            }
            Approach::NatAlignment | Approach::NatIntervalPreservation => {
                let bound = bench_harness::bind_snapshot(q, c).unwrap();
                let sql::BoundStatement::Snapshot { plan, .. } = bound else {
                    unreachable!()
                };
                let kind = if approach == Approach::NatAlignment {
                    baseline::BaselineKind::Alignment
                } else {
                    baseline::BaselineKind::IntervalPreservation
                };
                baseline::NativeEvaluator::new(kind)
                    .with_final_coalesce(false)
                    .eval(&plan, c)
                    .unwrap()
                    .canonicalized()
                    .rows()
                    .to_vec()
            }
        }
    };
    eval(&mk(false)) == eval(&mk(true))
}

fn tick(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

/// Table 2: result row counts for both workloads.
fn table2(employee_scale: f64, tpch_sfs: &[f64]) {
    println!("\n== Table 2: number of query result rows ==\n");
    println!("Employee dataset (scale {employee_scale}):");
    let catalog = datagen::employees::generate(employee_scale, 42);
    let domain = datagen::employees::domain();
    let mut t = TextTable::new(&["query", "rows"]);
    for (name, sql_text) in datagen::employees::queries() {
        let out = run_approach(
            Approach::SeqHash,
            sql_text,
            &catalog,
            domain,
            RewriteOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        t.row(vec![name.to_string(), out.len().to_string()]);
    }
    println!("{}", t.render());

    for &sf in tpch_sfs {
        println!("TPC-BiH (sf {sf}):");
        let catalog = datagen::tpcbih::generate(sf, 7);
        let domain = datagen::tpcbih::domain();
        let mut t = TextTable::new(&["query", "rows"]);
        for (name, sql_text) in datagen::tpcbih::queries() {
            let out = run_approach(
                Approach::SeqHash,
                sql_text,
                &catalog,
                domain,
                RewriteOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            t.row(vec![name.to_string(), out.len().to_string()]);
        }
        println!("{}", t.render());
    }
}

/// Table 3 (top): Employee workload runtimes per approach + bug column.
fn table3(employee_scale: f64, check_scale: f64) {
    println!("\n== Table 3 (top): Employee workload, runtimes in seconds ==");
    println!(
        "(scale {employee_scale}; bug column checked against the oracle at scale {check_scale})\n"
    );
    let catalog = datagen::employees::generate(employee_scale, 42);
    let domain = datagen::employees::domain();

    // Bug detection at a small scale so the point-wise oracle is feasible.
    let check_catalog = datagen::employees::generate(check_scale, 42);
    let check_domain = rewrite::infer_domain(&check_catalog);

    let mut t = TextTable::new(&[
        "Query",
        "Seq (hash)",
        "Seq (merge)",
        "Nat-Align",
        "Nat-IP",
        "Bug",
    ]);
    for (name, sql_text) in datagen::employees::queries() {
        let mut cells = vec![name.to_string()];
        for approach in Approach::all() {
            let (res, secs) = timed(|| {
                run_approach(
                    approach,
                    sql_text,
                    &catalog,
                    domain,
                    RewriteOptions::default(),
                )
            });
            res.unwrap_or_else(|e| panic!("{name} ({approach:?}): {e}"));
            cells.push(format!("{secs:.3}"));
        }
        cells.push(bug_flags(name, sql_text, &check_catalog, check_domain));
        t.row(cells);
    }
    println!("{}", t.render());
}

/// Diffs the native approaches against the oracle and names the bugs found.
///
/// AG is detected directly on the workload data. BD is detected with the
/// Figure 1c multiplicity canary: the workload's difference queries can
/// coincide with NOT-EXISTS semantics when all overlapping multiplicities
/// are 1, but the *approach* still carries the bug — exactly what the
/// paper's Bug column records.
fn bug_flags(_name: &str, sql_text: &str, catalog: &Catalog, domain: TimeDomain) -> String {
    let Ok(oracle) = run_oracle(sql_text, catalog, domain) else {
        return "-".into();
    };
    let mut flags = Vec::new();
    for approach in [Approach::NatAlignment, Approach::NatIntervalPreservation] {
        let out = run_approach(
            approach,
            sql_text,
            catalog,
            domain,
            RewriteOptions::default(),
        );
        let Ok(out) = out else { continue };
        let d =
            baseline::bugs::diff_against_oracle(out.rows(), &oracle, out.schema().arity(), domain);
        if !d.is_clean() && !flags.contains(&"AG") && !sql_text.contains("EXCEPT ALL") {
            flags.push("AG");
        }
    }
    if sql_text.contains("EXCEPT ALL") && native_fails_bd_canary() {
        flags.push("BD");
    }
    if flags.is_empty() {
        "-".into()
    } else {
        flags.join("+")
    }
}

/// Whether the native approaches fail the Figure 1c bag-difference canary.
fn native_fails_bd_canary() -> bool {
    let (catalog, domain) = figure1_catalog();
    let q = "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)";
    let Ok(oracle) = run_oracle(q, &catalog, domain) else {
        return false;
    };
    [Approach::NatAlignment, Approach::NatIntervalPreservation]
        .into_iter()
        .any(|a| {
            run_approach(a, q, &catalog, domain, RewriteOptions::default())
                .map(|out| {
                    !baseline::bugs::diff_against_oracle(
                        out.rows(),
                        &oracle,
                        out.schema().arity(),
                        domain,
                    )
                    .is_clean()
                })
                .unwrap_or(false)
        })
}

/// Table 3 (bottom): TPC-BiH runtimes at the requested scale factors.
///
/// As in the paper, the DBX-style configuration (merge interval joins) is
/// skipped for this workload: the paper could not run most TPC queries on
/// DBX, and the sweep join degenerates on TPC's dense temporal overlap.
fn table3_tpch(tpch_sfs: &[f64]) {
    println!("\n== Table 3 (bottom): TPC-BiH snapshot queries, runtimes in seconds ==\n");
    for &sf in tpch_sfs {
        println!("scale factor {sf}:");
        let catalog = datagen::tpcbih::generate(sf, 7);
        let domain = datagen::tpcbih::domain();
        let mut t = TextTable::new(&["Query", "Seq (hash)", "Nat-Align", "Nat-IP"]);
        for (name, sql_text) in datagen::tpcbih::table3_queries() {
            let mut cells = vec![name.to_string()];
            for approach in [
                Approach::SeqHash,
                Approach::NatAlignment,
                Approach::NatIntervalPreservation,
            ] {
                let (res, secs) = timed(|| {
                    run_approach(
                        approach,
                        sql_text,
                        &catalog,
                        domain,
                        RewriteOptions::default(),
                    )
                });
                res.unwrap_or_else(|e| panic!("{name} ({approach:?}): {e}"));
                cells.push(format!("{secs:.3}"));
            }
            t.row(cells);
        }
        println!("{}", t.render());
    }
}

/// Figure 5: multiset coalescing runtime vs input size. Two series: the
/// engine's sweep-based operator (the paper's analytic-window SQL
/// implementation) and the generic-semiring `C_K` of the logical model.
fn figure5() {
    println!("\n== Figure 5: multiset coalescing, runtime (s) vs input size ==\n");
    let sizes = [1_000usize, 10_000, 50_000, 100_000, 300_000, 1_000_000];
    let mut t = TextTable::new(&["rows", "engine sweep", "logical-model C_K"]);
    for &n in &sizes {
        // A materialized selection over salaries: low-cardinality values
        // with many overlapping periods (the Section 10.2 setup).
        let spec = datagen::random::RandomTableSpec {
            rows: n,
            int_cols: 1,
            str_cols: 0,
            cardinality: (n as u64 / 50).max(4),
            domain: TimeDomain::new(0, 10_000),
            max_len: 800,
        };
        let table = datagen::random::random_period_table(&spec, 99);
        let arity = table.schema().arity();

        let (_, sweep) = timed(|| coalesce_rows(table.rows(), arity));

        // Generic K-coalescing: group rows per tuple and run C_N.
        let (_, generic) = timed(|| {
            let mut groups: HashMap<
                Vec<storage::Value>,
                Vec<(timeline::Interval, semiring::Natural)>,
            > = HashMap::new();
            for r in table.rows() {
                groups
                    .entry(r.values()[..arity - 2].to_vec())
                    .or_default()
                    .push((
                        timeline::Interval::new(r.int(arity - 2), r.int(arity - 1)),
                        semiring::Natural(1),
                    ));
            }
            let mut total = 0usize;
            for (_, pairs) in groups {
                total += TemporalElement::from_pairs(pairs).len();
            }
            total
        });
        t.row(vec![
            n.to_string(),
            format!("{sweep:.4}"),
            format!("{generic:.4}"),
        ]);
    }
    println!("{}", t.render());
}

/// Section 9 ablation: single-final-coalesce and fused pre-aggregation,
/// each toggled independently on aggregation- and difference-heavy queries.
fn ablation(employee_scale: f64) {
    println!("\n== Ablation (Section 9 optimizations), runtimes in seconds ==\n");
    let catalog = datagen::employees::generate(employee_scale, 42);
    let domain = datagen::employees::domain();
    let queries: Vec<(&str, &str)> = datagen::employees::queries()
        .into_iter()
        .filter(|(n, _)| matches!(*n, "agg-1" | "agg-2" | "agg-3" | "diff-1" | "diff-2"))
        .collect();
    let configs = [
        ("optimized", true, true),
        ("per-op C", false, true),
        ("unfused split", true, false),
        ("naive", false, false),
    ];
    let mut t = TextTable::new(&[
        "Query",
        configs[0].0,
        configs[1].0,
        configs[2].0,
        configs[3].0,
    ]);
    for (name, sql_text) in queries {
        let mut cells = vec![name.to_string()];
        let mut reference: Option<storage::Table> = None;
        for (_, fc, fs) in configs {
            let options = RewriteOptions {
                final_coalesce_only: fc,
                fused_split: fs,
                ..RewriteOptions::default()
            };
            let (res, secs) =
                timed(|| run_approach(Approach::SeqHash, sql_text, &catalog, domain, options));
            let out = res
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .canonicalized();
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(
                    r.rows(),
                    out.rows(),
                    "{name}: ablation config changed the result"
                ),
            }
            cells.push(format!("{secs:.3}"));
        }
        t.row(cells);
    }
    println!("{}", t.render());
}
