//! Network server load bench: throughput and tail latency of a mixed
//! temporal read/write workload over real TCP connections.
//!
//! An in-process [`snapshot_server::Server`] serves a seeded in-memory
//! database; for each connection count N, N client threads connect with
//! the [`snapshot_server::Client`] library and run a deterministic mix of
//! `SEQ VT` reads and `INSERT`/`UPDATE`/`DELETE` writes, each operation's
//! round-trip latency recorded individually. The run reports queries per
//! second and p50/p95/p99 latency per connection count, and — as the
//! observability witness — queries `snapshot_stat_statements` *over the
//! wire* at the end to confirm the workload's statements were accounted
//! server-side.
//!
//! Emits a machine-readable `BENCH_server.json` at the repository root.
//! Hand-rolled measurement loop (no criterion): tail percentiles need the
//! individual sample latencies, not iteration medians.

use bench_harness::meta::BenchMeta;
use snapshot_server::{Client, RemoteResult, Server, ServerConfig};
use snapshot_session::SharedDatabase;
use std::time::{Duration, Instant};

const CONNECTION_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Operations per connection per measured round.
const OPS_PER_CONNECTION: usize = 50;
/// Rows seeded into the works table before measurement.
const SEED_ROWS: usize = 4_000;
/// Out of every 10 operations, how many are reads.
const READS_PER_10: usize = 8;

const CREATE: &str = "CREATE TABLE works (name TEXT, skill TEXT, ts INT, te INT) PERIOD (ts, te)";
const READ_QUERY: &str = "SEQ VT (SELECT skill, count(*) AS cnt FROM works GROUP BY skill);";

fn seeded_shared(rows: usize) -> SharedDatabase {
    let shared = SharedDatabase::in_memory();
    let mut s = shared.session();
    s.execute(CREATE).unwrap();
    for chunk in (0..rows).collect::<Vec<_>>().chunks(256) {
        let values: Vec<String> = chunk
            .iter()
            .map(|&i| {
                let ts = (i % 97) as i64;
                format!("('p{}', 'S{}', {ts}, {})", i % 31, i % 5, ts + 5)
            })
            .collect();
        s.execute(&format!("INSERT INTO works VALUES {}", values.join(", ")))
            .unwrap();
    }
    shared.refresh_indexes(None);
    shared
}

/// The `op`-th operation of connection `conn`: a read 8 times out of 10,
/// otherwise an insert / update / delete over a churn row keyed to the
/// connection (writers never collide on the same logical entity, but do
/// contend on the table).
fn operation(conn: usize, op: usize) -> String {
    if op % 10 < READS_PER_10 {
        return READ_QUERY.to_string();
    }
    let key = format!("c{conn}_{}", op / 20);
    if op % 20 < 10 {
        let ts = ((conn * 13 + op * 7) % 97) as i64;
        format!(
            "INSERT INTO works VALUES ('{key}', 'S9', {ts}, {});",
            ts + 4
        )
    } else if op.is_multiple_of(4) {
        format!("UPDATE works SET skill = 'S8' WHERE name = '{key}';")
    } else {
        format!("DELETE FROM works WHERE name = '{key}';")
    }
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1e3
}

struct LoadPoint {
    connections: usize,
    ops: usize,
    queries_per_s: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn measure(addr: std::net::SocketAddr, connections: usize) -> LoadPoint {
    let started = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut samples = Vec::with_capacity(OPS_PER_CONNECTION);
                    for op in 0..OPS_PER_CONNECTION {
                        let sql = operation(conn, op);
                        let t = Instant::now();
                        let resp = client.query(&sql).expect("connection alive");
                        if let Some(e) = resp.error {
                            panic!("operation failed: {e}\n({sql})");
                        }
                        samples.push(t.elapsed());
                    }
                    client.close().expect("clean close");
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let mut sorted = latencies;
    sorted.sort_unstable();
    let ops = connections * OPS_PER_CONNECTION;
    LoadPoint {
        connections,
        ops,
        queries_per_s: ops as f64 / wall,
        p50_ms: percentile(&sorted, 0.50),
        p95_ms: percentile(&sorted, 0.95),
        p99_ms: percentile(&sorted, 0.99),
    }
}

/// The observability witness: ask the *server* (over the wire) what the
/// statement-stats registry saw, and return (fingerprints, total calls).
fn stat_statements_witness(addr: std::net::SocketAddr) -> (usize, i64) {
    let mut client = Client::connect(addr).expect("witness connects");
    let resp = client
        .query("SELECT fingerprint, calls FROM snapshot_stat_statements;")
        .expect("witness query");
    assert!(
        resp.error.is_none(),
        "witness query failed: {:?}",
        resp.error
    );
    let table = resp
        .results
        .iter()
        .find_map(|r| match r {
            RemoteResult::Rows(t) => Some(t),
            RemoteResult::Done(_) => None,
        })
        .expect("witness rows");
    let calls: i64 = table
        .rows()
        .iter()
        .map(|r| match r.values()[1] {
            storage::Value::Int(n) => n,
            ref other => panic!("calls column: {other:?}"),
        })
        .sum();
    let fingerprints = table.len();
    client.close().expect("clean close");
    (fingerprints, calls)
}

fn main() {
    // `cargo bench` passes harness flags (--bench); ignore them.
    snapshot_obs::reset_statement_stats();
    let shared = seeded_shared(SEED_ROWS);
    let server = Server::bind(shared, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Warm-up round: connection setup, first-query compilation, indexes.
    let _ = measure(addr, 2);

    let mut points = Vec::new();
    for &n in &CONNECTION_COUNTS {
        let point = measure(addr, n);
        println!(
            "server_load/connections/{n}: {:.0} q/s, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms \
             ({} ops)",
            point.queries_per_s, point.p50_ms, point.p95_ms, point.p99_ms, point.ops
        );
        points.push(point);
    }

    let (fingerprints, calls) = stat_statements_witness(addr);
    let measured_ops: usize = points.iter().map(|p| p.ops).sum();
    println!(
        "snapshot_stat_statements over the wire: {fingerprints} fingerprint(s), \
         {calls} call(s) accounted"
    );
    assert!(
        calls >= measured_ops as i64,
        "server-side statement stats must cover the workload: \
         {calls} accounted < {measured_ops} measured"
    );

    handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("clean shutdown");

    let meta = BenchMeta::new("server")
        .param("seed_rows", SEED_ROWS)
        .param("ops_per_connection", OPS_PER_CONNECTION)
        .param("reads_per_10", READS_PER_10)
        .param_str("read_query", READ_QUERY.trim_end_matches(';'));
    let load: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"connections\": {}, \"ops\": {}, \"queries_per_s\": {:.0}, \
                 \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                p.connections, p.ops, p.queries_per_s, p.p50_ms, p.p95_ms, p.p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n{},\n  \"load\": [\n{}\n  ],\n  \"stat_statements_witness\": \
         {{\"fingerprints\": {fingerprints}, \"calls\": {calls}, \
         \"measured_ops\": {measured_ops}}}\n}}\n",
        meta.render(),
        load.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
