//! Indexed vs naive temporal join across dataset sizes.
//!
//! Three routes over the same pure interval-overlap join
//! (`l.ts < r.te AND r.ts < l.te`):
//!
//! * **nested-loop** — the `O(n·m)` per-pair overlap test (the seed
//!   engine's fallback),
//! * **sweep** — the endpoint-sweep sort-merge join, sorting on the fly
//!   (`O(n log n + output)`),
//! * **indexed-sweep** — the same sweep fed by prebuilt table event lists
//!   (`O(n + m + output)` after the one-time index build).
//!
//! Besides the criterion output, the run emits a machine-readable
//! `BENCH_index.json` summary at the repository root.

use algebra::{Expr, JoinAlgo, Plan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::Engine;
use index::IndexCatalog;
use storage::Catalog;
use timeline::TimeDomain;

const SIZES: [usize; 3] = [500, 2_000, 8_000];

fn build_catalog(n: usize) -> Catalog {
    // Sparse intervals over a domain that grows with n keeps the join
    // output linear in n, so the measured asymptotics are the algorithms',
    // not the output's.
    let spec = datagen::random::RandomTableSpec {
        rows: n,
        int_cols: 1,
        str_cols: 0,
        cardinality: 16,
        domain: TimeDomain::new(0, (n as i64) * 4),
        max_len: 50,
    };
    let mut catalog = Catalog::new();
    catalog.register("l", datagen::random::random_period_table(&spec, 1));
    catalog.register("r", datagen::random::random_period_table(&spec, 2));
    catalog
}

fn overlap_join_plan(catalog: &Catalog, algo: JoinAlgo) -> Plan {
    let schema = catalog.get("l").unwrap().schema().clone();
    let arity = schema.arity();
    let (lts, lte) = (arity - 2, arity - 1);
    let (rts_g, rte_g) = (2 * arity - 2, 2 * arity - 1);
    let cond = Expr::col(lts)
        .lt(Expr::col(rte_g))
        .and(Expr::col(rts_g).lt(Expr::col(lte)));
    Plan::scan("l", schema.clone()).join_with(Plan::scan("r", schema), cond, algo)
}

fn bench_index_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_join");
    group.sample_size(5);
    group.warm_up_time(std::time::Duration::from_millis(150));
    group.measurement_time(std::time::Duration::from_millis(750));
    for &n in &SIZES {
        let catalog = build_catalog(n);
        let indexes = IndexCatalog::build_all(&catalog);
        let routes: [(&str, JoinAlgo, bool); 3] = [
            ("nested-loop", JoinAlgo::NestedLoop, false),
            ("sweep", JoinAlgo::IndexSweep, false),
            ("indexed-sweep", JoinAlgo::Auto, true),
        ];
        for (label, algo, use_index) in routes {
            let plan = overlap_join_plan(&catalog, algo);
            group.bench_with_input(BenchmarkId::new(label, n), &plan, |b, plan| {
                b.iter(|| {
                    if use_index {
                        Engine::new()
                            .execute_indexed(plan, &catalog, &indexes)
                            .unwrap()
                    } else {
                        Engine::new().execute(plan, &catalog).unwrap()
                    }
                });
            });
        }
    }
    group.finish();
    emit_json(c);
}

/// Writes `BENCH_index.json` at the repository root from the recorded
/// summaries.
fn emit_json(c: &Criterion) {
    let median_of = |label: &str, n: usize| -> Option<f64> {
        let id = format!("index_join/{label}/{n}");
        c.summaries().iter().find(|s| s.id == id).map(|s| s.median)
    };
    let mut entries = Vec::new();
    for &n in &SIZES {
        let (Some(nl), Some(sweep), Some(idx)) = (
            median_of("nested-loop", n),
            median_of("sweep", n),
            median_of("indexed-sweep", n),
        ) else {
            continue;
        };
        entries.push(format!(
            "    {{\"n\": {n}, \"nested_loop_s\": {nl:.6e}, \"sweep_s\": {sweep:.6e}, \
             \"indexed_sweep_s\": {idx:.6e}, \"speedup_indexed_vs_nested\": {:.2}}}",
            nl / idx
        ));
    }
    let meta = bench_harness::meta::BenchMeta::new("index_join")
        .param_str(
            "join",
            "pure interval overlap, both sides random period tables",
        )
        .param_str("sizes", &SIZES.map(|n| n.to_string()).join("/"));
    let json = format!(
        "{{\n{},\n  \"routes\": [\"nested-loop\", \"sweep\", \
         \"indexed-sweep\"],\n  \"results\": [\n{}\n  ]\n}}\n",
        meta.render(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_index.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_index_join);
criterion_main!(benches);
