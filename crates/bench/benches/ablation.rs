//! Section 9 ablations: the two optimizations of the rewriting, toggled
//! independently (single final coalesce vs per-operator coalescing; fused
//! pre-aggregating split vs materialized split).

use bench_harness::{run_approach, Approach};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rewrite::RewriteOptions;

fn bench_ablation(c: &mut Criterion) {
    let catalog = datagen::employees::generate(0.002, 42);
    let domain = datagen::employees::domain();
    let queries: Vec<(&str, &str)> = datagen::employees::queries()
        .into_iter()
        .filter(|(n, _)| matches!(*n, "agg-1" | "diff-2"))
        .collect();
    let configs = [
        ("optimized", true, true),
        ("per-op-coalesce", false, true),
        ("unfused-split", true, false),
        ("naive", false, false),
    ];

    let mut group = c.benchmark_group("section9_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, sql_text) in queries {
        for (label, fc, fs) in configs {
            let options = RewriteOptions {
                final_coalesce_only: fc,
                fused_split: fs,
                ..RewriteOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(name, label),
                &(sql_text, options),
                |b, (sql_text, options)| {
                    b.iter(|| {
                        run_approach(Approach::SeqHash, sql_text, &catalog, domain, *options)
                            .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
