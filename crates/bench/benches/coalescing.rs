//! Figure 5: multiset coalescing runtime vs input size.
//!
//! The paper varies a materialized selection from 1k to 3M rows and shows
//! linear scaling. We bench the engine's sweep-based operator (the analogue
//! of the paper's analytic-window SQL implementation) on the same shape of
//! input: low-cardinality values with many overlapping validity periods.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use engine::coalesce::coalesce_rows;
use timeline::TimeDomain;

fn bench_coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5_multiset_coalescing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[1_000usize, 10_000, 100_000, 300_000] {
        let spec = datagen::random::RandomTableSpec {
            rows: n,
            int_cols: 1,
            str_cols: 0,
            cardinality: (n as u64 / 50).max(4),
            domain: TimeDomain::new(0, 10_000),
            max_len: 800,
        };
        let table = datagen::random::random_period_table(&spec, 99);
        let arity = table.schema().arity();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &table, |b, t| {
            b.iter(|| coalesce_rows(t.rows(), arity));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coalescing);
criterion_main!(benches);
