//! Table 3 (top): the Employee snapshot workload, Seq vs native baselines.

use bench_harness::{run_approach, Approach};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rewrite::RewriteOptions;

fn bench_employee(c: &mut Criterion) {
    let catalog = datagen::employees::generate(0.002, 42);
    let domain = datagen::employees::domain();
    // A representative subset: one join, two aggregations, one difference —
    // the query classes where Table 3 sees the interesting gaps.
    let queries: Vec<(&str, &str)> = datagen::employees::queries()
        .into_iter()
        .filter(|(n, _)| matches!(*n, "join-1" | "join-3" | "agg-1" | "agg-2" | "diff-1"))
        .collect();

    let mut group = c.benchmark_group("table3_employee");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, sql_text) in queries {
        for approach in Approach::all() {
            group.bench_with_input(
                BenchmarkId::new(name, approach.name()),
                &(approach, sql_text),
                |b, (approach, sql_text)| {
                    b.iter(|| {
                        run_approach(
                            *approach,
                            sql_text,
                            &catalog,
                            domain,
                            RewriteOptions::default(),
                        )
                        .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_employee);
criterion_main!(benches);
