//! Durability overhead and recovery throughput.
//!
//! Two questions the durability subsystem must answer with numbers:
//!
//! * **Log-append overhead** — how much slower is an INSERT through a
//!   durable session than through an in-memory one, under each sync
//!   policy? (`fsync`-per-statement is the honest default; `OnCheckpoint`
//!   amortizes syncs and shows the ceiling.)
//! * **Recovery speed** — how many rows per second does a cold open
//!   restore, from a checkpoint (bulk decode) vs from a WAL tail
//!   (statement replay)?
//!
//! Besides the criterion output, the run emits a machine-readable
//! `BENCH_wal.json` summary at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapshot_session::{Database, PersistenceOptions, Session, SessionOptions, SyncPolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rows per insert-overhead measurement batch.
const BATCH: usize = 64;

/// Table sizes for the recovery benches.
const RECOVERY_SIZES: [usize; 2] = [2_000, 8_000];

fn scratch_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "snapshot_bench_wal_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const CREATE: &str = "CREATE TABLE works (name TEXT, skill TEXT, ts INT, te INT) PERIOD (ts, te)";

fn insert_statement(i: usize) -> String {
    let ts = (i % 97) as i64;
    format!(
        "INSERT INTO works VALUES ('p{}', 'SP', {ts}, {})",
        i % 31,
        ts + 5
    )
}

/// A durable session over a fresh directory (no auto-checkpointing, so the
/// measured cost is pure log appends).
fn durable_session(sync: SyncPolicy) -> (Session, PathBuf) {
    let dir = scratch_dir();
    let (mut s, _) = Session::open_durable(
        &dir,
        SessionOptions::default(),
        PersistenceOptions {
            sync,
            checkpoint_every: 0,
        },
    )
    .expect("open durable session");
    s.execute(CREATE).unwrap();
    (s, dir)
}

fn bench_append_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(5);
    group.warm_up_time(std::time::Duration::from_millis(150));
    group.measurement_time(std::time::Duration::from_millis(750));

    // In-memory baseline: the same statement stream, no durability.
    let mut mem = Session::new(Database::new());
    mem.execute(CREATE).unwrap();
    let mut i = 0usize;
    group.bench_function(BenchmarkId::new("in-memory", BATCH), |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                mem.execute(&insert_statement(i)).unwrap();
                i += 1;
            }
        })
    });

    let routes: [(&str, SyncPolicy); 2] = [
        ("wal-sync-always", SyncPolicy::Always),
        ("wal-sync-checkpoint", SyncPolicy::OnCheckpoint),
    ];
    for (label, sync) in routes {
        let (mut s, dir) = durable_session(sync);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new(label, BATCH), |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    s.execute(&insert_statement(i)).unwrap();
                    i += 1;
                }
            })
        });
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    group.sample_size(5);
    group.warm_up_time(std::time::Duration::from_millis(150));
    group.measurement_time(std::time::Duration::from_millis(750));

    for &n in &RECOVERY_SIZES {
        // Checkpoint route: all rows live in checkpoint.1, empty WAL.
        let (mut s, ckpt_dir) = durable_session(SyncPolicy::OnCheckpoint);
        for i in 0..n {
            s.execute(&insert_statement(i)).unwrap();
        }
        s.database_mut().checkpoint().unwrap().unwrap();
        drop(s);
        group.bench_function(BenchmarkId::new("from-checkpoint", n), |b| {
            b.iter(|| {
                let (s, report) = Session::open_durable(
                    &ckpt_dir,
                    SessionOptions::default(),
                    PersistenceOptions::default(),
                )
                .unwrap();
                assert_eq!(report.replayed, 0);
                assert_eq!(s.database().catalog().total_rows(), n);
            })
        });

        // WAL route: every row must be replayed through the pipeline.
        let (mut s, wal_dir) = durable_session(SyncPolicy::OnCheckpoint);
        for i in 0..n {
            s.execute(&insert_statement(i)).unwrap();
        }
        drop(s);
        group.bench_function(BenchmarkId::new("from-wal-replay", n), |b| {
            b.iter(|| {
                let (s, report) = Session::open_durable(
                    &wal_dir,
                    SessionOptions::default(),
                    PersistenceOptions {
                        sync: SyncPolicy::OnCheckpoint,
                        checkpoint_every: 0,
                    },
                )
                .unwrap();
                assert_eq!(report.replayed, n + 1); // CREATE + n inserts
                assert_eq!(s.database().catalog().total_rows(), n);
            })
        });
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
    group.finish();
    emit_json(c);
}

/// Writes `BENCH_wal.json` at the repository root from the recorded
/// summaries.
fn emit_json(c: &Criterion) {
    let median_of =
        |id: &str| -> Option<f64> { c.summaries().iter().find(|s| s.id == id).map(|s| s.median) };
    let (Some(mem), Some(always), Some(on_ckpt)) = (
        median_of(&format!("wal_append/in-memory/{BATCH}")),
        median_of(&format!("wal_append/wal-sync-always/{BATCH}")),
        median_of(&format!("wal_append/wal-sync-checkpoint/{BATCH}")),
    ) else {
        eprintln!("missing append summaries; not writing BENCH_wal.json");
        return;
    };
    let mut recovery = Vec::new();
    for &n in &RECOVERY_SIZES {
        let (Some(ckpt), Some(replay)) = (
            median_of(&format!("wal_recovery/from-checkpoint/{n}")),
            median_of(&format!("wal_recovery/from-wal-replay/{n}")),
        ) else {
            continue;
        };
        recovery.push(format!(
            "    {{\"rows\": {n}, \"checkpoint_open_s\": {ckpt:.6e}, \
             \"checkpoint_rows_per_s\": {:.0}, \"wal_replay_open_s\": {replay:.6e}, \
             \"wal_replay_rows_per_s\": {:.0}}}",
            n as f64 / ckpt,
            n as f64 / replay
        ));
    }
    let meta = bench_harness::meta::BenchMeta::new("wal")
        .param("batch", BATCH)
        .param_str(
            "recovery_sizes",
            &RECOVERY_SIZES.map(|n| n.to_string()).join("/"),
        );
    let json = format!(
        "{{\n{},\n  \"append_overhead\": {{\n    \
         \"batch\": {BATCH},\n    \"in_memory_s\": {mem:.6e},\n    \
         \"wal_sync_always_s\": {always:.6e},\n    \
         \"wal_sync_checkpoint_s\": {on_ckpt:.6e},\n    \
         \"overhead_always_x\": {:.2},\n    \"overhead_checkpoint_x\": {:.2}\n  }},\n  \
         \"recovery\": [\n{}\n  ]\n}}\n",
        meta.render(),
        always / mem,
        on_ckpt / mem,
        recovery.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_append_overhead, bench_recovery);
criterion_main!(benches);
