//! Parallel sweep-join benchmark: speedup vs worker-thread count.
//!
//! One pure interval-overlap join (the rewriter's pattern, the dominant
//! cost of `SEQ VT` queries) over two indexed random period tables, run
//! through the engine on the sequential endpoint sweep and on the
//! slab-parallel sweep at increasing thread counts. Besides the criterion
//! output, the run emits a machine-readable `BENCH_parallel_join.json`
//! summary at the repository root: seconds and speedup per thread count,
//! plus the hardware thread count (speedup is bounded by the smaller of
//! the two — a single-core container will honestly report ~1x).

use algebra::{Expr, JoinAlgo, Plan, PlanNode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::random::{random_period_table, RandomTableSpec};
use engine::Engine;
use index::IndexCatalog;
use storage::Catalog;
use timeline::TimeDomain;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Rows per join side.
const ROWS: usize = 30_000;
/// Time domain width; with `MAX_LEN` this sets the expected output size
/// (~ROWS·MAX_LEN/2/DOMAIN pairs per row).
const DOMAIN: i64 = 60_000;
const MAX_LEN: i64 = 40;

fn workload() -> (Catalog, IndexCatalog, Plan) {
    let spec = RandomTableSpec {
        rows: ROWS,
        int_cols: 1,
        str_cols: 1,
        cardinality: 16,
        domain: TimeDomain::new(0, DOMAIN),
        max_len: MAX_LEN,
    };
    let mut catalog = Catalog::new();
    catalog.register("r", random_period_table(&spec, 7));
    catalog.register("s", random_period_table(&spec, 1031));
    let indexes = IndexCatalog::build_all(&catalog);
    let schema = catalog.get("r").unwrap().schema().clone();
    let arity = schema.arity();
    let (lts, lte) = (arity - 2, arity - 1);
    let (rts_g, rte_g) = (2 * arity - 2, 2 * arity - 1);
    let cond = Expr::col(lts)
        .lt(Expr::col(rte_g))
        .and(Expr::col(rts_g).lt(Expr::col(lte)));
    let plan = Plan::scan("r", schema.clone()).join(Plan::scan("s", schema), cond);
    (catalog, indexes, plan)
}

fn with_algo(plan: &Plan, algo: JoinAlgo) -> Plan {
    let PlanNode::Join {
        left,
        right,
        condition,
        ..
    } = &plan.node
    else {
        panic!("workload plan is a join")
    };
    left.as_ref()
        .clone()
        .join_with(right.as_ref().clone(), condition.clone(), algo)
}

fn bench_parallel_join(c: &mut Criterion) {
    let (catalog, indexes, plan) = workload();

    // Output size (and a cross-route sanity check) once, outside timing.
    let sequential_plan = with_algo(&plan, JoinAlgo::IndexSweep);
    let output_pairs = Engine::new()
        .execute_indexed(&sequential_plan, &catalog, &indexes)
        .unwrap()
        .len();

    let mut group = c.benchmark_group("parallel_join");
    group.sample_size(5);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));

    group.bench_function(BenchmarkId::new("sequential", ROWS), |b| {
        b.iter(|| {
            Engine::new()
                .execute_indexed(&sequential_plan, &catalog, &indexes)
                .unwrap()
        })
    });
    let parallel_plan = with_algo(&plan, JoinAlgo::ParallelSweep);
    for &n in &THREAD_COUNTS {
        let engine = Engine::with_parallelism(n);
        group.bench_function(BenchmarkId::new("threads", n), |b| {
            b.iter(|| {
                engine
                    .execute_indexed(&parallel_plan, &catalog, &indexes)
                    .unwrap()
            })
        });
    }
    group.finish();
    emit_json(c, output_pairs);
}

/// Writes `BENCH_parallel_join.json` at the repository root.
fn emit_json(c: &Criterion, output_pairs: usize) {
    let median_of =
        |id: &str| -> Option<f64> { c.summaries().iter().find(|s| s.id == id).map(|s| s.median) };
    let Some(seq) = median_of(&format!("parallel_join/sequential/{ROWS}")) else {
        eprintln!("missing sequential summary; not writing BENCH_parallel_join.json");
        return;
    };
    let hardware = bench_harness::meta::hardware_threads();
    let mut entries = Vec::new();
    for &n in &THREAD_COUNTS {
        let Some(t) = median_of(&format!("parallel_join/threads/{n}")) else {
            continue;
        };
        entries.push(format!(
            "    {{\"threads\": {n}, \"seconds\": {t:.6e}, \"speedup_x\": {:.2}}}",
            seq / t
        ));
    }
    let meta = bench_harness::meta::BenchMeta::new("parallel_join")
        .param("rows_per_side", ROWS)
        .param("domain", DOMAIN)
        .param("max_len", MAX_LEN);
    let json = format!(
        "{{\n{},\n  \"output_pairs\": {output_pairs},\n  \
         \"sequential_s\": {seq:.6e},\n  \"parallel\": [\n{}\n  ]\n}}\n",
        meta.render(),
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_join.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if hardware < 4 {
        eprintln!(
            "note: only {hardware} hardware thread(s) available — parallel speedup \
             is bounded by the hardware, not the partitioning"
        );
    }
}

criterion_group!(benches, bench_parallel_join);
criterion_main!(benches);
