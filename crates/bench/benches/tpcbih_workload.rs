//! Table 3 (bottom): TPC-BiH snapshot queries, Seq vs the alignment
//! baseline (the paper times PG-Seq/PG-Nat/DBY-Seq on this workload).

use bench_harness::{run_approach, Approach};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rewrite::RewriteOptions;

fn bench_tpcbih(c: &mut Criterion) {
    let catalog = datagen::tpcbih::generate(0.001, 7);
    let domain = datagen::tpcbih::domain();
    let queries: Vec<(&str, &str)> = datagen::tpcbih::table3_queries()
        .into_iter()
        .filter(|(n, _)| matches!(*n, "Q1" | "Q5" | "Q6" | "Q12" | "Q14"))
        .collect();

    let mut group = c.benchmark_group("table3_tpcbih");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, sql_text) in queries {
        for approach in [Approach::SeqHash, Approach::NatAlignment] {
            group.bench_with_input(
                BenchmarkId::new(name, approach.name()),
                &(approach, sql_text),
                |b, (approach, sql_text)| {
                    b.iter(|| {
                        run_approach(
                            *approach,
                            sql_text,
                            &catalog,
                            domain,
                            RewriteOptions::default(),
                        )
                        .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tpcbih);
criterion_main!(benches);
