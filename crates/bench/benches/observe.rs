//! Observability bench: where does multi-reader time actually go, and
//! what does the instrumentation itself cost?
//!
//! Two parts, one `BENCH_observe.json` at the repository root:
//!
//! * **Attribution** — re-runs the `BENCH_txn.json` multi-reader read
//!   workload (N reader threads, each running indexed `SEQ VT` queries
//!   over a shared database) with the metrics registry on, and splits the
//!   aggregate CPU time across pipeline components from registry deltas:
//!   snapshot acquisition (`txn_snapshot_seconds`), index refresh
//!   (`session_index_seconds`), compile (`session_parse/bind/rewrite`),
//!   execute (`session_execute_seconds`), and commit-mutex wait
//!   (`txn_commit_wait_seconds`). The component with the largest share at
//!   the highest reader count is named as the flat-throughput bottleneck.
//! * **Overhead** — the parallel-join workload's sequential sweep, run
//!   with tracing off (the default) and on. The tracing-off median is
//!   compared against the `sequential_s` recorded in
//!   `BENCH_parallel_join.json` (the un-instrumented figure CI produced
//!   moments earlier); if instrumentation costs more than
//!   `OBSERVE_OVERHEAD_MAX_PCT` (default 3%), the bench fails. The
//!   spans-on run gets its own, laxer gate: tracing-on may cost at most
//!   `OBSERVE_SPAN_OVERHEAD_MAX_PCT` (default 8%) over tracing-off.
//! * **Decomposition** — the same workload run once under the operator
//!   profiler: the execute-dominant verdict from the attribution is
//!   broken down into per-operator self-time shares (folded stack
//!   paths), emitted as `operator_decomposition` in the JSON.
//!
//! The run also asserts that the registry's text exposition passes
//! [`bench_harness::expofmt::check_exposition`] — the same dump the
//! shell's `.metrics` prints — including the `snapshot_build_info`
//! info gauge and the process uptime metric.

use algebra::{Expr, JoinAlgo, Plan};
use bench_harness::{expofmt, meta::BenchMeta};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::random::{random_period_table, RandomTableSpec};
use engine::Engine;
use index::IndexCatalog;
use snapshot_obs as obs;
use snapshot_session::SharedDatabase;
use storage::Catalog;
use timeline::TimeDomain;

// The BENCH_txn read workload, repeated here verbatim so the attribution
// measures the same queries whose throughput flattens there.
const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const QUERIES_PER_THREAD: usize = 8;
const READ_ROWS: usize = 4_000;
/// Measured rounds per reader count.
const ROUNDS: usize = 6;
const CREATE: &str = "CREATE TABLE works (name TEXT, skill TEXT, ts INT, te INT) PERIOD (ts, te)";
const QUERY: &str = "SEQ VT (SELECT skill, count(*) AS cnt FROM works GROUP BY skill)";

// The parallel_join bench's sequential workload, repeated here so the
// overhead comparison runs the identical computation (keep in sync with
// benches/parallel_join.rs).
const PJ_ROWS: usize = 30_000;
const PJ_DOMAIN: i64 = 60_000;
const PJ_MAX_LEN: i64 = 40;

/// The components the registry can attribute reader time to.
const COMPONENTS: [(&str, &[&str]); 5] = [
    ("snapshot_acquire", &["txn_snapshot_seconds"]),
    ("index_refresh", &["session_index_seconds"]),
    (
        "compile",
        &[
            "session_parse_seconds",
            "session_bind_seconds",
            "session_rewrite_seconds",
        ],
    ),
    ("execute", &["session_execute_seconds"]),
    ("commit_wait", &["txn_commit_wait_seconds"]),
];

fn hist_sum(name: &str) -> f64 {
    obs::registry()
        .get_histogram(name)
        .map(|h| h.sum())
        .unwrap_or(0.0)
}

fn component_sums() -> [f64; COMPONENTS.len()] {
    let mut out = [0.0; COMPONENTS.len()];
    for (slot, (_, names)) in out.iter_mut().zip(COMPONENTS) {
        *slot = names.iter().map(|n| hist_sum(n)).sum();
    }
    out
}

/// An in-memory shared database with `rows` rows and fresh committed
/// indexes (the `BENCH_txn` seed).
fn seeded_shared(rows: usize) -> SharedDatabase {
    let shared = SharedDatabase::in_memory();
    let mut s = shared.session();
    s.execute(CREATE).unwrap();
    for chunk in (0..rows).collect::<Vec<_>>().chunks(256) {
        let values: Vec<String> = chunk
            .iter()
            .map(|&i| {
                let ts = (i % 97) as i64;
                format!("('p{}', 'S{}', {ts}, {})", i % 31, i % 5, ts + 5)
            })
            .collect();
        s.execute(&format!("INSERT INTO works VALUES {}", values.join(", ")))
            .unwrap();
    }
    shared.refresh_indexes(None);
    shared
}

fn run_reader_round(shared: &SharedDatabase, n: usize) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let shared = shared.clone();
                scope.spawn(move || {
                    let mut s = shared.session();
                    for _ in 0..QUERIES_PER_THREAD {
                        let r = s.execute(QUERY).unwrap();
                        assert!(r.rows().is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    })
}

/// One attribution entry per reader count, plus the name of the dominant
/// component at the highest count.
fn attribution() -> (Vec<String>, String) {
    let shared = seeded_shared(READ_ROWS);
    run_reader_round(&shared, 1); // warm: indexes fresh, caches hot
    let mut entries = Vec::new();
    let mut bottleneck = String::from("unknown");
    for &n in &READER_COUNTS {
        let before = component_sums();
        let started = std::time::Instant::now();
        for _ in 0..ROUNDS {
            run_reader_round(&shared, n);
        }
        let wall = started.elapsed().as_secs_f64();
        let after = component_sums();
        let deltas: Vec<f64> = after.iter().zip(before).map(|(a, b)| a - b).collect();
        let cpu_total: f64 = deltas.iter().sum();
        let qps = (ROUNDS * n * QUERIES_PER_THREAD) as f64 / wall;
        let parts: Vec<String> = COMPONENTS
            .iter()
            .zip(&deltas)
            .map(|((name, _), d)| {
                format!(
                    "\"{name}_s\": {d:.6e}, \"{name}_share\": {:.3}",
                    if cpu_total > 0.0 { d / cpu_total } else { 0.0 }
                )
            })
            .collect();
        entries.push(format!(
            "    {{\"readers\": {n}, \"queries_per_s\": {qps:.0}, \
             \"wall_s\": {wall:.6e}, \"attributed_cpu_s\": {cpu_total:.6e}, {}}}",
            parts.join(", ")
        ));
        // The flat region is the highest reader count; name whatever
        // dominates the attributed time there.
        let (mut max_name, mut max_d) = ("unknown", f64::MIN);
        for ((name, _), d) in COMPONENTS.iter().zip(&deltas) {
            if *d > max_d {
                (max_name, max_d) = (name, *d);
            }
        }
        bottleneck = max_name.to_string();
    }
    (entries, bottleneck)
}

/// The parallel_join sequential workload: a pure interval-overlap join
/// over two indexed random period tables, on the sequential endpoint
/// sweep.
fn pj_workload() -> (Catalog, IndexCatalog, Plan) {
    let spec = RandomTableSpec {
        rows: PJ_ROWS,
        int_cols: 1,
        str_cols: 1,
        cardinality: 16,
        domain: TimeDomain::new(0, PJ_DOMAIN),
        max_len: PJ_MAX_LEN,
    };
    let mut catalog = Catalog::new();
    catalog.register("r", random_period_table(&spec, 7));
    catalog.register("s", random_period_table(&spec, 1031));
    let indexes = IndexCatalog::build_all(&catalog);
    let schema = catalog.get("r").unwrap().schema().clone();
    let arity = schema.arity();
    let (lts, lte) = (arity - 2, arity - 1);
    let (rts_g, rte_g) = (2 * arity - 2, 2 * arity - 1);
    let cond = Expr::col(lts)
        .lt(Expr::col(rte_g))
        .and(Expr::col(rts_g).lt(Expr::col(lte)));
    let plan = Plan::scan("r", schema.clone()).join_with(
        Plan::scan("s", schema),
        cond,
        JoinAlgo::IndexSweep,
    );
    (catalog, indexes, plan)
}

/// The `sequential_s` the parallel_join bench recorded, if it ran.
fn baseline_sequential_s() -> Option<f64> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_join.json"
    );
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"sequential_s\": ";
    let rest = &text[text.find(key)? + key.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn overhead_limit_pct() -> f64 {
    std::env::var("OBSERVE_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0)
}

/// The spans-on gate is laxer than the metrics-off one: recording a span
/// per operator invocation is allowed to cost more than the passive
/// registry, but not much more.
fn span_limit_pct() -> f64 {
    std::env::var("OBSERVE_SPAN_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8.0)
}

/// One profiled run of the overhead workload: folded operator stacks with
/// per-path self-time shares, largest first.
fn operator_decomposition(catalog: &Catalog, indexes: &IndexCatalog, plan: &Plan) -> Vec<String> {
    obs::reset_profile();
    obs::set_profiling(true);
    for _ in 0..3 {
        Engine::new()
            .execute_indexed(plan, catalog, indexes)
            .unwrap();
    }
    obs::set_profiling(false);
    let stats = obs::profile_stats();
    let total_ns: u64 = stats.iter().map(|s| s.self_ns).sum::<u64>().max(1);
    let out = stats
        .iter()
        .take(8)
        .map(|s| {
            format!(
                "    {{\"path\": \"{}\", \"self_s\": {:.6e}, \"share\": {:.3}}}",
                s.path,
                s.self_ns as f64 / 1e9,
                s.self_ns as f64 / total_ns as f64
            )
        })
        .collect();
    obs::reset_profile();
    out
}

fn bench_observe(c: &mut Criterion) {
    // Part 1 — overhead of the always-on instrumentation, measured on the
    // engine's hottest path with tracing off (the production default) and
    // on (every operator records a span).
    let (catalog, indexes, plan) = pj_workload();
    let mut group = c.benchmark_group("observe");
    group.sample_size(5);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    obs::set_tracing(false);
    group.bench_function(BenchmarkId::new("tracing-off", PJ_ROWS), |b| {
        b.iter(|| {
            Engine::new()
                .execute_indexed(&plan, &catalog, &indexes)
                .unwrap()
        })
    });
    obs::set_tracing(true);
    group.bench_function(BenchmarkId::new("tracing-on", PJ_ROWS), |b| {
        b.iter(|| {
            obs::reset_thread_trace();
            Engine::new()
                .execute_indexed(&plan, &catalog, &indexes)
                .unwrap()
        })
    });
    obs::set_tracing(false);
    obs::reset_thread_trace();
    group.finish();

    // Part 2 — per-operator decomposition of the same workload under the
    // profiler.
    let operators = operator_decomposition(&catalog, &indexes, &plan);

    // Part 3 — attribution of the multi-reader workload.
    let (entries, bottleneck) = attribution();

    // Part 4 — the exposition dump must parse (the shell's `.metrics`
    // prints exactly this text), including the process-level samples.
    obs::refresh_process_metrics();
    let exposition = obs::registry().render_text();
    expofmt::check_exposition(&exposition).expect("metrics exposition must parse");
    for required in [
        "txn_snapshot_seconds",
        "session_execute_seconds",
        "engine_scan_invocations_total",
        "statements_cancelled_total",
        "statement_timeouts_total",
        "snapshot_build_info",
        "snapshot_uptime_seconds",
    ] {
        assert!(
            exposition.contains(required),
            "exposition is missing {required}"
        );
    }

    emit_json(c, &entries, &bottleneck, &operators);
}

fn emit_json(c: &Criterion, entries: &[String], bottleneck: &str, operators: &[String]) {
    let median_of =
        |id: &str| -> Option<f64> { c.summaries().iter().find(|s| s.id == id).map(|s| s.median) };
    let (Some(off), Some(on)) = (
        median_of(&format!("observe/tracing-off/{PJ_ROWS}")),
        median_of(&format!("observe/tracing-on/{PJ_ROWS}")),
    ) else {
        eprintln!("missing overhead summaries; not writing BENCH_observe.json");
        return;
    };
    let baseline = baseline_sequential_s();
    let overhead_pct = baseline.map(|b| (off - b) / b * 100.0);
    let span_pct = (on - off) / off * 100.0;
    let meta = BenchMeta::new("observe")
        .param("read_rows", READ_ROWS)
        .param("queries_per_thread", QUERIES_PER_THREAD)
        .param("rounds", ROUNDS)
        .param("pj_rows_per_side", PJ_ROWS)
        .param_str("query", QUERY);
    let json = format!(
        "{{\n{},\n  \"read_attribution\": [\n{}\n  ],\n  \
         \"bottleneck\": \"{bottleneck}\",\n  \
         \"operator_decomposition\": [\n{}\n  ],\n  \"overhead\": {{\n    \
         \"tracing_off_s\": {off:.6e},\n    \"tracing_on_s\": {on:.6e},\n    \
         \"span_overhead_pct\": {span_pct:.2},\n    \
         \"span_limit_pct\": {:.1},\n    \
         \"baseline_sequential_s\": {},\n    \
         \"metrics_off_overhead_pct\": {},\n    \
         \"limit_pct\": {:.1}\n  }}\n}}\n",
        meta.render(),
        entries.join(",\n"),
        operators.join(",\n"),
        span_limit_pct(),
        baseline.map_or("null".into(), |b| format!("{b:.6e}")),
        overhead_pct.map_or("null".into(), |p| format!("{p:.2}")),
        overhead_limit_pct(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_observe.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    match overhead_pct {
        Some(p) if p > overhead_limit_pct() => panic!(
            "instrumentation overhead {p:.2}% exceeds the {:.1}% budget \
             (tracing-off {off:.6e}s vs baseline {:.6e}s)",
            overhead_limit_pct(),
            baseline.unwrap()
        ),
        Some(p) => println!(
            "instrumentation overhead vs un-instrumented baseline: {p:.2}% \
             (budget {:.1}%)",
            overhead_limit_pct()
        ),
        None => eprintln!(
            "note: BENCH_parallel_join.json not found — run the parallel_join \
             bench first for the cross-run overhead comparison"
        ),
    }
    if span_pct > span_limit_pct() {
        panic!(
            "span overhead {span_pct:.2}% exceeds the {:.1}% budget \
             (tracing-on {on:.6e}s vs tracing-off {off:.6e}s)",
            span_limit_pct()
        );
    }
    println!(
        "span overhead tracing-on vs tracing-off: {span_pct:.2}% (budget {:.1}%)",
        span_limit_pct()
    );
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
