//! Concurrency benchmarks: what MVCC buys and what commits cost.
//!
//! * **Read throughput vs reader-thread count** — N threads each run
//!   indexed `SEQ VT` queries over their own pinned snapshots of one
//!   [`SharedDatabase`]. Readers never block, so throughput should scale
//!   with threads until the hardware runs out.
//! * **Commit latency, group commit vs autocommit** — the same batch of
//!   inserts committed as one `BEGIN`…`COMMIT` unit (one WAL fsync for
//!   the whole transaction) vs as bare autocommit statements (one fsync
//!   each) under `SyncPolicy::Always`.
//!
//! Besides the criterion output, the run emits a machine-readable
//! `BENCH_txn.json` summary at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapshot_session::{PersistenceOptions, SessionOptions, SharedDatabase, SyncPolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Queries per thread per measured iteration.
const QUERIES_PER_THREAD: usize = 8;
/// Rows in the read-bench table.
const READ_ROWS: usize = 4_000;
/// Statements per commit-latency batch.
const TXN_SIZE: usize = 32;

const CREATE: &str = "CREATE TABLE works (name TEXT, skill TEXT, ts INT, te INT) PERIOD (ts, te)";
const QUERY: &str = "SEQ VT (SELECT skill, count(*) AS cnt FROM works GROUP BY skill)";

fn scratch_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "snapshot_bench_txn_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn insert_statement(i: usize) -> String {
    let ts = (i % 97) as i64;
    format!(
        "INSERT INTO works VALUES ('p{}', 'S{}', {ts}, {})",
        i % 31,
        i % 5,
        ts + 5
    )
}

/// An in-memory shared database with `rows` rows and fresh committed
/// indexes.
fn seeded_shared(rows: usize) -> SharedDatabase {
    let shared = SharedDatabase::in_memory();
    let mut s = shared.session();
    s.execute(CREATE).unwrap();
    for chunk in (0..rows).collect::<Vec<_>>().chunks(256) {
        let values: Vec<String> = chunk
            .iter()
            .map(|&i| {
                let ts = (i % 97) as i64;
                format!("('p{}', 'S{}', {ts}, {})", i % 31, i % 5, ts + 5)
            })
            .collect();
        s.execute(&format!("INSERT INTO works VALUES {}", values.join(", ")))
            .unwrap();
    }
    shared.refresh_indexes(None);
    shared
}

fn bench_read_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_read");
    group.sample_size(5);
    group.warm_up_time(std::time::Duration::from_millis(150));
    group.measurement_time(std::time::Duration::from_millis(750));

    let shared = seeded_shared(READ_ROWS);
    for &n in &READER_COUNTS {
        group.bench_function(BenchmarkId::new("readers", n), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..n)
                        .map(|_| {
                            let shared = shared.clone();
                            scope.spawn(move || {
                                let mut s = shared.session();
                                for _ in 0..QUERIES_PER_THREAD {
                                    let r = s.execute(QUERY).unwrap();
                                    assert!(r.rows().is_some());
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_commit");
    group.sample_size(5);
    group.warm_up_time(std::time::Duration::from_millis(150));
    group.measurement_time(std::time::Duration::from_millis(750));

    // Autocommit: one WAL fsync per statement.
    let dir = scratch_dir();
    let (shared, _) = SharedDatabase::open_durable(
        &dir,
        SessionOptions::default(),
        PersistenceOptions {
            sync: SyncPolicy::Always,
            checkpoint_every: 0,
        },
    )
    .unwrap();
    let mut s = shared.session();
    s.execute(CREATE).unwrap();
    let mut i = 0usize;
    group.bench_function(BenchmarkId::new("autocommit", TXN_SIZE), |b| {
        b.iter(|| {
            for _ in 0..TXN_SIZE {
                s.execute(&insert_statement(i)).unwrap();
                i += 1;
            }
        })
    });
    drop(s);
    drop(shared);
    let _ = std::fs::remove_dir_all(&dir);

    // Group commit: the same batch as one BEGIN..COMMIT unit — one fsync.
    let dir = scratch_dir();
    let (shared, _) = SharedDatabase::open_durable(
        &dir,
        SessionOptions::default(),
        PersistenceOptions {
            sync: SyncPolicy::Always,
            checkpoint_every: 0,
        },
    )
    .unwrap();
    let mut s = shared.session();
    s.execute(CREATE).unwrap();
    let mut i = 0usize;
    group.bench_function(BenchmarkId::new("group-commit", TXN_SIZE), |b| {
        b.iter(|| {
            s.execute("BEGIN").unwrap();
            for _ in 0..TXN_SIZE {
                s.execute(&insert_statement(i)).unwrap();
                i += 1;
            }
            s.execute("COMMIT").unwrap();
        })
    });
    drop(s);
    drop(shared);
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
    emit_json(c);
}

/// Writes `BENCH_txn.json` at the repository root from the recorded
/// summaries.
fn emit_json(c: &Criterion) {
    let median_of =
        |id: &str| -> Option<f64> { c.summaries().iter().find(|s| s.id == id).map(|s| s.median) };
    let mut reads = Vec::new();
    let single = median_of(&format!("txn_read/readers/{}", READER_COUNTS[0]));
    for &n in &READER_COUNTS {
        let Some(t) = median_of(&format!("txn_read/readers/{n}")) else {
            continue;
        };
        let qps = (n * QUERIES_PER_THREAD) as f64 / t;
        let speedup = single.map(|s1| (QUERIES_PER_THREAD as f64 / s1) / (qps / n as f64));
        reads.push(format!(
            "    {{\"readers\": {n}, \"queries_per_s\": {qps:.0}, \
             \"per_reader_slowdown_x\": {:.2}}}",
            speedup.unwrap_or(f64::NAN)
        ));
    }
    let (Some(auto), Some(grouped)) = (
        median_of(&format!("txn_commit/autocommit/{TXN_SIZE}")),
        median_of(&format!("txn_commit/group-commit/{TXN_SIZE}")),
    ) else {
        eprintln!("missing commit summaries; not writing BENCH_txn.json");
        return;
    };
    let meta = bench_harness::meta::BenchMeta::new("txn")
        .param("read_rows", READ_ROWS)
        .param("queries_per_thread", QUERIES_PER_THREAD)
        .param("txn_size", TXN_SIZE)
        .param_str("query", QUERY);
    let json = format!(
        "{{\n{},\n  \"read_throughput\": [\n{}\n  ],\n  \
         \"commit_latency\": {{\n    \"txn_size\": {TXN_SIZE},\n    \
         \"autocommit_s_per_stmt\": {:.6e},\n    \
         \"group_commit_s_per_stmt\": {:.6e},\n    \
         \"group_commit_speedup_x\": {:.2}\n  }}\n}}\n",
        meta.render(),
        reads.join(",\n"),
        auto / TXN_SIZE as f64,
        grouped / TXN_SIZE as f64,
        auto / grouped
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_txn.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_read_throughput, bench_commit_latency);
criterion_main!(benches);
