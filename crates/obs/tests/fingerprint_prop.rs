//! Property tests for the statement fingerprint normalizer.
//!
//! Strategy: generate a statement *shape* — a token sequence of keywords,
//! identifiers, and literal slots — then render it twice with independent
//! random literal values, whitespace runs, and letter case. Both
//! renderings must fingerprint to the shape's canonical form (lowercase
//! tokens, literals as `?`, single spaces), which also proves distinct
//! shapes never collide: their canonical forms differ by construction.

use proptest::collection::vec;
use proptest::prelude::*;
use snapshot_obs::fingerprint;

/// One token of a statement shape, plus its canonical (normalized) text.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    /// A keyword or punctuation with fixed canonical spelling.
    Word(&'static str),
    /// An identifier (case-folds, keeps digits and underscores).
    Ident(String),
    /// An integer literal slot.
    Int,
    /// A float literal slot (fraction, optional exponent).
    Float,
    /// A string literal slot (may contain `''` escapes).
    Str,
}

impl Token {
    fn canonical(&self) -> String {
        match self {
            Token::Word(w) => w.to_string(),
            Token::Ident(id) => id.to_lowercase(),
            Token::Int | Token::Float | Token::Str => "?".to_string(),
        }
    }
}

fn token_strategy() -> impl Strategy<Value = Token> {
    let words = (0usize..9).prop_map(|i| {
        let pool = [
            "select", "from", "where", "and", "=", ">=", ",", "group by", "overlaps",
        ];
        Token::Word(pool[i])
    });
    let idents = (0usize..8, 0u32..100).prop_map(|(stem, n)| {
        let stems = ["t", "x", "Orders", "Part_Key", "VT", "ts_col", "te", "Emp"];
        Token::Ident(format!("{}{n}", stems[stem]))
    });
    prop_oneof![
        words,
        idents,
        Just(Token::Int),
        Just(Token::Float),
        Just(Token::Str),
    ]
}

/// Rendering noise: per-token literal values, whitespace, and case flips,
/// all drawn from one seed vector so the two renderings are independent.
#[derive(Debug, Clone)]
struct Noise {
    seeds: Vec<u64>,
}

impl Noise {
    fn draw(&self, i: usize) -> u64 {
        // splitmix-style spread over the seed vector.
        let s = self.seeds[i % self.seeds.len()]
            .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1));
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

fn render(tokens: &[Token], noise: &Noise) -> String {
    let mut out = String::new();
    for (i, tok) in tokens.iter().enumerate() {
        let r = noise.draw(i);
        // 1–3 whitespace chars between tokens, mixing spaces/tabs/newlines.
        let ws = ["  ", " ", "\t", " \n ", "   "][r as usize % 5];
        if i > 0 {
            out.push_str(ws);
        }
        match tok {
            Token::Word(_) | Token::Ident(_) => {
                let text = match tok {
                    Token::Word(w) => w.to_string(),
                    Token::Ident(id) => id.clone(),
                    _ => unreachable!(),
                };
                // Random per-letter case.
                for (j, c) in text.chars().enumerate() {
                    if noise.draw(i * 31 + j).is_multiple_of(2) {
                        out.extend(c.to_uppercase());
                    } else {
                        out.extend(c.to_lowercase());
                    }
                }
            }
            Token::Int => out.push_str(&format!("{}", r % 100_000)),
            Token::Float => {
                let frac = format!("{}.{}", r % 1000, (r >> 10) % 100);
                match r % 3 {
                    0 => out.push_str(&frac),
                    1 => out.push_str(&format!("{frac}e{}", (r >> 20) % 30)),
                    _ => out.push_str(&format!("{frac}E-{}", (r >> 20) % 30)),
                }
            }
            Token::Str => {
                let body = match r % 4 {
                    0 => String::new(),
                    1 => format!("v{}", r % 1000),
                    2 => "it''s".to_string(),
                    _ => format!("a b\tc{}", r % 10),
                };
                out.push_str(&format!("'{body}'"));
            }
        }
    }
    // A trailing semicolon must not change the fingerprint.
    if noise.draw(tokens.len() + 7).is_multiple_of(2) {
        out.push(';');
    }
    out
}

fn canonical(tokens: &[Token]) -> String {
    tokens
        .iter()
        .map(Token::canonical)
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Any rendering of a shape — random literals, whitespace, case, an
    /// optional trailing `;` — fingerprints to the shape's canonical form.
    #[test]
    fn renderings_of_one_shape_share_a_fingerprint(
        tokens in vec(token_strategy(), 1..12),
        seeds_a in vec(0u64..u64::MAX, 4..8),
        seeds_b in vec(0u64..u64::MAX, 4..8),
    ) {
        let want = canonical(&tokens);
        let a = render(&tokens, &Noise { seeds: seeds_a });
        let b = render(&tokens, &Noise { seeds: seeds_b });
        prop_assert_eq!(&fingerprint(&a), &want, "rendering A: {:?}", a);
        prop_assert_eq!(&fingerprint(&b), &want, "rendering B: {:?}", b);
    }

    /// Distinct shapes never collide: shapes with different canonical
    /// forms fingerprint differently, whatever their renderings.
    #[test]
    fn distinct_shapes_never_collide(
        tokens_a in vec(token_strategy(), 1..12),
        tokens_b in vec(token_strategy(), 1..12),
        seeds in vec(0u64..u64::MAX, 4..8),
    ) {
        let noise = Noise { seeds };
        let fp_a = fingerprint(&render(&tokens_a, &noise));
        let fp_b = fingerprint(&render(&tokens_b, &noise));
        if canonical(&tokens_a) != canonical(&tokens_b) {
            prop_assert_ne!(fp_a, fp_b);
        } else {
            prop_assert_eq!(fp_a, fp_b);
        }
    }
}
