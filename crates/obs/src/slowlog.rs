//! The slow-query log: a bounded, process-global ring of offenders.
//!
//! The session layer, when a statement's wall time crosses the session's
//! configured threshold (`SessionOptions::slow_query_ms`, the shell's
//! `.slow` command, or the `--slow-ms` flag), records a [`SlowQuery`] with
//! the statement text, the per-phase time split, and — when available —
//! the `EXPLAIN ANALYZE`-style operator actuals of the executed plan. The
//! ring keeps the most recent [`SLOW_LOG_CAPACITY`] entries; the
//! `snapshot_stat_slow_queries` virtual table and the tests read it back
//! via [`slow_queries`]. Like all obs state it is in-memory only.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Maximum number of retained slow queries (oldest evicted beyond).
pub const SLOW_LOG_CAPACITY: usize = 32;

/// One logged slow statement.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Monotone sequence number (process-global arrival order).
    pub seq: u64,
    /// The statement text as executed.
    pub statement: String,
    /// Total wall time, milliseconds.
    pub total_ms: f64,
    /// Parse phase, milliseconds.
    pub parse_ms: f64,
    /// Bind phase, milliseconds.
    pub bind_ms: f64,
    /// Rewrite phase, milliseconds.
    pub rewrite_ms: f64,
    /// Index-maintenance phase, milliseconds.
    pub index_ms: f64,
    /// Execute phase, milliseconds.
    pub execute_ms: f64,
    /// Commit phase, milliseconds.
    pub commit_ms: f64,
    /// Result cardinality for queries, `None` for DML/DDL.
    pub rows: Option<u64>,
    /// Rendered operator actuals (`EXPLAIN ANALYZE` style), when the
    /// statement ran a plan.
    pub plan: Option<String>,
}

#[derive(Default)]
struct Log {
    ring: VecDeque<SlowQuery>,
    next_seq: u64,
}

fn log() -> MutexGuard<'static, Log> {
    static GLOBAL: OnceLock<Mutex<Log>> = OnceLock::new();
    GLOBAL
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Append one slow query to the ring (the `seq` field is assigned here;
/// the caller's value is ignored).
pub fn record_slow_query(mut q: SlowQuery) {
    let mut l = log();
    q.seq = l.next_seq;
    l.next_seq += 1;
    if l.ring.len() == SLOW_LOG_CAPACITY {
        l.ring.pop_front();
    }
    l.ring.push_back(q);
}

/// Snapshot the retained slow queries, oldest first.
pub fn slow_queries() -> Vec<SlowQuery> {
    log().ring.iter().cloned().collect()
}

/// Clear the ring (benches and tests; the sequence keeps counting).
pub fn reset_slow_log() {
    log().ring.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(text: &str, total_ms: f64) -> SlowQuery {
        SlowQuery {
            seq: 0,
            statement: text.to_string(),
            total_ms,
            parse_ms: 0.01,
            bind_ms: 0.02,
            rewrite_ms: 0.03,
            index_ms: 0.0,
            execute_ms: total_ms - 0.06,
            commit_ms: 0.0,
            rows: Some(7),
            plan: Some("Scan t (actual rows=7)".to_string()),
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        reset_slow_log();
        for i in 0..(SLOW_LOG_CAPACITY + 5) {
            record_slow_query(entry(&format!("q{i}"), 10.0 + i as f64));
        }
        let got = slow_queries();
        assert_eq!(got.len(), SLOW_LOG_CAPACITY);
        // Oldest entries were evicted; order is arrival order.
        assert_eq!(got.first().unwrap().statement, "q5");
        assert_eq!(
            got.last().unwrap().statement,
            format!("q{}", SLOW_LOG_CAPACITY + 4)
        );
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(got[0].rows, Some(7));
        assert!(got[0].plan.as_deref().unwrap().contains("actual rows=7"));
        reset_slow_log();
        assert!(slow_queries().is_empty());
    }
}
