//! The slow-query log: a bounded, process-global ring of offenders.
//!
//! The session layer, when a statement's wall time crosses the session's
//! configured threshold (`SessionOptions::slow_query_ms`, the shell's
//! `.slow` command, or the `--slow-ms` flag), records a [`SlowQuery`] with
//! the statement text, the per-phase time split, and — when available —
//! the `EXPLAIN ANALYZE`-style operator actuals of the executed plan. The
//! ring keeps the most recent [`SLOW_LOG_CAPACITY`] entries by default —
//! configurable per process via [`set_slow_log_capacity`]
//! (`SessionOptions::slow_log_capacity` / `SET slow_log_capacity`) — and
//! every eviction is counted in `slow_log_evictions_total` rather than
//! dropped silently. The `snapshot_stat_slow_queries` virtual table and
//! the tests read it back via [`slow_queries`]. Like all obs state it is
//! in-memory only.

use crate::metrics::LazyCounter;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Default number of retained slow queries (oldest evicted beyond).
pub const SLOW_LOG_CAPACITY: usize = 32;

/// Entries pushed out of the ring by capacity pressure.
static SLOW_LOG_EVICTIONS: LazyCounter = LazyCounter::new("slow_log_evictions_total");

/// One logged slow statement.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Monotone sequence number (process-global arrival order).
    pub seq: u64,
    /// The statement text as executed.
    pub statement: String,
    /// Total wall time, milliseconds.
    pub total_ms: f64,
    /// Parse phase, milliseconds.
    pub parse_ms: f64,
    /// Bind phase, milliseconds.
    pub bind_ms: f64,
    /// Rewrite phase, milliseconds.
    pub rewrite_ms: f64,
    /// Index-maintenance phase, milliseconds.
    pub index_ms: f64,
    /// Execute phase, milliseconds.
    pub execute_ms: f64,
    /// Commit phase, milliseconds.
    pub commit_ms: f64,
    /// Result cardinality for queries, `None` for DML/DDL.
    pub rows: Option<u64>,
    /// Rendered operator actuals (`EXPLAIN ANALYZE` style), when the
    /// statement ran a plan.
    pub plan: Option<String>,
    /// Cancellation reason (`"statement timeout"`, `"killed by request"`,
    /// …) when the statement was cancelled rather than completed.
    pub cancelled: Option<String>,
}

struct Log {
    ring: VecDeque<SlowQuery>,
    next_seq: u64,
    capacity: usize,
}

impl Default for Log {
    fn default() -> Log {
        Log {
            ring: VecDeque::new(),
            next_seq: 0,
            capacity: SLOW_LOG_CAPACITY,
        }
    }
}

fn log() -> crate::lock::LockGuard<'static, Log> {
    static GLOBAL: OnceLock<Mutex<Log>> = OnceLock::new();
    crate::lock::lock("obs.slowlog", GLOBAL.get_or_init(Mutex::default))
}

/// Append one slow query to the ring (the `seq` field is assigned here;
/// the caller's value is ignored). Evictions under capacity pressure are
/// counted in `slow_log_evictions_total`.
pub fn record_slow_query(mut q: SlowQuery) {
    let mut l = log();
    q.seq = l.next_seq;
    l.next_seq += 1;
    while l.ring.len() >= l.capacity {
        l.ring.pop_front();
        SLOW_LOG_EVICTIONS.inc();
    }
    l.ring.push_back(q);
}

/// Resize the ring (process-global; clamped to ≥ 1). Shrinking below the
/// current length evicts the oldest entries, counting them.
pub fn set_slow_log_capacity(capacity: usize) {
    let mut l = log();
    l.capacity = capacity.max(1);
    while l.ring.len() > l.capacity {
        l.ring.pop_front();
        SLOW_LOG_EVICTIONS.inc();
    }
}

/// The ring's current capacity.
pub fn slow_log_capacity() -> usize {
    log().capacity
}

/// Snapshot the retained slow queries, oldest first.
pub fn slow_queries() -> Vec<SlowQuery> {
    log().ring.iter().cloned().collect()
}

/// Clear the ring (benches and tests; the sequence keeps counting).
pub fn reset_slow_log() {
    log().ring.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(text: &str, total_ms: f64) -> SlowQuery {
        SlowQuery {
            seq: 0,
            statement: text.to_string(),
            total_ms,
            parse_ms: 0.01,
            bind_ms: 0.02,
            rewrite_ms: 0.03,
            index_ms: 0.0,
            execute_ms: total_ms - 0.06,
            commit_ms: 0.0,
            rows: Some(7),
            plan: Some("Scan t (actual rows=7)".to_string()),
            cancelled: None,
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let _guard = crate::testing::serial_guard();
        reset_slow_log();
        set_slow_log_capacity(SLOW_LOG_CAPACITY);
        for i in 0..(SLOW_LOG_CAPACITY + 5) {
            record_slow_query(entry(&format!("q{i}"), 10.0 + i as f64));
        }
        let got = slow_queries();
        assert_eq!(got.len(), SLOW_LOG_CAPACITY);
        // Oldest entries were evicted; order is arrival order.
        assert_eq!(got.first().unwrap().statement, "q5");
        assert_eq!(
            got.last().unwrap().statement,
            format!("q{}", SLOW_LOG_CAPACITY + 4)
        );
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(got[0].rows, Some(7));
        assert!(got[0].plan.as_deref().unwrap().contains("actual rows=7"));
        reset_slow_log();
        assert!(slow_queries().is_empty());
    }

    #[test]
    fn capacity_is_configurable_and_evictions_are_counted() {
        let _guard = crate::testing::serial_guard();
        reset_slow_log();
        set_slow_log_capacity(4);
        assert_eq!(slow_log_capacity(), 4);
        let before = crate::registry().counter("slow_log_evictions_total").get();
        for i in 0..6 {
            record_slow_query(entry(&format!("c{i}"), 1.0));
        }
        let got = slow_queries();
        assert_eq!(got.len(), 4);
        assert_eq!(got.first().unwrap().statement, "c2");
        let after = crate::registry().counter("slow_log_evictions_total").get();
        assert_eq!(after - before, 2, "two evictions counted");
        // Shrinking evicts (and counts) immediately; 0 clamps to 1.
        set_slow_log_capacity(0);
        assert_eq!(slow_log_capacity(), 1);
        assert_eq!(slow_queries().len(), 1);
        assert_eq!(
            crate::registry().counter("slow_log_evictions_total").get() - after,
            3
        );
        reset_slow_log();
        set_slow_log_capacity(SLOW_LOG_CAPACITY);
    }
}
