//! Live activity: the in-flight observability and resource-governance
//! plane.
//!
//! Three cooperating pieces, all process-global and std-only:
//!
//! * **The activity registry** — every session registers an
//!   entry ([`register_session`]) describing what it is doing *right now*:
//!   backend kind, transaction state, current statement text +
//!   fingerprint, pipeline phase, start time, and live resource counters.
//!   The `snapshot_stat_activity` / `snapshot_stat_progress` virtual
//!   tables and the shell's `.activity` render [`sessions_snapshot`].
//! * **[`ResourceAccount`]** — a handful of relaxed atomics the engine
//!   bumps as it works (rows scanned/emitted, join pairs considered,
//!   index probes, approximate bytes materialized). Cheap enough to stay
//!   on while a statement runs, readable live from any thread.
//! * **[`CancelToken`]** — cooperative cancellation, checked by the
//!   engine at operator and batch boundaries (including inside parallel
//!   sweep-join workers). A statement dies when its wall-clock deadline
//!   passes (`statement_timeout`), a resource limit trips
//!   (`max_rows_scanned` / `max_result_rows`), or another session kills
//!   it ([`cancel_session`], surfaced as `.kill <id>` and
//!   `SELECT snapshot_cancel(<id>)`). The resulting error carries the
//!   [`CANCEL_ERROR_MARKER`] so callers ([`is_cancel_error`]) can tell a
//!   cancellation from a genuine statement failure — in particular the
//!   session's conflict-retry loop must *not* retry a cancelled
//!   statement.
//!
//! Cancelled statements and timeouts are counted in the metrics registry
//! (`statements_cancelled_total`, `statement_timeouts_total`) by the
//! session layer via [`note_cancellation`].

use crate::metrics::{process_start, LazyCounter};
use crate::stmtstats::fingerprint;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Every cancelled statement, whatever tripped it.
static STATEMENTS_CANCELLED: LazyCounter = LazyCounter::new("statements_cancelled_total");
/// The `statement_timeout` subset of cancellations.
static STATEMENT_TIMEOUTS: LazyCounter = LazyCounter::new("statement_timeouts_total");

/// The substring every cancellation error carries (the counterpart of the
/// transaction layer's conflict marker).
pub const CANCEL_ERROR_MARKER: &str = "statement cancelled";

/// Is `error` a cancellation (timeout, kill, resource limit)? Cancelled
/// statements must not be retried: the statement was aborted on purpose.
pub fn is_cancel_error(error: &str) -> bool {
    error.contains(CANCEL_ERROR_MARKER)
}

/// Why a statement was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// `statement_timeout` deadline passed.
    Timeout,
    /// Another session (or the shell) killed it explicitly.
    Killed,
    /// `max_rows_scanned` tripped.
    RowsScannedLimit,
    /// `max_result_rows` tripped.
    ResultRowsLimit,
}

impl CancelKind {
    fn code(self) -> u8 {
        match self {
            CancelKind::Timeout => 1,
            CancelKind::Killed => 2,
            CancelKind::RowsScannedLimit => 3,
            CancelKind::ResultRowsLimit => 4,
        }
    }

    fn from_code(code: u8) -> Option<CancelKind> {
        match code {
            1 => Some(CancelKind::Timeout),
            2 => Some(CancelKind::Killed),
            3 => Some(CancelKind::RowsScannedLimit),
            4 => Some(CancelKind::ResultRowsLimit),
            _ => None,
        }
    }

    /// Short reason text, stamped into errors and the slow log.
    pub fn reason(self) -> &'static str {
        match self {
            CancelKind::Timeout => "statement timeout",
            CancelKind::Killed => "killed by request",
            CancelKind::RowsScannedLimit => "max_rows_scanned exceeded",
            CancelKind::ResultRowsLimit => "max_result_rows exceeded",
        }
    }
}

/// Count one cancelled statement in the registry (called once per
/// cancelled statement by the session layer, never per worker).
pub fn note_cancellation(kind: CancelKind) {
    STATEMENTS_CANCELLED.inc();
    if kind == CancelKind::Timeout {
        STATEMENT_TIMEOUTS.inc();
    }
}

/// Nanoseconds since the process-wide epoch ([`process_start`]) — the
/// base every activity timestamp and deadline is expressed in.
fn now_ns() -> u64 {
    process_start().elapsed().as_nanos() as u64
}

/// Live resource counters for one running statement: relaxed atomics the
/// engine bumps at operator and batch boundaries, readable from any
/// thread while the statement runs.
#[derive(Debug, Default)]
pub struct ResourceAccount {
    rows_scanned: AtomicU64,
    rows_emitted: AtomicU64,
    join_pairs: AtomicU64,
    index_probes: AtomicU64,
    bytes_materialized: AtomicU64,
}

/// A point-in-time copy of a [`ResourceAccount`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Rows read out of stored (or virtual) tables.
    pub rows_scanned: u64,
    /// Rows produced by operators (every operator's output counts).
    pub rows_emitted: u64,
    /// Join pairs considered (emitted or filtered).
    pub join_pairs: u64,
    /// Temporal-index probes (sweep inputs, tree stabs, coalesce accels).
    pub index_probes: u64,
    /// Approximate bytes of intermediate rows materialized.
    pub bytes_materialized: u64,
}

impl ResourceAccount {
    /// Add `n` scanned rows.
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` emitted rows.
    pub fn add_rows_emitted(&self, n: u64) {
        self.rows_emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` considered join pairs.
    pub fn add_join_pairs(&self, n: u64) {
        self.join_pairs.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` index probes.
    pub fn add_index_probes(&self, n: u64) {
        self.index_probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` approximate materialized bytes.
    pub fn add_bytes_materialized(&self, n: u64) {
        self.bytes_materialized.fetch_add(n, Ordering::Relaxed);
    }

    /// Rows scanned so far.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Rows emitted so far.
    pub fn rows_emitted(&self) -> u64 {
        self.rows_emitted.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter.
    pub fn usage(&self) -> ResourceUsage {
        ResourceUsage {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_emitted: self.rows_emitted.load(Ordering::Relaxed),
            join_pairs: self.join_pairs.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            bytes_materialized: self.bytes_materialized.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (statement start).
    pub fn reset(&self) {
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.rows_emitted.store(0, Ordering::Relaxed);
        self.join_pairs.store(0, Ordering::Relaxed);
        self.index_probes.store(0, Ordering::Relaxed);
        self.bytes_materialized.store(0, Ordering::Relaxed);
    }
}

/// Per-statement cooperative cancellation state. The session arms it at
/// statement start ([`CancelToken::arm`]); the engine calls
/// [`CancelToken::check`] at operator and batch boundaries; anybody with
/// the session id can trip it through [`cancel_session`].
#[derive(Debug, Default)]
pub struct CancelToken {
    /// Cancellation reason code (0 = not cancelled; see
    /// [`CancelKind::code`]). The flag every check reads first.
    cancelled: AtomicU8,
    /// Deadline in nanoseconds since [`process_start`] (0 = none).
    deadline_ns: AtomicU64,
    /// Statement timeout in milliseconds, kept for the error text.
    timeout_ms: AtomicU64,
    /// Row-scan budget (0 = unlimited).
    max_rows_scanned: AtomicU64,
    /// Result-row budget (0 = unlimited).
    max_result_rows: AtomicU64,
}

impl CancelToken {
    /// Re-arm for a new statement: clear any previous cancellation, set
    /// the wall-clock deadline (`None` = no timeout) and resource limits
    /// (`None` = unlimited).
    pub fn arm(
        &self,
        timeout_ms: Option<u64>,
        max_rows_scanned: Option<u64>,
        max_result_rows: Option<u64>,
    ) {
        self.cancelled.store(0, Ordering::Release);
        let deadline = timeout_ms
            .filter(|&ms| ms > 0)
            .map(|ms| now_ns().saturating_add(ms.saturating_mul(1_000_000)))
            .unwrap_or(0);
        self.deadline_ns.store(deadline, Ordering::Relaxed);
        self.timeout_ms
            .store(timeout_ms.unwrap_or(0), Ordering::Relaxed);
        self.max_rows_scanned
            .store(max_rows_scanned.unwrap_or(0), Ordering::Relaxed);
        self.max_result_rows
            .store(max_result_rows.unwrap_or(0), Ordering::Relaxed);
    }

    /// Disarm (statement finished): a later `.kill` must not poison the
    /// session's *next* statement.
    pub fn disarm(&self) {
        self.deadline_ns.store(0, Ordering::Relaxed);
        self.max_rows_scanned.store(0, Ordering::Relaxed);
        self.max_result_rows.store(0, Ordering::Relaxed);
        self.cancelled.store(0, Ordering::Release);
    }

    /// Trip the token with `kind`. First writer wins; later trips keep
    /// the original reason.
    pub fn cancel(&self, kind: CancelKind) {
        let _ =
            self.cancelled
                .compare_exchange(0, kind.code(), Ordering::AcqRel, Ordering::Acquire);
    }

    /// Why the current statement was cancelled, if it was.
    pub fn cancel_kind(&self) -> Option<CancelKind> {
        CancelKind::from_code(self.cancelled.load(Ordering::Acquire))
    }

    /// The cancellation error for `kind`, carrying
    /// [`CANCEL_ERROR_MARKER`].
    fn error(&self, kind: CancelKind) -> String {
        match kind {
            CancelKind::Timeout => format!(
                "{CANCEL_ERROR_MARKER}: statement timeout ({} ms) exceeded",
                self.timeout_ms.load(Ordering::Relaxed)
            ),
            CancelKind::Killed => format!("{CANCEL_ERROR_MARKER}: killed by request"),
            CancelKind::RowsScannedLimit => format!(
                "{CANCEL_ERROR_MARKER}: max_rows_scanned ({}) exceeded",
                self.max_rows_scanned.load(Ordering::Relaxed)
            ),
            CancelKind::ResultRowsLimit => format!(
                "{CANCEL_ERROR_MARKER}: max_result_rows ({}) exceeded",
                self.max_result_rows.load(Ordering::Relaxed)
            ),
        }
    }

    /// The cooperative check: returns the cancellation error if the token
    /// was tripped, the deadline passed, or `account` exceeds a limit.
    /// Cheap when nothing is armed — three relaxed loads and (only with a
    /// deadline armed) one clock read.
    pub fn check(&self, account: &ResourceAccount) -> Result<(), String> {
        if let Some(kind) = self.cancel_kind() {
            return Err(self.error(kind));
        }
        let deadline = self.deadline_ns.load(Ordering::Relaxed);
        if deadline != 0 && now_ns() >= deadline {
            self.cancel(CancelKind::Timeout);
            return Err(self.error(CancelKind::Timeout));
        }
        let max_scanned = self.max_rows_scanned.load(Ordering::Relaxed);
        if max_scanned != 0 && account.rows_scanned() > max_scanned {
            self.cancel(CancelKind::RowsScannedLimit);
            return Err(self.error(CancelKind::RowsScannedLimit));
        }
        let max_result = self.max_result_rows.load(Ordering::Relaxed);
        if max_result != 0 && account.rows_emitted() > max_result {
            self.cancel(CancelKind::ResultRowsLimit);
            return Err(self.error(CancelKind::ResultRowsLimit));
        }
        Ok(())
    }
}

/// The pipeline phase a session is in, stored as one atomic byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Between statements.
    Idle,
    /// Parsing statement text.
    Parse,
    /// Binding names and types.
    Bind,
    /// `SEQ VT` rewrite / plan compilation.
    Rewrite,
    /// Lazy index repair.
    Index,
    /// Plan execution.
    Execute,
    /// Commit (validate, WAL, publish).
    Commit,
}

impl Phase {
    fn code(self) -> u8 {
        match self {
            Phase::Idle => 0,
            Phase::Parse => 1,
            Phase::Bind => 2,
            Phase::Rewrite => 3,
            Phase::Index => 4,
            Phase::Execute => 5,
            Phase::Commit => 6,
        }
    }

    fn from_code(code: u8) -> Phase {
        match code {
            1 => Phase::Parse,
            2 => Phase::Bind,
            3 => Phase::Rewrite,
            4 => Phase::Index,
            5 => Phase::Execute,
            6 => Phase::Commit,
            _ => Phase::Idle,
        }
    }

    /// The phase name as shown in `snapshot_stat_activity`.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Parse => "parse",
            Phase::Bind => "bind",
            Phase::Rewrite => "rewrite",
            Phase::Index => "index",
            Phase::Execute => "execute",
            Phase::Commit => "commit",
        }
    }
}

/// Session states shown in `snapshot_stat_activity`.
const STATE_IDLE: u8 = 0;
const STATE_ACTIVE: u8 = 1;

/// One live session's registry entry. Shared (`Arc`) between the owning
/// session, the engine's execution context, and snapshot readers.
#[derive(Debug)]
pub struct SessionEntry {
    id: u64,
    backend: &'static str,
    state: AtomicU8,
    in_txn: AtomicBool,
    phase: AtomicU8,
    /// Current (or most recent) statement text + fingerprint.
    statement: Mutex<Option<(String, String)>>,
    /// Peer address for server-backed sessions (`None` for local ones).
    remote_addr: Mutex<Option<String>>,
    /// When the current statement started, ns since [`process_start`]
    /// (0 = never ran one).
    statement_started_ns: AtomicU64,
    /// Statements this session has finished.
    statements_run: AtomicUsize,
    account: Arc<ResourceAccount>,
    token: Arc<CancelToken>,
}

impl SessionEntry {
    /// The session id (`.kill <id>` / `snapshot_cancel(<id>)` target).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// A point-in-time copy of one session's activity, as rendered by the
/// `snapshot_stat_activity` / `snapshot_stat_progress` virtual tables.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Session id.
    pub session_id: u64,
    /// Backend kind (`"owned"` or `"shared"`).
    pub backend: &'static str,
    /// Peer address (`host:port`) when the session serves a network
    /// client; `None` for local sessions.
    pub remote_addr: Option<String>,
    /// `"active"` (statement running) or `"idle"`.
    pub state: &'static str,
    /// Whether an explicit transaction is open.
    pub in_txn: bool,
    /// Current pipeline phase.
    pub phase: Phase,
    /// Current (or most recent) statement text.
    pub statement: Option<String>,
    /// The statement's normalized fingerprint.
    pub fingerprint: Option<String>,
    /// Milliseconds since the current statement started (for idle
    /// sessions: how long the last statement ran until now — `None` when
    /// the session never ran one).
    pub elapsed_ms: Option<f64>,
    /// Statements finished so far.
    pub statements_run: u64,
    /// Live resource counters of the current statement.
    pub usage: ResourceUsage,
}

type Registry = BTreeMap<u64, Arc<SessionEntry>>;

fn registry() -> crate::lock::LockGuard<'static, Registry> {
    static GLOBAL: OnceLock<Mutex<Registry>> = OnceLock::new();
    crate::lock::lock("obs.activity.registry", GLOBAL.get_or_init(Mutex::default))
}

fn next_session_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The owning side of a registry entry, held by the session; dropping it
/// deregisters the session.
#[derive(Debug)]
pub struct ActivityHandle {
    entry: Arc<SessionEntry>,
}

impl Drop for ActivityHandle {
    fn drop(&mut self) {
        registry().remove(&self.entry.id);
    }
}

impl ActivityHandle {
    /// This session's id.
    pub fn session_id(&self) -> u64 {
        self.entry.id
    }

    /// The statement's live resource counters (shared with the engine).
    pub fn account(&self) -> Arc<ResourceAccount> {
        Arc::clone(&self.entry.account)
    }

    /// The statement's cancellation token (shared with the engine).
    pub fn token(&self) -> Arc<CancelToken> {
        Arc::clone(&self.entry.token)
    }

    /// Statement start: record the text, reset the counters, and arm the
    /// token with the session's timeout and resource limits.
    pub fn begin_statement(
        &self,
        text: &str,
        timeout_ms: Option<u64>,
        max_rows_scanned: Option<u64>,
        max_result_rows: Option<u64>,
    ) {
        let fp = fingerprint(text);
        *crate::lock::lock("obs.activity.statement", &self.entry.statement) =
            Some((text.to_string(), fp));
        self.entry
            .statement_started_ns
            .store(now_ns(), Ordering::Relaxed);
        self.entry.account.reset();
        self.entry
            .token
            .arm(timeout_ms, max_rows_scanned, max_result_rows);
        self.entry
            .phase
            .store(Phase::Parse.code(), Ordering::Relaxed);
        self.entry.state.store(STATE_ACTIVE, Ordering::Release);
    }

    /// Statement end: back to idle (the statement text stays visible as
    /// "most recent"), and the token is disarmed so a late `.kill` cannot
    /// leak into the next statement.
    pub fn end_statement(&self) {
        self.entry.token.disarm();
        self.entry
            .phase
            .store(Phase::Idle.code(), Ordering::Relaxed);
        self.entry.state.store(STATE_IDLE, Ordering::Release);
        self.entry.statements_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Update the pipeline phase shown in `snapshot_stat_activity`.
    pub fn set_phase(&self, phase: Phase) {
        self.entry.phase.store(phase.code(), Ordering::Relaxed);
    }

    /// Update the transaction-state flag.
    pub fn set_in_txn(&self, in_txn: bool) {
        self.entry.in_txn.store(in_txn, Ordering::Relaxed);
    }

    /// Why the current statement was cancelled, if it was.
    pub fn cancel_kind(&self) -> Option<CancelKind> {
        self.entry.token.cancel_kind()
    }

    /// Stamp the peer address (`host:port`) of the network client this
    /// session serves. Shown as `remote_addr` in `snapshot_stat_activity`
    /// so `.kill <id>` / `snapshot_cancel(id)` work as an admin plane
    /// against remote connections.
    pub fn set_remote_addr(&self, addr: &str) {
        *crate::lock::lock("obs.activity.remote_addr", &self.entry.remote_addr) =
            Some(addr.to_string());
    }
}

/// Register a new live session of the given backend kind; the returned
/// handle deregisters it on drop. Touches the cancellation counters so
/// they exist in the registry (and its exposition) from the first
/// session on, not only after the first kill.
pub fn register_session(backend: &'static str) -> ActivityHandle {
    STATEMENTS_CANCELLED.add(0);
    STATEMENT_TIMEOUTS.add(0);
    let entry = Arc::new(SessionEntry {
        id: next_session_id(),
        backend,
        state: AtomicU8::new(STATE_IDLE),
        in_txn: AtomicBool::new(false),
        phase: AtomicU8::new(Phase::Idle.code()),
        statement: Mutex::new(None),
        remote_addr: Mutex::new(None),
        statement_started_ns: AtomicU64::new(0),
        statements_run: AtomicUsize::new(0),
        account: Arc::new(ResourceAccount::default()),
        token: Arc::new(CancelToken::default()),
    });
    registry().insert(entry.id, Arc::clone(&entry));
    ActivityHandle { entry }
}

/// Kill the statement running in session `id`: trips its cancel token,
/// and the statement unwinds at its next cooperative check. Returns
/// `true` if a running statement was cancelled; killing an idle (or
/// unknown) session is a clean no-op returning `false`.
pub fn cancel_session(id: u64) -> bool {
    let entry = match registry().get(&id) {
        Some(e) => Arc::clone(e),
        None => return false,
    };
    if entry.state.load(Ordering::Acquire) != STATE_ACTIVE {
        return false;
    }
    entry.token.cancel(CancelKind::Killed);
    true
}

/// A point-in-time copy of every live session, ascending by session id.
pub fn sessions_snapshot() -> Vec<SessionSnapshot> {
    let entries: Vec<Arc<SessionEntry>> = registry().values().cloned().collect();
    let now = now_ns();
    entries
        .iter()
        .map(|e| {
            let (statement, fingerprint) =
                crate::lock::lock("obs.activity.statement", &e.statement)
                    .clone()
                    .map(|(s, f)| (Some(s), Some(f)))
                    .unwrap_or((None, None));
            let started = e.statement_started_ns.load(Ordering::Relaxed);
            let remote_addr = crate::lock::lock("obs.activity.remote_addr", &e.remote_addr).clone();
            SessionSnapshot {
                session_id: e.id,
                backend: e.backend,
                remote_addr,
                state: if e.state.load(Ordering::Acquire) == STATE_ACTIVE {
                    "active"
                } else {
                    "idle"
                },
                in_txn: e.in_txn.load(Ordering::Relaxed),
                phase: Phase::from_code(e.phase.load(Ordering::Relaxed)),
                statement,
                fingerprint,
                elapsed_ms: (started > 0).then(|| now.saturating_sub(started) as f64 / 1e6),
                statements_run: e.statements_run.load(Ordering::Relaxed) as u64,
                usage: e.account.usage(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_snapshot_deregister() {
        let h = register_session("owned");
        let id = h.session_id();
        let snap = sessions_snapshot();
        let me = snap.iter().find(|s| s.session_id == id).expect("listed");
        assert_eq!(me.backend, "owned");
        assert_eq!(me.state, "idle");
        assert!(me.remote_addr.is_none());
        h.set_remote_addr("127.0.0.1:4777");
        let snap = sessions_snapshot();
        let me = snap.iter().find(|s| s.session_id == id).expect("listed");
        assert_eq!(me.remote_addr.as_deref(), Some("127.0.0.1:4777"));
        assert_eq!(me.phase, Phase::Idle);
        assert!(me.statement.is_none());
        assert!(me.elapsed_ms.is_none());
        h.begin_statement("SELECT x FROM t WHERE y = 7", None, None, None);
        h.set_phase(Phase::Execute);
        let snap = sessions_snapshot();
        let me = snap.iter().find(|s| s.session_id == id).expect("listed");
        assert_eq!(me.state, "active");
        assert_eq!(me.phase, Phase::Execute);
        assert_eq!(me.statement.as_deref(), Some("SELECT x FROM t WHERE y = 7"));
        assert_eq!(
            me.fingerprint.as_deref(),
            Some("select x from t where y = ?")
        );
        assert!(me.elapsed_ms.is_some());
        h.end_statement();
        drop(h);
        assert!(!sessions_snapshot().iter().any(|s| s.session_id == id));
    }

    #[test]
    fn token_trips_on_deadline_kill_and_limits() {
        let account = ResourceAccount::default();
        let token = CancelToken::default();
        token.arm(None, None, None);
        assert!(token.check(&account).is_ok());

        // Explicit kill.
        token.cancel(CancelKind::Killed);
        let err = token.check(&account).unwrap_err();
        assert!(is_cancel_error(&err), "{err}");
        assert!(err.contains("killed"), "{err}");
        assert_eq!(token.cancel_kind(), Some(CancelKind::Killed));
        // First reason sticks.
        token.cancel(CancelKind::Timeout);
        assert_eq!(token.cancel_kind(), Some(CancelKind::Killed));

        // Re-arming clears it.
        token.arm(Some(0), None, None); // 0 = no timeout
        assert!(token.check(&account).is_ok());

        // An already-passed deadline trips as a timeout.
        token.arm(Some(1), None, None);
        std::thread::sleep(std::time::Duration::from_millis(3));
        let err = token.check(&account).unwrap_err();
        assert!(err.contains("timeout"), "{err}");
        assert_eq!(token.cancel_kind(), Some(CancelKind::Timeout));

        // Resource limits.
        token.arm(None, Some(10), None);
        account.reset();
        account.add_rows_scanned(11);
        let err = token.check(&account).unwrap_err();
        assert!(err.contains("max_rows_scanned"), "{err}");
        token.arm(None, None, Some(5));
        account.reset();
        account.add_rows_emitted(6);
        let err = token.check(&account).unwrap_err();
        assert!(err.contains("max_result_rows"), "{err}");

        token.disarm();
        assert!(token.check(&account).is_ok());
    }

    #[test]
    fn cancel_session_is_a_no_op_on_idle_and_unknown_sessions() {
        let h = register_session("shared");
        let id = h.session_id();
        assert!(!cancel_session(id), "idle session: no-op");
        assert!(!cancel_session(u64::MAX), "unknown session: no-op");
        h.begin_statement("SELECT 1", None, None, None);
        assert!(cancel_session(id), "active session: cancelled");
        let err = h.token().check(&h.account()).unwrap_err();
        assert!(is_cancel_error(&err));
        h.end_statement();
        // The kill must not leak into the next statement.
        h.begin_statement("SELECT 2", None, None, None);
        assert!(h.token().check(&h.account()).is_ok());
        h.end_statement();
    }

    #[test]
    fn accounts_accumulate_and_reset() {
        let a = ResourceAccount::default();
        a.add_rows_scanned(5);
        a.add_rows_emitted(3);
        a.add_join_pairs(7);
        a.add_index_probes(2);
        a.add_bytes_materialized(640);
        let u = a.usage();
        assert_eq!(u.rows_scanned, 5);
        assert_eq!(u.rows_emitted, 3);
        assert_eq!(u.join_pairs, 7);
        assert_eq!(u.index_probes, 2);
        assert_eq!(u.bytes_materialized, 640);
        a.reset();
        assert_eq!(a.usage(), ResourceUsage::default());
    }
}
