//! Operator-level executor profiler: folded-stack wall-time attribution.
//!
//! The engine's dispatch loop brackets every operator it runs with a
//! [`ProfileSpan`]; the guard maintains a per-thread operator stack and,
//! on drop, attributes the frame's *self* time (inclusive elapsed minus
//! the time spent in child operators) to its full stack path — e.g.
//! `Aggregate;Split;Scan`. Paths accumulate in a process-global table
//! rendered by [`render_folded`] in the folded-stack format flamegraph
//! tooling consumes (`path value`, one line per path, values in
//! microseconds of self time).
//!
//! Like tracing, profiling is off by default: [`ProfileSpan::enter`] is a
//! single relaxed atomic load returning an inert guard when disabled, so
//! the engine can leave the instrumentation in its hot dispatch path.
//! Attribution is wall-clock on the dispatching thread — time the
//! parallel sweep join spends in worker threads lands as self time of the
//! join operator's frame, which is the per-operator share we want.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static PROFILING: AtomicBool = AtomicBool::new(false);

/// Globally enable or disable operator profiling.
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Is operator profiling enabled?
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Accumulated self time for one operator stack path.
#[derive(Debug, Clone)]
pub struct PathStat {
    /// `;`-joined operator names, root first (folded-stack convention).
    pub path: String,
    /// Number of frames folded into this path.
    pub samples: u64,
    /// Self time (exclusive of child operators), nanoseconds.
    pub self_ns: u64,
}

#[derive(Default)]
struct Accumulator {
    paths: HashMap<String, (u64, u64)>, // path -> (samples, self_ns)
}

fn accumulator() -> crate::lock::LockGuard<'static, Accumulator> {
    static GLOBAL: OnceLock<Mutex<Accumulator>> = OnceLock::new();
    crate::lock::lock("obs.profile", GLOBAL.get_or_init(Mutex::default))
}

/// RAII guard for one operator frame; see the module docs.
pub struct ProfileSpan {
    active: bool,
}

impl ProfileSpan {
    /// Push a frame named `name` onto this thread's operator stack. When
    /// profiling is disabled this is one relaxed atomic load and an inert
    /// guard.
    pub fn enter(name: &'static str) -> ProfileSpan {
        if !profiling_enabled() {
            return ProfileSpan { active: false };
        }
        STACK.with(|s| {
            s.borrow_mut().push(Frame {
                name,
                start: Instant::now(),
                child_ns: 0,
            });
        });
        ProfileSpan { active: true }
    }
}

impl Drop for ProfileSpan {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let (path, self_ns) = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let frame = s.pop().expect("profile stack underflow");
            let inclusive_ns = frame.start.elapsed().as_nanos() as u64;
            let self_ns = inclusive_ns.saturating_sub(frame.child_ns);
            let mut path = String::new();
            for f in s.iter() {
                path.push_str(f.name);
                path.push(';');
            }
            path.push_str(frame.name);
            if let Some(parent) = s.last_mut() {
                parent.child_ns += inclusive_ns;
            }
            (path, self_ns)
        });
        let mut acc = accumulator();
        let e = acc.paths.entry(path).or_insert((0, 0));
        e.0 += 1;
        e.1 += self_ns;
    }
}

/// Snapshot the accumulated paths, hottest (by self time) first; ties
/// break on the path text so the order is deterministic.
pub fn profile_stats() -> Vec<PathStat> {
    let acc = accumulator();
    let mut stats: Vec<PathStat> = acc
        .paths
        .iter()
        .map(|(path, &(samples, self_ns))| PathStat {
            path: path.clone(),
            samples,
            self_ns,
        })
        .collect();
    stats.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    stats
}

/// Render the accumulated profile in folded-stack format: one
/// `path value` line per path, values in integer microseconds of self
/// time (flamegraph tooling wants integers), hottest path first.
pub fn render_folded() -> String {
    let mut out = String::new();
    for stat in profile_stats() {
        let _ = writeln!(out, "{} {}", stat.path, stat.self_ns / 1_000);
    }
    out
}

/// Clear the accumulated profile (the enable switch is unaffected).
pub fn reset_profile() {
    accumulator().paths.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_for(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_profiling_is_inert() {
        set_profiling(false);
        reset_profile();
        {
            let _f = ProfileSpan::enter("noop");
        }
        assert!(profile_stats().is_empty());
    }

    #[test]
    fn self_time_excludes_children_and_paths_nest() {
        set_profiling(true);
        reset_profile();
        {
            let _root = ProfileSpan::enter("Aggregate");
            spin_for(200_000);
            {
                let _child = ProfileSpan::enter("Scan");
                spin_for(400_000);
            }
        }
        set_profiling(false);
        let stats = profile_stats();
        let find = |p: &str| {
            stats
                .iter()
                .find(|s| s.path == p)
                .unwrap_or_else(|| panic!("missing path {p}: {stats:?}"))
                .clone()
        };
        let root = find("Aggregate");
        let child = find("Aggregate;Scan");
        assert_eq!(root.samples, 1);
        assert_eq!(child.samples, 1);
        assert!(child.self_ns >= 400_000, "child self time: {child:?}");
        // Root's self time excludes the child's 400 µs.
        assert!(
            root.self_ns >= 200_000 && root.self_ns < 400_000,
            "root self time should exclude the child: {root:?}"
        );
        let folded = render_folded();
        assert!(folded.contains("Aggregate;Scan "));
        reset_profile();
        assert!(profile_stats().is_empty());
    }

    #[test]
    fn sibling_frames_fold_into_one_path() {
        set_profiling(true);
        reset_profile();
        {
            let _root = ProfileSpan::enter("Join");
            for _ in 0..3 {
                let _s = ProfileSpan::enter("Scan");
                spin_for(50_000);
            }
        }
        set_profiling(false);
        let stats = profile_stats();
        let scans = stats.iter().find(|s| s.path == "Join;Scan").unwrap();
        assert_eq!(scans.samples, 3);
        assert!(scans.self_ns >= 150_000);
        reset_profile();
    }
}
