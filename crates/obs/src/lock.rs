//! Named, order-checked, poison-recovering lock acquisition.
//!
//! Every long-lived `Mutex`/`RwLock` in the workspace is taken through
//! [`lock()`], [`read()`], or [`write()`], passing the lock's declared name. The
//! declared order lives in `docs/lock_order.md`, embedded here via
//! `include_str!` so the documentation and the runtime checker cannot
//! diverge — editing the table *is* editing the checker.
//!
//! In `debug_assertions` builds a thread-local stack of held ranks panics
//! on any acquisition that is undeclared or not strictly above every lock
//! already held by the thread. Release builds compile the bookkeeping out
//! and only keep poison recovery: a panic while holding a lock must not
//! cascade `PoisonError` panics into unrelated sessions or tests.
//!
//! The static half of this contract is `snapshot_lint`'s `lock-order` and
//! `bare-lock` rules, which force acquisitions through these helpers and
//! check the intra-function nesting graph against the same table.

use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// The declared-order document; the markdown table in it is parsed by
/// [`declared_ranks`].
pub const LOCK_ORDER_DOC: &str = include_str!("../../../docs/lock_order.md");

/// Name → rank for every declared lock, parsed from the markdown table in
/// `docs/lock_order.md` (rows of the form `| 3 | \`name\` | ... |`).
pub fn declared_ranks() -> &'static BTreeMap<&'static str, usize> {
    static RANKS: OnceLock<BTreeMap<&'static str, usize>> = OnceLock::new();
    RANKS.get_or_init(|| parse_ranks(LOCK_ORDER_DOC))
}

fn parse_ranks(doc: &str) -> BTreeMap<&str, usize> {
    let mut ranks = BTreeMap::new();
    for line in doc.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // `| 3 | `name` | ... |` splits into ["", "3", "`name`", ..., ""].
        let (Some(rank), Some(name)) = (cells.get(1), cells.get(2)) else {
            continue;
        };
        let Ok(rank) = rank.parse::<usize>() else {
            continue; // header and separator rows
        };
        ranks.insert(name.trim_matches('`'), rank);
    }
    ranks
}

#[cfg(debug_assertions)]
mod tracker {
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<(usize, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquire(name: &'static str) {
        let Some(&rank) = super::declared_ranks().get(name) else {
            panic!("lock `{name}` is not declared in docs/lock_order.md");
        };
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.iter().max_by_key(|&&(rank, _)| rank) {
                assert!(
                    rank > top_rank,
                    "lock order violation: acquiring `{name}` (rank {rank}) \
                     while holding `{top_name}` (rank {top_rank}); \
                     see docs/lock_order.md"
                );
            }
            held.push((rank, name));
        });
    }

    pub(super) fn release(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(_, n)| n == name) {
                held.remove(pos);
            }
        });
    }
}

macro_rules! guard_type {
    ($(#[$doc:meta])* $name:ident, $inner:ident, $($mutable:tt)?) => {
        $(#[$doc])*
        pub struct $name<'a, T: ?Sized> {
            inner: $inner<'a, T>,
            #[cfg(debug_assertions)]
            name: &'static str,
        }

        impl<T: ?Sized> Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        $(guard_type!(@$mutable $name);)?

        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                #[cfg(debug_assertions)]
                tracker::release(self.name);
            }
        }
    };
    (@mut $name:ident) => {
        impl<T: ?Sized> DerefMut for $name<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                &mut self.inner
            }
        }
    };
}

guard_type!(
    /// RAII guard for [`lock`]; derefs to the protected value.
    LockGuard, MutexGuard, mut
);
guard_type!(
    /// RAII guard for [`read`]; derefs to the protected value.
    ReadGuard, RwLockReadGuard,
);
guard_type!(
    /// RAII guard for [`write()`]; derefs to the protected value.
    WriteGuard, RwLockWriteGuard, mut
);

/// Acquires `mutex` as the declared lock `name`, recovering from poison.
///
/// Panics in debug builds if `name` is undeclared or any lock of equal or
/// higher rank is already held by this thread.
pub fn lock<'a, T: ?Sized>(name: &'static str, mutex: &'a Mutex<T>) -> LockGuard<'a, T> {
    #[cfg(debug_assertions)]
    tracker::acquire(name);
    #[cfg(not(debug_assertions))]
    let _ = name;
    LockGuard {
        inner: mutex.lock().unwrap_or_else(PoisonError::into_inner),
        #[cfg(debug_assertions)]
        name,
    }
}

/// Acquires `rwlock` for reading as the declared lock `name`.
pub fn read<'a, T: ?Sized>(name: &'static str, rwlock: &'a RwLock<T>) -> ReadGuard<'a, T> {
    #[cfg(debug_assertions)]
    tracker::acquire(name);
    #[cfg(not(debug_assertions))]
    let _ = name;
    ReadGuard {
        inner: rwlock.read().unwrap_or_else(PoisonError::into_inner),
        #[cfg(debug_assertions)]
        name,
    }
}

/// Acquires `rwlock` for writing as the declared lock `name`.
pub fn write<'a, T: ?Sized>(name: &'static str, rwlock: &'a RwLock<T>) -> WriteGuard<'a, T> {
    #[cfg(debug_assertions)]
    tracker::acquire(name);
    #[cfg(not(debug_assertions))]
    let _ = name;
    WriteGuard {
        inner: rwlock.write().unwrap_or_else(PoisonError::into_inner),
        #[cfg(debug_assertions)]
        name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_parse_from_the_doc() {
        let ranks = declared_ranks();
        assert_eq!(ranks.get("obs.test_serial"), Some(&0));
        assert_eq!(ranks.get("obs.metrics"), Some(&11));
        assert_eq!(ranks.get("txn.commit"), Some(&1));
        assert!(ranks.len() >= 12, "expected full table, got {ranks:?}");
        let mut seen = std::collections::BTreeSet::new();
        for (&name, &rank) in ranks {
            assert!(seen.insert(rank), "duplicate rank {rank} at `{name}`");
        }
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let poisoner = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = poisoner.lock();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock("obs.metrics", &m), 7);
    }

    #[test]
    fn in_order_nesting_is_allowed() {
        let outer = Mutex::new(());
        let inner = RwLock::new(());
        let _a = lock("txn.commit", &outer);
        let _b = read("txn.state", &inner);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn out_of_order_nesting_panics() {
        let result = std::thread::spawn(|| {
            let outer = RwLock::new(());
            let inner = Mutex::new(());
            let _a = write("obs.metrics", &outer);
            let _b = lock("txn.commit", &inner);
        })
        .join();
        assert!(result.is_err(), "rank 1 after rank 11 must panic");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn undeclared_lock_panics() {
        let result = std::thread::spawn(|| {
            let m = Mutex::new(());
            let _g = lock("nope.not_declared", &m);
        })
        .join();
        assert!(result.is_err(), "undeclared lock name must panic");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn release_reopens_the_rank_window() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _g = lock("obs.slowlog", &a);
        }
        // slowlog (8) released: taking server.conns (4) afterwards is legal.
        let _g = lock("server.conns", &b);
    }
}
