//! The global metrics registry: counters, gauges, and latency histograms.
//!
//! All recording paths are lock-free (relaxed atomics); the registry's
//! `RwLock` guards only the name → metric map, which hot paths touch once
//! ever via the [`LazyCounter`]/[`LazyHistogram`] handle types.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (e.g. live sessions, pinned snapshots).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// The default latency bucket bounds: 24 exponential buckets from 1 µs
/// doubling up to ~8.4 s, plus the implicit overflow (`+Inf`) bucket.
pub fn default_latency_bounds() -> Vec<f64> {
    (0..24).map(|i| 1e-6 * f64::from(1u32 << i)).collect()
}

/// A fixed-bucket histogram with atomic per-bucket counts.
///
/// Bounds are *upper* bounds (`value <= bound` lands in the bucket, the
/// Prometheus `le` convention); values above the last bound land in the
/// overflow bucket. The running sum is kept as CAS-updated `f64` bits, so
/// `sum()` is exact up to floating-point addition order.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Build a histogram over the given strictly increasing upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a duration, in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Start a timer whose `Drop` records the elapsed time.
    pub fn start_timer(self: &Arc<Self>) -> HistogramTimer {
        HistogramTimer {
            hist: Arc::clone(self),
            start: Instant::now(),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper bounds of the finite buckets.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the overflow
    /// bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket containing it. Returns `None` when empty. The
    /// overflow bucket has no upper bound, so quantiles falling there
    /// report the largest finite bound (the Prometheus convention).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if cum >= target {
                if i >= self.bounds.len() {
                    return Some(self.bounds[self.bounds.len() - 1]);
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let frac = if c == 0 {
                    1.0
                } else {
                    (target - prev) as f64 / c as f64
                };
                return Some(lower + (upper - lower) * frac);
            }
        }
        None
    }

    /// The (p50, p95, p99) latency estimates; `None` when empty.
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// RAII timer from [`Histogram::start_timer`]; records on drop.
pub struct HistogramTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.hist.observe_duration(self.start.elapsed());
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// A constant `1`-valued sample whose information lives in its labels
    /// (the Prometheus `build_info` idiom). Set once, never reset.
    Info(Arc<Vec<(String, String)>>),
}

/// A point-in-time reading of one registered metric, as produced by
/// [`MetricsRegistry::snapshot`] for introspection surfaces (the
/// `snapshot_stat_metrics` virtual table, primarily). Fields that do not
/// apply to the metric's kind are `None`.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Registered metric name.
    pub name: String,
    /// `"counter"`, `"gauge"`, `"histogram"`, or `"info"`.
    pub kind: &'static str,
    /// Counter/gauge current value (`1` for info metrics).
    pub value: Option<f64>,
    /// Histogram observation count.
    pub count: Option<u64>,
    /// Histogram observation sum.
    pub sum: Option<f64>,
    /// Histogram p50 estimate (when non-empty).
    pub p50: Option<f64>,
    /// Histogram p95 estimate (when non-empty).
    pub p95: Option<f64>,
    /// Histogram p99 estimate (when non-empty).
    pub p99: Option<f64>,
}

/// A named collection of metrics with Prometheus text exposition.
///
/// Registration is get-or-create by name; re-registering a name with a
/// different metric kind panics (a programming error, not a runtime
/// condition — names are `&'static str` at every call site).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry. Most callers want the process-global
    /// [`registry()`] instead.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = crate::lock::read("obs.metrics", &self.metrics).get(name)
        {
            return Arc::clone(c);
        }
        let mut map = crate::lock::write("obs.metrics", &self.metrics);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = crate::lock::read("obs.metrics", &self.metrics).get(name) {
            return Arc::clone(g);
        }
        let mut map = crate::lock::write("obs.metrics", &self.metrics);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name` with the default latency buckets.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &default_latency_bounds())
    }

    /// Get or create the histogram `name` with explicit bucket bounds
    /// (ignored if the histogram already exists).
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) =
            crate::lock::read("obs.metrics", &self.metrics).get(name)
        {
            return Arc::clone(h);
        }
        let mut map = crate::lock::write("obs.metrics", &self.metrics);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds.to_vec()))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Register the info metric `name` carrying `labels` (first writer
    /// wins; re-registering is a no-op, so callers can refresh freely).
    pub fn info(&self, name: &str, labels: &[(&str, &str)]) {
        let mut map = crate::lock::write("obs.metrics", &self.metrics);
        map.entry(name.to_string()).or_insert_with(|| {
            Metric::Info(Arc::new(
                labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            ))
        });
    }

    /// Look up an existing counter without creating it.
    pub fn get_counter(&self, name: &str) -> Option<Arc<Counter>> {
        match crate::lock::read("obs.metrics", &self.metrics).get(name) {
            Some(Metric::Counter(c)) => Some(Arc::clone(c)),
            _ => None,
        }
    }

    /// Look up an existing gauge without creating it.
    pub fn get_gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        match crate::lock::read("obs.metrics", &self.metrics).get(name) {
            Some(Metric::Gauge(g)) => Some(Arc::clone(g)),
            _ => None,
        }
    }

    /// Look up an existing histogram without creating it.
    pub fn get_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        match crate::lock::read("obs.metrics", &self.metrics).get(name) {
            Some(Metric::Histogram(h)) => Some(Arc::clone(h)),
            _ => None,
        }
    }

    /// Zero every registered metric (keeps registrations). For benches and
    /// tests that attribute deltas between workload phases.
    pub fn reset(&self) {
        for metric in crate::lock::read("obs.metrics", &self.metrics).values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
                Metric::Info(_) => {} // constant by design
            }
        }
    }

    /// Read every registered metric into a flat, name-sorted sample list.
    /// Histograms report count/sum and p50/p95/p99 estimates instead of
    /// raw buckets — the shape the `snapshot_stat_metrics` virtual table
    /// exposes.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let empty = MetricSample {
            name: String::new(),
            kind: "",
            value: None,
            count: None,
            sum: None,
            p50: None,
            p95: None,
            p99: None,
        };
        crate::lock::read("obs.metrics", &self.metrics)
            .iter()
            .map(|(name, metric)| {
                let mut s = MetricSample {
                    name: name.clone(),
                    ..empty.clone()
                };
                match metric {
                    Metric::Counter(c) => {
                        s.kind = "counter";
                        s.value = Some(c.get() as f64);
                    }
                    Metric::Gauge(g) => {
                        s.kind = "gauge";
                        s.value = Some(g.get() as f64);
                    }
                    Metric::Histogram(h) => {
                        s.kind = "histogram";
                        s.count = Some(h.count());
                        s.sum = Some(h.sum());
                        if let Some((p50, p95, p99)) = h.percentiles() {
                            s.p50 = Some(p50);
                            s.p95 = Some(p95);
                            s.p99 = Some(p99);
                        }
                    }
                    Metric::Info(_) => {
                        s.kind = "info";
                        s.value = Some(1.0);
                    }
                }
                s
            })
            .collect()
    }

    /// Render every metric in Prometheus text exposition format: a
    /// `# TYPE` comment per family, plain `name value` samples for
    /// counters/gauges, and cumulative `_bucket{le="…"}`/`_sum`/`_count`
    /// samples for histograms.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, metric) in crate::lock::read("obs.metrics", &self.metrics).iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate() {
                        cum += c;
                        if i < h.bounds().len() {
                            let _ =
                                writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", h.bounds()[i]);
                        } else {
                            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
                Metric::Info(labels) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let rendered: Vec<String> =
                        labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
                    let _ = writeln!(out, "{name}{{{}}} 1", rendered.join(","));
                }
            }
        }
        out
    }
}

/// The process-global registry every instrumented layer reports into.
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let _ = process_start(); // pin the uptime epoch at first telemetry
        MetricsRegistry::new()
    })
}

/// The process's observability epoch: the instant the registry (or this
/// function) was first touched. The base of `snapshot_uptime_seconds`.
pub fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Refresh the process-level metrics in the global registry: the
/// `snapshot_build_info` info gauge (crate version + build profile in its
/// labels) and the `snapshot_uptime_seconds` gauge. Render points (the
/// shell's `.metrics`, the observe bench, the stat virtual tables) call
/// this just before reading so the exposition is current.
pub fn refresh_process_metrics() {
    let reg = registry();
    reg.info(
        "snapshot_build_info",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            (
                "profile",
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                },
            ),
        ],
    );
    reg.gauge("snapshot_uptime_seconds")
        .set(process_start().elapsed().as_secs() as i64);
}

/// A counter handle pinned in a `static`: resolves its registry entry on
/// first use, after which every `inc`/`add` is a single relaxed atomic.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Declare a handle for the global counter `name`.
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &Counter {
        self.cell.get_or_init(|| registry().counter(self.name))
    }

    /// Add one.
    pub fn inc(&self) {
        self.get().inc();
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }
}

/// A histogram handle pinned in a `static` (default latency buckets);
/// resolves its registry entry on first use.
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Declare a handle for the global histogram `name`.
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn get(&self) -> &Arc<Histogram> {
        self.cell.get_or_init(|| registry().histogram(self.name))
    }

    /// Record one observation (seconds for latency histograms).
    pub fn observe(&self, v: f64) {
        self.get().observe(v);
    }

    /// Record a duration, in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.get().observe_duration(d);
    }

    /// Start an RAII timer that records on drop.
    pub fn start_timer(&self) -> HistogramTimer {
        self.get().start_timer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter("c_total").get(), 5, "get-or-create reuses");
        let g = reg.gauge("g");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_boundary_values_land_in_le_bucket() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        h.observe(1.0); // exactly on a bound: le semantics -> first bucket
        h.observe(1.000001);
        h.observe(2.0);
        h.observe(0.0);
        assert_eq!(h.bucket_counts(), vec![2, 2, 0, 0]);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::new(vec![1.0, 2.0]);
        h.observe(2.5);
        h.observe(1e9);
        assert_eq!(h.bucket_counts(), vec![0, 0, 2]);
        assert_eq!(h.count(), 2);
        // Quantiles in the overflow bucket report the largest finite bound.
        assert_eq!(h.quantile(0.99), Some(2.0));
    }

    #[test]
    fn histogram_quantile_extraction() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0, 8.0]);
        // 10 observations in (1, 2], 10 in (2, 4].
        for _ in 0..10 {
            h.observe(1.5);
        }
        for _ in 0..10 {
            h.observe(3.0);
        }
        // p50 = rank 10 = last of the first bucket -> its upper bound.
        assert_eq!(h.quantile(0.5), Some(2.0));
        // p100 -> upper bound of the second bucket.
        assert_eq!(h.quantile(1.0), Some(4.0));
        // p75 = rank 15 = halfway through the (2, 4] bucket.
        assert_eq!(h.quantile(0.75), Some(3.0));
        let (p50, p95, p99) = h.percentiles().unwrap();
        assert_eq!(p50, 2.0);
        assert!(p95 > 3.0 && p95 <= 4.0);
        assert!(p99 > p95 - 1e9 && p99 <= 4.0);
    }

    #[test]
    fn histogram_empty_quantile_is_none() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.percentiles().is_none());
    }

    #[test]
    fn histogram_sum_and_duration() {
        let h = Histogram::new(vec![1.0]);
        h.observe(0.25);
        h.observe_duration(Duration::from_millis(250));
        assert!((h.sum() - 0.5).abs() < 1e-12);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn default_bounds_are_strictly_increasing() {
        let b = default_latency_bounds();
        assert_eq!(b.len(), 24);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!((b[0] - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn render_text_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(3);
        reg.gauge("b").set(-2);
        let h = reg.histogram_with("lat_seconds", &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.5);
        let text = reg.render_text();
        assert!(text.contains("# TYPE a_total counter\na_total 3\n"));
        assert!(text.contains("# TYPE b gauge\nb -2\n"));
        assert!(text.contains("lat_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_seconds_count 2"));
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total").add(9);
        reg.histogram_with("y_seconds", &[1.0]).observe(0.5);
        reg.reset();
        assert_eq!(reg.get_counter("x_total").unwrap().get(), 0);
        assert_eq!(reg.get_histogram("y_seconds").unwrap().count(), 0);
    }

    #[test]
    fn info_metric_renders_labels_and_survives_reset() {
        let reg = MetricsRegistry::new();
        reg.info(
            "demo_build_info",
            &[("version", "1.2.3"), ("profile", "release")],
        );
        reg.info("demo_build_info", &[("version", "9.9.9")]); // no-op
        let text = reg.render_text();
        assert!(text.contains("# TYPE demo_build_info gauge"));
        assert!(text.contains("demo_build_info{version=\"1.2.3\",profile=\"release\"} 1"));
        reg.reset();
        assert!(reg.render_text().contains("version=\"1.2.3\""));
    }

    #[test]
    fn snapshot_reads_every_kind() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").add(3);
        reg.gauge("b").set(-2);
        reg.histogram_with("lat_seconds", &[0.001, 0.01])
            .observe(0.0005);
        reg.info("c_info", &[("k", "v")]);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 4);
        let find = |n: &str| snap.iter().find(|s| s.name == n).unwrap();
        assert_eq!(find("a_total").kind, "counter");
        assert_eq!(find("a_total").value, Some(3.0));
        assert_eq!(find("b").value, Some(-2.0));
        let h = find("lat_seconds");
        assert_eq!(h.kind, "histogram");
        assert_eq!(h.count, Some(1));
        assert!(h.p95.is_some());
        assert!(h.value.is_none());
        assert_eq!(find("c_info").value, Some(1.0));
    }

    #[test]
    fn process_metrics_refresh_into_the_global_registry() {
        refresh_process_metrics();
        let text = registry().render_text();
        assert!(text.contains("snapshot_build_info{version=\""));
        assert!(text.contains("# TYPE snapshot_uptime_seconds gauge"));
        assert!(
            registry()
                .get_gauge("snapshot_uptime_seconds")
                .unwrap()
                .get()
                >= 0
        );
    }

    #[test]
    fn lazy_handles_hit_the_global_registry() {
        static C: LazyCounter = LazyCounter::new("obs_test_lazy_total");
        static H: LazyHistogram = LazyHistogram::new("obs_test_lazy_seconds");
        C.add(2);
        H.observe(0.001);
        assert!(registry().get_counter("obs_test_lazy_total").unwrap().get() >= 2);
        assert!(
            registry()
                .get_histogram("obs_test_lazy_seconds")
                .unwrap()
                .count()
                >= 1
        );
    }
}
