//! Lightweight tracing spans with per-thread ring buffers.
//!
//! [`Span::enter`] is the only instrumentation call sites need: it returns
//! an RAII guard that records `(name, depth, duration, rows)` into a
//! bounded thread-local ring buffer when the guard drops. The global
//! tracing switch is a single relaxed atomic — when off, `Span::enter`
//! reads it and returns an inert guard without touching the clock or the
//! thread-local, so instrumentation left in hot paths costs one predictable
//! branch.
//!
//! The session layer brackets each statement with [`reset_thread_trace`] /
//! [`take_thread_trace`]; the latter assembles the ring into a [`SpanTree`]
//! (spans from worker threads of the parallel join land in *their* threads'
//! rings and are not part of the statement's tree — the sequential spine is
//! what the tree shows).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Ring capacity per thread; the oldest records are dropped beyond this.
const RING_CAPACITY: usize = 4096;

/// Globally enable or disable span recording.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Is span recording enabled?
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// One completed span, as stored in the ring buffer.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (a static label like `"execute"` or an operator name).
    pub name: &'static str,
    /// Enter order on this thread since the last reset (pre-order key).
    pub seq: u64,
    /// Nesting depth at enter time (0 = root).
    pub depth: u32,
    /// Start offset from the thread's trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration, in nanoseconds (inclusive of children).
    pub dur_ns: u64,
    /// Row count annotation, if the span recorded one.
    pub rows: Option<u64>,
}

/// Per-thread trace state. The scalar fields live in `Cell`s so the
/// enter-side hot path (seq/depth bump) is plain loads and stores with no
/// `RefCell` borrow-flag traffic; only the ring push on drop borrows.
struct ThreadTrace {
    epoch: Cell<Instant>,
    next_seq: Cell<u64>,
    depth: Cell<u32>,
    ring: RefCell<VecDeque<SpanRecord>>,
    dropped: Cell<u64>,
}

impl ThreadTrace {
    fn new() -> Self {
        ThreadTrace {
            epoch: Cell::new(Instant::now()),
            next_seq: Cell::new(0),
            depth: Cell::new(0),
            ring: RefCell::new(VecDeque::new()),
            dropped: Cell::new(0),
        }
    }
}

thread_local! {
    static TRACE: ThreadTrace = ThreadTrace::new();
}

/// Clear this thread's ring buffer and restart the trace epoch. Call at
/// the start of the unit of work (e.g. one SQL statement).
pub fn reset_thread_trace() {
    TRACE.with(|t| {
        t.epoch.set(Instant::now());
        t.next_seq.set(0);
        t.depth.set(0);
        t.ring.borrow_mut().clear();
        t.dropped.set(0);
    });
}

/// An RAII span guard; see [`Span::enter`].
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    seq: u64,
    depth: u32,
    rows: Option<u64>,
}

impl Span {
    /// Enter a span named `name`. When tracing is disabled this returns an
    /// inert guard after one relaxed atomic load.
    pub fn enter(name: &'static str) -> Span {
        if !tracing_enabled() {
            return Span { active: None };
        }
        let (seq, depth) = TRACE.with(|t| {
            let seq = t.next_seq.get();
            t.next_seq.set(seq + 1);
            let depth = t.depth.get();
            t.depth.set(depth + 1);
            (seq, depth)
        });
        Span {
            active: Some(ActiveSpan {
                name,
                start: Instant::now(),
                seq,
                depth,
                rows: None,
            }),
        }
    }

    /// Annotate the span with an output row count.
    pub fn record_rows(&mut self, rows: u64) {
        if let Some(a) = &mut self.active {
            a.rows = Some(rows);
        }
    }

    /// Is this guard actually recording?
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        TRACE.with(|t| {
            t.depth.set(t.depth.get().saturating_sub(1));
            let start_ns = a.start.duration_since(t.epoch.get()).as_nanos() as u64;
            let mut ring = t.ring.borrow_mut();
            if ring.len() == RING_CAPACITY {
                ring.pop_front();
                t.dropped.set(t.dropped.get() + 1);
            }
            ring.push_back(SpanRecord {
                name: a.name,
                seq: a.seq,
                depth: a.depth,
                start_ns,
                dur_ns,
                rows: a.rows,
            });
        });
    }
}

/// One node of an assembled span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// Duration in nanoseconds (inclusive of children).
    pub dur_ns: u64,
    /// Row count annotation, if any.
    pub rows: Option<u64>,
    /// Child spans, in enter order.
    pub children: Vec<SpanNode>,
}

/// A per-query span tree assembled from one thread's ring buffer.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// Top-level spans, in enter order.
    pub roots: Vec<SpanNode>,
    /// Records lost to the bounded ring (oldest-first eviction).
    pub dropped: u64,
}

impl SpanTree {
    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Render the tree as indented text, durations in milliseconds.
    pub fn render(&self) -> String {
        fn walk(out: &mut String, node: &SpanNode, depth: usize) {
            let _ = write!(
                out,
                "{:indent$}{} {:.3} ms",
                "",
                node.name,
                node.dur_ns as f64 / 1e6,
                indent = depth * 2
            );
            if let Some(rows) = node.rows {
                let _ = write!(out, " rows={rows}");
            }
            out.push('\n');
            for child in &node.children {
                walk(out, child, depth + 1);
            }
        }
        let mut out = String::new();
        for root in &self.roots {
            walk(&mut out, root, 0);
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} span records dropped)", self.dropped);
        }
        out
    }
}

/// Drain this thread's ring buffer into a [`SpanTree`] (and clear it).
pub fn take_thread_trace() -> SpanTree {
    let (records, dropped) = TRACE.with(|t| {
        let records: Vec<SpanRecord> = t.ring.borrow_mut().drain(..).collect();
        let dropped = t.dropped.get();
        t.dropped.set(0);
        (records, dropped)
    });
    SpanTree {
        roots: assemble(records),
        dropped,
    }
}

/// Build the nesting from completed records: sorting by `seq` recovers
/// pre-order; a record at depth `d` is a child of the most recent record
/// at depth `d - 1`.
fn assemble(mut records: Vec<SpanRecord>) -> Vec<SpanNode> {
    records.sort_by_key(|r| r.seq);
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<(u32, SpanNode)> = Vec::new();

    fn close(roots: &mut Vec<SpanNode>, stack: &mut Vec<(u32, SpanNode)>) {
        if let Some((_, node)) = stack.pop() {
            match stack.last_mut() {
                Some((_, parent)) => parent.children.push(node),
                None => roots.push(node),
            }
        }
    }

    for r in records {
        while stack.last().is_some_and(|(d, _)| *d >= r.depth) {
            close(&mut roots, &mut stack);
        }
        stack.push((
            r.depth,
            SpanNode {
                name: r.name,
                dur_ns: r.dur_ns,
                rows: r.rows,
                children: Vec::new(),
            },
        ));
    }
    while !stack.is_empty() {
        close(&mut roots, &mut stack);
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        set_tracing(false);
        reset_thread_trace();
        {
            let mut s = Span::enter("noop");
            assert!(!s.is_active());
            s.record_rows(3);
        }
        assert!(take_thread_trace().is_empty());
    }

    #[test]
    fn spans_assemble_into_a_tree() {
        set_tracing(true);
        reset_thread_trace();
        {
            let _stmt = Span::enter("statement");
            {
                let _parse = Span::enter("parse");
            }
            {
                let mut exec = Span::enter("execute");
                exec.record_rows(42);
                {
                    let _scan = Span::enter("Scan");
                }
            }
        }
        set_tracing(false);
        let tree = take_thread_trace();
        assert_eq!(tree.dropped, 0);
        assert_eq!(tree.roots.len(), 1);
        let stmt = &tree.roots[0];
        assert_eq!(stmt.name, "statement");
        assert_eq!(stmt.children.len(), 2);
        assert_eq!(stmt.children[0].name, "parse");
        assert_eq!(stmt.children[1].name, "execute");
        assert_eq!(stmt.children[1].rows, Some(42));
        assert_eq!(stmt.children[1].children[0].name, "Scan");
        let text = tree.render();
        assert!(text.contains("statement"));
        assert!(text.contains("rows=42"));
        assert!(text.contains("  parse"));
    }

    #[test]
    fn sibling_order_is_enter_order() {
        set_tracing(true);
        reset_thread_trace();
        {
            let _root = Span::enter("root");
            for _ in 0..3 {
                let _child = Span::enter("child");
            }
        }
        set_tracing(false);
        let tree = take_thread_trace();
        assert_eq!(tree.roots[0].children.len(), 3);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        set_tracing(true);
        reset_thread_trace();
        {
            let _root = Span::enter("root");
            for _ in 0..(RING_CAPACITY + 10) {
                let _s = Span::enter("leaf");
            }
        }
        set_tracing(false);
        let tree = take_thread_trace();
        assert!(tree.dropped >= 10, "oldest records must be evicted");
        let total: usize = {
            fn count(n: &SpanNode) -> usize {
                1 + n.children.iter().map(count).sum::<usize>()
            }
            tree.roots.iter().map(count).sum()
        };
        assert!(total <= RING_CAPACITY);
    }
}
