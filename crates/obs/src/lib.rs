//! Observability subsystem: metrics, tracing, and introspection state.
//!
//! The runtime now spans seven layers (parse → bind → rewrite → indexed
//! execute → txn → WAL → checkpoint) and this crate is their single
//! telemetry story. It is hand-rolled over `std` only — the build
//! environment has no registry access, so no `prometheus`/`tracing`
//! dependencies — and deliberately sits at the *bottom* of the workspace
//! dependency graph so that every layer (index, engine, txn, wal, session)
//! can report into it.
//!
//! Six facilities:
//!
//! * [`metrics`] — a global, thread-safe [`MetricsRegistry`] of atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s
//!   (p50/p95/p99 extraction), rendered in Prometheus text exposition
//!   format by [`MetricsRegistry::render_text`] and readable in bulk via
//!   [`MetricsRegistry::snapshot`]. Recording is always-on and lock-free —
//!   a handful of relaxed atomic operations — so there is no "metrics off"
//!   switch to get wrong; hot paths pin their handles in
//!   [`LazyCounter`]/[`LazyHistogram`] statics so the registry lock is
//!   touched once per process, not per event.
//! * [`trace`] — lightweight tracing spans: [`Span::enter`] returns an
//!   RAII guard that, *when tracing is enabled*, records its lifetime into
//!   a bounded per-thread ring buffer; [`take_thread_trace`] assembles the
//!   buffer into a per-query span tree. When tracing is disabled (the
//!   default) `Span::enter` is a single relaxed atomic load returning an
//!   inert guard — no clock read, no allocation.
//! * [`stmtstats`] — pg_stat_statements-style statement statistics:
//!   normalized query [`fingerprint`]s with per-fingerprint calls, rows,
//!   and total/mean/p95 latency in a bounded LRU.
//! * [`slowlog`] — a bounded ring of statements that crossed the session's
//!   slow-query threshold, with phase splits and operator actuals.
//! * [`profile`] — the operator-level executor profiler:
//!   [`ProfileSpan::enter`] maintains a per-thread operator stack and
//!   attributes self wall time to folded stack paths
//!   ([`render_folded`] emits flamegraph-compatible output).
//! * [`activity`] — the in-flight plane: a registry of live sessions and
//!   their current statement (phase, start time, live [`ResourceAccount`]
//!   counters), plus cooperative cancellation via per-statement
//!   [`CancelToken`]s (statement timeouts, resource limits, explicit
//!   kills). Feeds the `snapshot_stat_activity` and
//!   `snapshot_stat_progress` virtual tables and the shell's `.activity`.
//!
//! # Testing against process-global state
//!
//! The registry, statement stats, slow log, and profiler are process
//! globals, and `cargo test` runs tests in parallel threads — a test that
//! asserts an *absolute* counter value races with its neighbours. The
//! convention, used throughout this workspace:
//!
//! * Prefer **delta assertions** on metric values (`get()` before, assert
//!   `>` after) over absolute equality, and tolerate concurrent bumps.
//! * When a test needs exclusive access to global observability state
//!   (absolute equality, `reset()`, toggling tracing/profiling), take
//!   [`testing::serial_guard()`] for its whole body so such tests
//!   serialize against each other.
//! * For statement stats, use table/column names unique to the test so
//!   its fingerprints cannot collide with other tests' statements.

pub mod activity;
pub mod lock;
pub mod metrics;
pub mod profile;
pub mod slowlog;
pub mod stmtstats;
pub mod trace;

pub use activity::{
    cancel_session, is_cancel_error, note_cancellation, register_session, sessions_snapshot,
    ActivityHandle, CancelKind, CancelToken, Phase, ResourceAccount, ResourceUsage,
    SessionSnapshot, CANCEL_ERROR_MARKER,
};
pub use lock::{LockGuard, ReadGuard, WriteGuard};
pub use metrics::{
    default_latency_bounds, process_start, refresh_process_metrics, registry, Counter, Gauge,
    Histogram, LazyCounter, LazyHistogram, MetricSample, MetricsRegistry,
};
pub use profile::{
    profile_stats, profiling_enabled, render_folded, reset_profile, set_profiling, PathStat,
    ProfileSpan,
};
pub use slowlog::{
    record_slow_query, reset_slow_log, set_slow_log_capacity, slow_log_capacity, slow_queries,
    SlowQuery, SLOW_LOG_CAPACITY,
};
pub use stmtstats::{
    fingerprint, record_statement, reset_statement_stats, statement_stats, StatementStat,
    FINGERPRINT_CAPACITY,
};
pub use trace::{
    reset_thread_trace, set_tracing, take_thread_trace, tracing_enabled, Span, SpanNode,
    SpanRecord, SpanTree,
};

/// Test-support utilities; see the crate docs' *Testing against
/// process-global state* section.
pub mod testing {
    use std::sync::{Mutex, OnceLock};

    /// A process-global lock serializing tests that need exclusive access
    /// to global observability state (absolute-value assertions, registry
    /// resets, tracing/profiling toggles). A panic while holding the
    /// guard poisons nothing observable — the lock is recovered. Declared
    /// as `obs.test_serial` (rank 0): it is held across whole test bodies,
    /// so it must be outermost in `docs/lock_order.md`.
    pub fn serial_guard() -> crate::lock::LockGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        crate::lock::lock("obs.test_serial", LOCK.get_or_init(Mutex::default))
    }
}
