//! Observability subsystem: metrics and tracing for the whole pipeline.
//!
//! The runtime now spans seven layers (parse → bind → rewrite → indexed
//! execute → txn → WAL → checkpoint) and this crate is their single
//! telemetry story. It is hand-rolled over `std` only — the build
//! environment has no registry access, so no `prometheus`/`tracing`
//! dependencies — and deliberately sits at the *bottom* of the workspace
//! dependency graph so that every layer (index, engine, txn, wal, session)
//! can report into it.
//!
//! Two facilities:
//!
//! * [`metrics`] — a global, thread-safe [`MetricsRegistry`] of atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s
//!   (p50/p95/p99 extraction), rendered in Prometheus text exposition
//!   format by [`MetricsRegistry::render_text`]. Recording is always-on
//!   and lock-free — a handful of relaxed atomic operations — so there is
//!   no "metrics off" switch to get wrong; hot paths pin their handles in
//!   [`LazyCounter`]/[`LazyHistogram`] statics so the registry lock is
//!   touched once per process, not per event.
//! * [`trace`] — lightweight tracing spans: [`Span::enter`] returns an
//!   RAII guard that, *when tracing is enabled*, records its lifetime into
//!   a bounded per-thread ring buffer; [`take_thread_trace`] assembles the
//!   buffer into a per-query span tree. When tracing is disabled (the
//!   default) `Span::enter` is a single relaxed atomic load returning an
//!   inert guard — no clock read, no allocation.

pub mod metrics;
pub mod trace;

pub use metrics::{
    default_latency_bounds, registry, Counter, Gauge, Histogram, LazyCounter, LazyHistogram,
    MetricsRegistry,
};
pub use trace::{
    reset_thread_trace, set_tracing, take_thread_trace, tracing_enabled, Span, SpanNode,
    SpanRecord, SpanTree,
};
