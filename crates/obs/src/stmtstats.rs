//! Statement fingerprint statistics (pg_stat_statements-style).
//!
//! Every executed statement is folded to a *fingerprint* — literals
//! stripped, whitespace runs collapsed, case folded — and accumulated in a
//! process-global, bounded collector keyed by fingerprint: calls, rows
//! returned, total wall time, and a latency [`Histogram`] for p95
//! extraction. The collector is a least-recently-used map capped at
//! [`FINGERPRINT_CAPACITY`] distinct fingerprints so a pathological
//! workload of unique statement *shapes* (not unique literals — those
//! share a fingerprint) cannot grow it without bound.
//!
//! The session layer calls [`record_statement`] after each successful
//! statement; the `snapshot_stat_statements` virtual table and tests read
//! back via [`statement_stats`]. Stats live in memory only — they reset
//! with the process, never with the database files.

use crate::metrics::{default_latency_bounds, Histogram, LazyCounter};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Maximum number of distinct fingerprints retained (LRU eviction beyond).
pub const FINGERPRINT_CAPACITY: usize = 256;

/// Fingerprints evicted from the LRU under capacity pressure. A non-zero
/// value means `snapshot_stat_statements` is missing shapes — the
/// workload ran more than [`FINGERPRINT_CAPACITY`] distinct statement
/// shapes and the coldest were dropped.
static STMT_STATS_EVICTIONS: LazyCounter = LazyCounter::new("stmt_stats_evictions_total");

/// Normalize a SQL statement into its fingerprint: string and numeric
/// literals become `?`, whitespace runs collapse to one space, letters
/// fold to lower case, and any trailing `;` is dropped. Digits that are
/// part of an identifier (`t1`, `x_2`) survive.
pub fn fingerprint(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\'' {
            // String literal; '' is the escaped quote.
            while let Some(c2) = chars.next() {
                if c2 == '\'' {
                    if chars.peek() == Some(&'\'') {
                        chars.next();
                    } else {
                        break;
                    }
                }
            }
            out.push('?');
        } else if c.is_ascii_digit()
            && !out
                .chars()
                .last()
                .is_some_and(|p| p.is_ascii_alphanumeric() || p == '_' || p == '?')
        {
            // Numeric literal: digits, fraction, optional exponent.
            while chars
                .peek()
                .is_some_and(|&c2| c2.is_ascii_digit() || c2 == '.')
            {
                chars.next();
            }
            if chars.peek().is_some_and(|&c2| c2 == 'e' || c2 == 'E') {
                let mut ahead = chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&c2| c2 == '+' || c2 == '-') {
                    ahead.next();
                }
                if ahead.peek().is_some_and(char::is_ascii_digit) {
                    chars.next();
                    if chars.peek().is_some_and(|&c2| c2 == '+' || c2 == '-') {
                        chars.next();
                    }
                    while chars.peek().is_some_and(char::is_ascii_digit) {
                        chars.next();
                    }
                }
            }
            out.push('?');
        } else if c.is_whitespace() {
            if !out.is_empty() && !out.ends_with(' ') {
                out.push(' ');
            }
        } else {
            out.push(c.to_ascii_lowercase());
        }
    }
    out.trim().trim_end_matches(';').trim_end().to_string()
}

/// One fingerprint's accumulated statistics, as read back by
/// [`statement_stats`].
#[derive(Debug, Clone)]
pub struct StatementStat {
    /// The normalized statement shape.
    pub fingerprint: String,
    /// Number of executions.
    pub calls: u64,
    /// Total rows returned (queries only; DML counts zero).
    pub rows: u64,
    /// Total wall time across all calls, in seconds.
    pub total_seconds: f64,
    /// `total_seconds / calls`.
    pub mean_seconds: f64,
    /// p95 latency estimate from the per-fingerprint histogram.
    pub p95_seconds: Option<f64>,
}

struct Entry {
    calls: u64,
    rows: u64,
    total_seconds: f64,
    hist: Histogram,
    last_used: u64,
}

#[derive(Default)]
struct Collector {
    map: HashMap<String, Entry>,
    clock: u64,
}

fn collector() -> crate::lock::LockGuard<'static, Collector> {
    static GLOBAL: OnceLock<Mutex<Collector>> = OnceLock::new();
    crate::lock::lock("obs.stmtstats", GLOBAL.get_or_init(Mutex::default))
}

/// Record one executed statement: `rows` is the result cardinality for
/// queries (`None` for DML/DDL), `seconds` the statement's total wall time.
pub fn record_statement(sql: &str, rows: Option<u64>, seconds: f64) {
    let fp = fingerprint(sql);
    if fp.is_empty() {
        return;
    }
    let mut c = collector();
    c.clock += 1;
    let now = c.clock;
    if !c.map.contains_key(&fp) && c.map.len() >= FINGERPRINT_CAPACITY {
        if let Some(victim) = c
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            c.map.remove(&victim);
            STMT_STATS_EVICTIONS.inc();
        }
    }
    let e = c.map.entry(fp).or_insert_with(|| Entry {
        calls: 0,
        rows: 0,
        total_seconds: 0.0,
        hist: Histogram::new(default_latency_bounds()),
        last_used: now,
    });
    e.calls += 1;
    e.rows += rows.unwrap_or(0);
    e.total_seconds += seconds;
    e.hist.observe(seconds);
    e.last_used = now;
}

/// Snapshot every retained fingerprint, hottest (by total time) first;
/// ties break on the fingerprint text so the order is deterministic.
pub fn statement_stats() -> Vec<StatementStat> {
    let c = collector();
    let mut stats: Vec<StatementStat> = c
        .map
        .iter()
        .map(|(fp, e)| StatementStat {
            fingerprint: fp.clone(),
            calls: e.calls,
            rows: e.rows,
            total_seconds: e.total_seconds,
            mean_seconds: e.total_seconds / e.calls as f64,
            p95_seconds: e.hist.quantile(0.95),
        })
        .collect();
    stats.sort_by(|a, b| {
        b.total_seconds
            .partial_cmp(&a.total_seconds)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.fingerprint.cmp(&b.fingerprint))
    });
    stats
}

/// Drop every retained fingerprint (benches and tests).
pub fn reset_statement_stats() {
    collector().map.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_strips_literals_and_folds() {
        assert_eq!(
            fingerprint("SELECT * FROM t WHERE x = 42 AND name = 'Ann';"),
            "select * from t where x = ? and name = ?"
        );
        assert_eq!(
            fingerprint("INSERT INTO works VALUES ('Joe', 'NS', 8, 16)"),
            "insert into works values (?, ?, ?, ?)"
        );
        // Same shape, different literals -> same fingerprint.
        assert_eq!(
            fingerprint("SELECT x FROM t WHERE ts < 10"),
            fingerprint("select   x from t\nwhere ts < 99")
        );
    }

    #[test]
    fn fingerprint_keeps_identifier_digits() {
        assert_eq!(fingerprint("SELECT x1 FROM t2"), "select x1 from t2");
        assert_eq!(fingerprint("SELECT a_1 FROM t"), "select a_1 from t");
        // But a number after whitespace or punctuation is a literal.
        assert_eq!(
            fingerprint("SEQ VT AS OF 9 (SELECT x FROM t)"),
            "seq vt as of ? (select x from t)"
        );
        assert_eq!(fingerprint("VALUES (1.5e3, 2)"), "values (?, ?)");
    }

    #[test]
    fn fingerprint_handles_escaped_quotes() {
        assert_eq!(
            fingerprint("SELECT * FROM t WHERE s = 'it''s'"),
            "select * from t where s = ?"
        );
    }

    #[test]
    fn collector_accumulates_and_is_bounded() {
        reset_statement_stats();
        record_statement("SELECT x FROM stmtstats_t WHERE y = 1", Some(3), 0.010);
        record_statement("SELECT x FROM stmtstats_t WHERE y = 2", Some(5), 0.030);
        let stats = statement_stats();
        let s = stats
            .iter()
            .find(|s| s.fingerprint == "select x from stmtstats_t where y = ?")
            .expect("fingerprint present");
        assert_eq!(s.calls, 2);
        assert_eq!(s.rows, 8);
        assert!((s.total_seconds - 0.040).abs() < 1e-9);
        assert!((s.mean_seconds - 0.020).abs() < 1e-9);
        assert!(s.p95_seconds.is_some());

        // LRU bound: flooding with unique shapes never exceeds capacity,
        // the hot (recently touched) fingerprint survives, and every
        // eviction is counted.
        let evicted_before = crate::registry()
            .counter("stmt_stats_evictions_total")
            .get();
        for i in 0..(2 * FINGERPRINT_CAPACITY) {
            record_statement(&format!("SELECT c{i} FROM stmtstats_t"), None, 0.001);
            record_statement("SELECT x FROM stmtstats_t WHERE y = 3", Some(1), 0.001);
        }
        let stats = statement_stats();
        assert!(stats.len() <= FINGERPRINT_CAPACITY);
        assert!(stats
            .iter()
            .any(|s| s.fingerprint == "select x from stmtstats_t where y = ?"));
        assert!(
            crate::registry()
                .counter("stmt_stats_evictions_total")
                .get()
                > evicted_before,
            "capacity-pressure evictions are counted"
        );
        reset_statement_stats();
        assert!(statement_stats().is_empty());
    }
}
