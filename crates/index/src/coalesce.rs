//! Coalescing accelerator: precomputed per-group endpoint events.
//!
//! Multiset coalescing (paper Definition 8.2) groups rows by their data
//! columns, sorts each group's interval endpoints, and emits maximal
//! constant-multiplicity segments. The grouping and the sort dominate; both
//! depend only on the stored rows, not on the query. A [`CoalesceIndex`]
//! performs them once at index-build time, so every later coalesce of the
//! table is a linear emission pass over presorted events instead of a fresh
//! `O(n log n)` sort inside `engine::coalesce`.

use storage::{Row, Value};

/// One value-equivalence group: the data-column key and its `(t, ±1)`
/// endpoint events, sorted by `(t, delta)`.
type GroupEvents = (Vec<Value>, Vec<(i64, i64)>);

/// Per-group sorted endpoint events of a period table.
#[derive(Debug, Clone, PartialEq)]
pub struct CoalesceIndex {
    /// Groups sorted by key for deterministic emission.
    groups: Vec<GroupEvents>,
    rows: usize,
}

impl CoalesceIndex {
    /// Builds the accelerator. `rows` must carry the period in the last two
    /// (integer) columns; everything before is the value-equivalence key.
    pub fn build(rows: &[Row], arity: usize) -> CoalesceIndex {
        assert!(arity >= 2, "period rows need the two period columns");
        let data_cols = arity - 2;
        let mut groups: std::collections::HashMap<Vec<Value>, Vec<(i64, i64)>> =
            std::collections::HashMap::new();
        for r in rows {
            debug_assert_eq!(r.arity(), arity);
            let key = r.values()[..data_cols].to_vec();
            let events = groups.entry(key).or_default();
            events.push((r.int(data_cols), 1));
            events.push((r.int(data_cols + 1), -1));
        }
        let mut groups: Vec<GroupEvents> = groups.into_iter().collect();
        for (_, events) in &mut groups {
            events.sort_unstable();
        }
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        CoalesceIndex {
            groups,
            rows: rows.len(),
        }
    }

    /// The accelerator for the original rows plus `new_rows`: groups the
    /// appended rows (sorting only *their* events) and merges the two
    /// key-sorted group lists linearly — `O(groups + k log k)` instead of
    /// re-grouping and re-sorting all `n + k` rows.
    pub fn merged_with(&self, new_rows: &[Row], arity: usize) -> CoalesceIndex {
        let fresh = CoalesceIndex::build(new_rows, arity);
        let mut groups: Vec<GroupEvents> =
            Vec::with_capacity(self.groups.len() + fresh.groups.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.groups.len() && j < fresh.groups.len() {
            match self.groups[i].0.cmp(&fresh.groups[j].0) {
                std::cmp::Ordering::Less => {
                    groups.push(self.groups[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    groups.push(fresh.groups[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let key = self.groups[i].0.clone();
                    let (a, b) = (&self.groups[i].1, &fresh.groups[j].1);
                    let mut events = Vec::with_capacity(a.len() + b.len());
                    let (mut x, mut y) = (0usize, 0usize);
                    while x < a.len() && y < b.len() {
                        if a[x] <= b[y] {
                            events.push(a[x]);
                            x += 1;
                        } else {
                            events.push(b[y]);
                            y += 1;
                        }
                    }
                    events.extend_from_slice(&a[x..]);
                    events.extend_from_slice(&b[y..]);
                    groups.push((key, events));
                    i += 1;
                    j += 1;
                }
            }
        }
        groups.extend(self.groups[i..].iter().cloned());
        groups.extend(fresh.groups[j..].iter().cloned());
        CoalesceIndex {
            groups,
            rows: self.rows + new_rows.len(),
        }
    }

    /// Number of rows the accelerator was built over.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of distinct value-equivalence groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Emits the coalesced multiset — identical output (including the
    /// canonical sort) to `engine::coalesce::coalesce_rows` on the same
    /// input, but without re-grouping or re-sorting.
    pub fn coalesced_rows(&self) -> Vec<Row> {
        let mut out: Vec<Row> = Vec::with_capacity(self.rows);
        for (key, events) in &self.groups {
            let mut depth: i64 = 0;
            let mut seg_start: i64 = 0;
            let mut i = 0usize;
            while i < events.len() {
                let t = events[i].0;
                let mut delta = 0;
                while i < events.len() && events[i].0 == t {
                    delta += events[i].1;
                    i += 1;
                }
                if delta == 0 {
                    continue; // equal opens and closes: multiplicity unchanged
                }
                if depth > 0 {
                    let mut values = Vec::with_capacity(key.len() + 2);
                    values.extend_from_slice(key);
                    values.push(Value::Int(seg_start));
                    values.push(Value::Int(t));
                    let row = Row::new(values);
                    for _ in 0..depth {
                        out.push(row.clone());
                    }
                }
                depth += delta;
                seg_start = t;
            }
            debug_assert_eq!(depth, 0, "unbalanced interval events");
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::row;

    #[test]
    fn example_5_3_multiset_coalescing() {
        let rows = vec![row![30, 3, 13], row![30, 3, 10]];
        let idx = CoalesceIndex::build(&rows, 3);
        assert_eq!(idx.rows(), 2);
        assert_eq!(idx.group_count(), 1);
        assert_eq!(
            idx.coalesced_rows(),
            vec![row![30, 3, 10], row![30, 3, 10], row![30, 10, 13]]
        );
    }

    #[test]
    fn multiple_groups_sorted_output() {
        let rows = vec![
            row!["b", 5, 9],
            row!["a", 1, 5],
            row!["a", 3, 8],
            row!["b", 2, 9],
        ];
        let idx = CoalesceIndex::build(&rows, 3);
        assert_eq!(idx.group_count(), 2);
        let out = idx.coalesced_rows();
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(out, sorted, "output is canonically sorted");
    }

    #[test]
    fn empty_input() {
        let idx = CoalesceIndex::build(&[], 3);
        assert!(idx.coalesced_rows().is_empty());
    }

    #[test]
    fn merged_with_matches_full_build() {
        let old = vec![
            row!["b", 5, 9],
            row!["a", 1, 5],
            row!["a", 3, 8],
            row!["b", 2, 9],
        ];
        let new = vec![row!["a", 2, 4], row!["c", 0, 7], row!["b", 1, 2]];
        let merged = CoalesceIndex::build(&old, 3).merged_with(&new, 3);
        let mut all = old.clone();
        all.extend(new);
        assert_eq!(merged, CoalesceIndex::build(&all, 3));
        assert_eq!(merged.rows(), 7);

        // Merging nothing is the identity.
        let base = CoalesceIndex::build(&old, 3);
        assert_eq!(base.merged_with(&[], 3), base);
    }
}
