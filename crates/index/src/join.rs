//! Sort-merge temporal join: an endpoint sweep over two period relations.
//!
//! The classic plane-sweep overlap join (Piatov et al. / Bouros &
//! Mamoulis): process rows of both sides in ascending begin order, keep an
//! *active set* per side (rows whose interval is still open), and emit a
//! pair exactly when the later-starting row is inserted. Every emitted pair
//! overlaps, every overlapping pair is emitted exactly once, and no
//! non-overlapping pair is ever inspected:
//! `O(n log n + m log m + |output|)` — asymptotically sort-merge, unlike the
//! nested-loop overlap test of the naive path.
//!
//! When both inputs carry an [`crate::EventList`] (i.e. they are indexed
//! base tables), the `O(n log n)` sort is skipped entirely by handing the
//! precomputed begin order to [`sweep_join_presorted`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use storage::Row;

/// Sweeps two sides already sorted by interval begin.
///
/// `left`/`right` are the row sequences in ascending begin order;
/// `lts`/`lte` and `rts`/`rte` are the period column positions in each
/// side's schema. `emit` receives every overlapping pair exactly once
/// (left row first).
pub fn sweep_join_presorted<'a>(
    left: &[&'a Row],
    right: &[&'a Row],
    lcols: (usize, usize),
    rcols: (usize, usize),
    mut emit: impl FnMut(&'a Row, &'a Row),
) {
    let infallible: Result<(), std::convert::Infallible> =
        try_sweep_join_presorted(left, right, lcols, rcols, |l, r| {
            emit(l, r);
            Ok(())
        });
    let Ok(()) = infallible;
}

/// The fallible form of [`sweep_join_presorted`]: `emit` may return an
/// error (e.g. a cooperative-cancellation check tripping), which aborts
/// the sweep immediately and is returned to the caller.
pub fn try_sweep_join_presorted<'a, E>(
    left: &[&'a Row],
    right: &[&'a Row],
    (lts, lte): (usize, usize),
    (rts, rte): (usize, usize),
    mut emit: impl FnMut(&'a Row, &'a Row) -> Result<(), E>,
) -> Result<(), E> {
    // Active sets as min-heaps on end: after purging entries with
    // `end <= t`, everything remaining is alive at t, so pair enumeration
    // can walk the raw heap storage without order concerns.
    let mut active_l: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
    let mut active_r: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();

    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() || j < right.len() {
        // Take the side with the smaller next begin; ties go left so the
        // pair is emitted once, at the right row's insertion.
        let take_left = match (left.get(i), right.get(j)) {
            (Some(l), Some(r)) => l.int(lts) <= r.int(rts),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_left {
            let l = left[i];
            let t = l.int(lts);
            // lint:allow(cancellation) amortized: one pop per insertion
            while let Some(&Reverse((e, _))) = active_r.peek() {
                if e > t {
                    break;
                }
                active_r.pop();
            }
            for &Reverse((_, rid)) in active_r.iter() {
                emit(l, right[rid as usize])?;
            }
            active_l.push(Reverse((l.int(lte), i as u32)));
            i += 1;
        } else {
            let r = right[j];
            let t = r.int(rts);
            // lint:allow(cancellation) amortized: one pop per insertion
            while let Some(&Reverse((e, _))) = active_l.peek() {
                if e > t {
                    break;
                }
                active_l.pop();
            }
            for &Reverse((_, lid)) in active_l.iter() {
                emit(left[lid as usize], r)?;
            }
            active_r.push(Reverse((r.int(rte), j as u32)));
            j += 1;
        }
    }
    Ok(())
}

/// Sweeps two unsorted sides: sorts both by begin, then runs
/// [`sweep_join_presorted`].
pub fn sweep_join<'a>(
    left: &'a [Row],
    right: &'a [Row],
    (lts, lte): (usize, usize),
    (rts, rte): (usize, usize),
    emit: impl FnMut(&'a Row, &'a Row),
) {
    let mut l: Vec<&Row> = left.iter().collect();
    let mut r: Vec<&Row> = right.iter().collect();
    l.sort_by_key(|row| row.int(lts));
    r.sort_by_key(|row| row.int(rts));
    sweep_join_presorted(&l, &r, (lts, lte), (rts, rte), emit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::row;

    fn nested_loop_pairs(
        left: &[Row],
        right: &[Row],
        (lts, lte): (usize, usize),
        (rts, rte): (usize, usize),
    ) -> Vec<(Row, Row)> {
        let mut out = Vec::new();
        for l in left {
            for r in right {
                if l.int(lts) < r.int(rte) && r.int(rts) < l.int(lte) {
                    out.push((l.clone(), r.clone()));
                }
            }
        }
        out.sort();
        out
    }

    fn sweep_pairs(
        left: &[Row],
        right: &[Row],
        lcols: (usize, usize),
        rcols: (usize, usize),
    ) -> Vec<(Row, Row)> {
        let mut out = Vec::new();
        sweep_join(left, right, lcols, rcols, |l, r| {
            out.push((l.clone(), r.clone()));
        });
        out.sort();
        out
    }

    #[test]
    fn paper_works_self_join() {
        let rows = vec![
            row!["Ann", 3, 10],
            row!["Joe", 8, 16],
            row!["Sam", 8, 16],
            row!["Ann", 18, 20],
        ];
        let got = sweep_pairs(&rows, &rows, (1, 2), (1, 2));
        let want = nested_loop_pairs(&rows, &rows, (1, 2), (1, 2));
        assert_eq!(got, want);
        // Every row overlaps itself, so at least n pairs.
        assert!(got.len() >= rows.len());
    }

    #[test]
    fn disjoint_sides_produce_nothing() {
        let l = vec![row!["a", 0, 5]];
        let r = vec![row!["b", 5, 9]];
        assert_eq!(sweep_pairs(&l, &r, (1, 2), (1, 2)), vec![]);
    }

    #[test]
    fn touching_intervals_excluded_exactly() {
        // [0,5) and [4,6) overlap; [0,5) and [5,9) do not (half-open).
        let l = vec![row!["l", 0, 5]];
        let r = vec![row!["a", 4, 6], row!["b", 5, 9]];
        let got = sweep_pairs(&l, &r, (1, 2), (1, 2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, row!["a", 4, 6]);
    }

    #[test]
    fn duplicates_multiply() {
        let l = vec![row!["x", 0, 10], row!["x", 0, 10]];
        let r = vec![row!["y", 5, 6], row!["y", 5, 6], row!["y", 5, 6]];
        assert_eq!(sweep_pairs(&l, &r, (1, 2), (1, 2)).len(), 6);
    }

    #[test]
    fn agrees_with_nested_loop_on_pseudorandom_input() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut gen_side = |n: usize| -> Vec<Row> {
            (0..n)
                .map(|k| {
                    let b = (next() % 60) as i64;
                    let len = 1 + (next() % 12) as i64;
                    row![k as i64, b, b + len]
                })
                .collect()
        };
        let l = gen_side(120);
        let r = gen_side(90);
        assert_eq!(
            sweep_pairs(&l, &r, (1, 2), (1, 2)),
            nested_loop_pairs(&l, &r, (1, 2), (1, 2))
        );
    }

    #[test]
    fn try_sweep_aborts_on_first_error() {
        let rows = [row!["a", 0, 10], row!["b", 1, 10], row!["c", 2, 10]];
        let refs: Vec<&Row> = rows.iter().collect();
        let mut emitted = 0;
        let err = try_sweep_join_presorted(&refs, &refs, (1, 2), (1, 2), |_, _| {
            emitted += 1;
            if emitted == 2 {
                Err("stop".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, "stop");
        assert_eq!(emitted, 2, "no pairs inspected after the error");
    }

    #[test]
    fn different_period_columns_per_side() {
        let l = vec![row![1, 2, "pad", 9]]; // period (1, 3) = [2, 9)
        let r = vec![row![5, 8, 10]]; // period (1, 2) = [8, 10)
        let mut n = 0;
        sweep_join(&l, &r, (1, 3), (1, 2), |_, _| n += 1);
        assert_eq!(n, 1);
    }
}
