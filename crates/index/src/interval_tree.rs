//! A static centered interval tree over half-open intervals.
//!
//! Supports the two probe shapes the engine needs:
//!
//! * **stabbing** — all intervals containing a time point `t`
//!   (`O(log n + k)`), the workhorse of indexed timeslice evaluation, and
//! * **overlap** — all intervals overlapping a query interval `[b, e)`
//!   (`O(log n + k)` for balanced inputs), used for selective index
//!   nested-loop probes.
//!
//! The tree is built once over the intervals of a stored table (ids are row
//! positions) and is immutable afterwards; maintenance is rebuild-on-change,
//! coordinated by [`crate::IndexCatalog`] via table versions.

/// A static interval tree. Ids are the positions the intervals were built
/// from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalTree {
    nodes: Vec<Node>,
    root: Option<u32>,
    len: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    center: i64,
    left: Option<u32>,
    right: Option<u32>,
    /// Intervals containing `center`, sorted ascending by begin.
    by_begin: Vec<(i64, u32)>,
    /// The same intervals, sorted ascending by end.
    by_end: Vec<(i64, u32)>,
}

impl IntervalTree {
    /// Builds the tree from half-open `(begin, end)` intervals; the id of an
    /// interval is its position in the slice.
    ///
    /// # Panics
    /// Panics when an interval is empty (`begin >= end`) or there are more
    /// than `u32::MAX` intervals.
    pub fn build(intervals: &[(i64, i64)]) -> IntervalTree {
        assert!(
            u32::try_from(intervals.len()).is_ok(),
            "IntervalTree supports at most u32::MAX intervals"
        );
        let items: Vec<(i64, i64, u32)> = intervals
            .iter()
            .enumerate()
            .map(|(i, &(b, e))| {
                assert!(b < e, "empty interval [{b}, {e}) at position {i}");
                (b, e, i as u32)
            })
            .collect();
        let mut tree = IntervalTree {
            nodes: Vec::new(),
            root: None,
            len: intervals.len(),
        };
        tree.root = tree.build_node(items);
        tree
    }

    fn build_node(&mut self, items: Vec<(i64, i64, u32)>) -> Option<u32> {
        if items.is_empty() {
            return None;
        }
        // Center on the median begin: any interval whose begin equals the
        // center contains it (begin <= center < end holds because
        // end > begin), so the node set is never empty and recursion always
        // shrinks.
        let mut begins: Vec<i64> = items.iter().map(|&(b, _, _)| b).collect();
        begins.sort_unstable();
        let center = begins[begins.len() / 2];

        let mut here: Vec<(i64, i64, u32)> = Vec::new();
        let mut left_items: Vec<(i64, i64, u32)> = Vec::new();
        let mut right_items: Vec<(i64, i64, u32)> = Vec::new();
        for it in items {
            let (b, e, _) = it;
            if e <= center {
                left_items.push(it);
            } else if b > center {
                right_items.push(it);
            } else {
                // b <= center < e: the interval contains the center point.
                here.push(it);
            }
        }
        debug_assert!(!here.is_empty(), "median-begin interval must stay here");

        let mut by_begin: Vec<(i64, u32)> = here.iter().map(|&(b, _, id)| (b, id)).collect();
        let mut by_end: Vec<(i64, u32)> = here.iter().map(|&(_, e, id)| (e, id)).collect();
        by_begin.sort_unstable();
        by_end.sort_unstable();

        let left = self.build_node(left_items);
        let right = self.build_node(right_items);
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            center,
            left,
            right,
            by_begin,
            by_end,
        });
        Some(idx)
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids of all intervals containing time point `t`, ascending.
    pub fn stab(&self, t: i64) -> Vec<usize> {
        let mut out = Vec::new();
        self.stab_into(self.root, t, &mut out);
        out.sort_unstable();
        out
    }

    fn stab_into(&self, node: Option<u32>, t: i64, out: &mut Vec<usize>) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx as usize];
        if t < n.center {
            // Stored intervals have end > center > t; match iff begin <= t.
            for &(b, id) in &n.by_begin {
                if b > t {
                    break;
                }
                out.push(id as usize);
            }
            self.stab_into(n.left, t, out);
        } else if t > n.center {
            // Stored intervals have begin <= center < t; match iff end > t.
            for &(e, id) in n.by_end.iter().rev() {
                if e <= t {
                    break;
                }
                out.push(id as usize);
            }
            self.stab_into(n.right, t, out);
        } else {
            // t == center: every stored interval contains it.
            out.extend(n.by_begin.iter().map(|&(_, id)| id as usize));
            // Left descendants end at or before center (no match); right
            // descendants begin after center (no match).
        }
    }

    /// Ids of all intervals overlapping the half-open query `[b, e)`,
    /// ascending.
    ///
    /// # Panics
    /// Panics when the query interval is empty.
    pub fn overlapping(&self, b: i64, e: i64) -> Vec<usize> {
        assert!(b < e, "empty query interval [{b}, {e})");
        let mut out = Vec::new();
        self.overlap_into(self.root, b, e, &mut out);
        out.sort_unstable();
        out
    }

    fn overlap_into(&self, node: Option<u32>, qb: i64, qe: i64, out: &mut Vec<usize>) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx as usize];
        if qe <= n.center {
            // Stored have end > center >= qe > their begin check: match iff
            // begin < qe.
            for &(b, id) in &n.by_begin {
                if b >= qe {
                    break;
                }
                out.push(id as usize);
            }
            self.overlap_into(n.left, qb, qe, out);
        } else if qb > n.center {
            // Stored have begin <= center < qb; match iff end > qb.
            for &(e, id) in n.by_end.iter().rev() {
                if e <= qb {
                    break;
                }
                out.push(id as usize);
            }
            self.overlap_into(n.right, qb, qe, out);
        } else {
            // qb <= center < qe: every stored interval overlaps the query.
            out.extend(n.by_begin.iter().map(|&(_, id)| id as usize));
            self.overlap_into(n.left, qb, qe, out);
            self.overlap_into(n.right, qb, qe, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_stab(intervals: &[(i64, i64)], t: i64) -> Vec<usize> {
        intervals
            .iter()
            .enumerate()
            .filter(|(_, &(b, e))| b <= t && t < e)
            .map(|(i, _)| i)
            .collect()
    }

    fn naive_overlap(intervals: &[(i64, i64)], qb: i64, qe: i64) -> Vec<usize> {
        intervals
            .iter()
            .enumerate()
            .filter(|(_, &(b, e))| b < qe && qb < e)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn stab_small_example() {
        let iv = vec![(3, 10), (8, 16), (18, 20), (0, 4)];
        let tree = IntervalTree::build(&iv);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.stab(3), vec![0, 3]);
        assert_eq!(tree.stab(9), vec![0, 1]);
        assert_eq!(tree.stab(17), Vec::<usize>::new());
        assert_eq!(tree.stab(19), vec![2]);
        // Half-open: the end point is excluded, the begin point included.
        assert_eq!(tree.stab(10), vec![1]);
        assert_eq!(tree.stab(18), vec![2]);
    }

    #[test]
    fn overlap_small_example() {
        let iv = vec![(3, 10), (8, 16), (18, 20), (0, 4)];
        let tree = IntervalTree::build(&iv);
        assert_eq!(tree.overlapping(0, 24), vec![0, 1, 2, 3]);
        assert_eq!(tree.overlapping(10, 18), vec![1]);
        assert_eq!(tree.overlapping(16, 18), Vec::<usize>::new());
        assert_eq!(tree.overlapping(4, 8), vec![0]);
    }

    #[test]
    fn agrees_with_naive_on_pseudorandom_input() {
        // Deterministic xorshift so the test needs no rand dependency.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let intervals: Vec<(i64, i64)> = (0..500)
            .map(|_| {
                let b = (next() % 200) as i64;
                let len = 1 + (next() % 40) as i64;
                (b, b + len)
            })
            .collect();
        let tree = IntervalTree::build(&intervals);
        for t in -2..245 {
            assert_eq!(tree.stab(t), naive_stab(&intervals, t), "stab({t})");
        }
        for qb in (-2..240).step_by(7) {
            for len in [1, 3, 17, 60] {
                assert_eq!(
                    tree.overlapping(qb, qb + len),
                    naive_overlap(&intervals, qb, qb + len),
                    "overlap [{qb}, {})",
                    qb + len
                );
            }
        }
    }

    #[test]
    fn empty_tree() {
        let tree = IntervalTree::build(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.stab(0), Vec::<usize>::new());
        assert_eq!(tree.overlapping(0, 1), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn rejects_empty_intervals() {
        let _ = IntervalTree::build(&[(5, 5)]);
    }
}
