//! Temporal index subsystem: sweep-line interval indexes for the snapshot
//! engine.
//!
//! The paper's snapshot-reducible operators spend their runtime in three
//! places: interval-overlap joins, timeslice/point-in-time lookups, and
//! multiset coalescing. All three reduce to questions about sorted interval
//! endpoints, so this crate builds — once per stored table — the structures
//! that answer them without per-query sorting (in the spirit of the
//! Timeline Index line of work the paper benchmarks against):
//!
//! * [`EventList`] — begin- and end-sorted event lists, the sweep-line
//!   backbone ([`events`]),
//! * [`IntervalTree`] — a static centered interval tree for `O(log n + k)`
//!   timeslice stabbing and overlap probes ([`interval_tree`]),
//! * [`CoalesceIndex`] — presorted per-group endpoint events, the
//!   coalescing accelerator ([`coalesce`]),
//! * [`sweep_join`] / [`sweep_join_presorted`] — the `O(n log n + output)`
//!   endpoint-sweep temporal join ([`join`]),
//! * [`parallel_sweep_join_presorted`] — the same join partitioned into
//!   contiguous time slabs along elementary-interval boundaries and run on
//!   scoped worker threads, with boundary-straddling duplicates suppressed
//!   by an overlap-start credit rule ([`parallel`]),
//! * [`TableIndex`] / [`IndexCatalog`] — per-table bundles and the
//!   registry the engine consults at dispatch time ([`table_index`]).
//!
//! Indexes are immutable snapshots keyed by [`storage::Table::version`];
//! the engine falls back to the naive operators whenever an index is
//! missing or stale, so both routes stay live and comparable (the
//! differential tests and the `baseline` oracle validate them against each
//! other). Maintenance is version-driven: [`IndexCatalog::ensure`] repairs
//! a stale entry by *extending* it when the table's append-checkpoint
//! history proves only appends happened since the indexed version
//! ([`TableIndex::extend_appended`] — event lists and coalesce groups
//! merge in `O(n + k log k)` instead of re-sorting; the static interval
//! tree is still rebuilt), and by a full rebuild of everything otherwise
//! (deletes, updates, replaced tables).

pub mod coalesce;
pub mod events;
pub mod interval_tree;
pub mod join;
pub mod parallel;
pub mod table_index;

pub use coalesce::CoalesceIndex;
pub use events::EventList;
pub use interval_tree::IntervalTree;
pub use join::{sweep_join, sweep_join_presorted, try_sweep_join_presorted};
pub use parallel::{
    choose_cuts, elementary_boundaries, elementary_boundaries_from_events,
    parallel_sweep_join_presorted, try_parallel_sweep_join_presorted, ParallelJoinStats,
};
pub use table_index::{IndexCatalog, MaintenanceStats, TableIndex};
