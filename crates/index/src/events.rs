//! Endpoint event lists: the sweep-line backbone.
//!
//! An [`EventList`] stores a period relation's rows twice, once ordered by
//! interval begin and once by interval end. Every sweep-line algorithm in
//! this subsystem (sort-merge temporal join, timeslice pre-filtering,
//! coalescing) starts from one of these orders; building them once per
//! table and reusing them replaces the per-operator `O(n log n)` sorts of
//! the naive paths with `O(n)` merges.

use storage::Row;

/// Sorted endpoint views of a multiset of period rows.
///
/// Row ids are positions in the original row slice; intervals are the
/// half-open `[begin, end)` values of the period columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventList {
    /// `(begin, row id)`, ascending.
    by_begin: Vec<(i64, u32)>,
    /// `(end, row id)`, ascending.
    by_end: Vec<(i64, u32)>,
}

impl EventList {
    /// Builds the event list for `rows`, reading the period from columns
    /// `ts`/`te`.
    ///
    /// # Panics
    /// Panics when a row's period columns are not integers, or when the
    /// relation has more than `u32::MAX` rows.
    pub fn build(rows: &[Row], ts: usize, te: usize) -> EventList {
        assert!(
            u32::try_from(rows.len()).is_ok(),
            "EventList supports at most u32::MAX rows"
        );
        let mut by_begin: Vec<(i64, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.int(ts), i as u32))
            .collect();
        let mut by_end: Vec<(i64, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.int(te), i as u32))
            .collect();
        by_begin.sort_unstable();
        by_end.sort_unstable();
        EventList { by_begin, by_end }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.by_begin.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.by_begin.is_empty()
    }

    /// `(begin, row id)` pairs, ascending by begin (ties by row id).
    pub fn by_begin(&self) -> &[(i64, u32)] {
        &self.by_begin
    }

    /// `(end, row id)` pairs, ascending by end (ties by row id).
    pub fn by_end(&self) -> &[(i64, u32)] {
        &self.by_end
    }

    /// Row ids in begin order — the input order of every sweep.
    pub fn begin_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.by_begin.iter().map(|&(_, id)| id as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::row;

    fn rows() -> Vec<Row> {
        vec![
            row!["a", 3, 10],
            row!["b", 8, 16],
            row!["c", 0, 4],
            row!["d", 8, 9],
        ]
    }

    #[test]
    fn orders_are_sorted() {
        let ev = EventList::build(&rows(), 1, 2);
        assert_eq!(ev.len(), 4);
        assert_eq!(
            ev.by_begin(),
            &[(0, 2), (3, 0), (8, 1), (8, 3)],
            "begin order with ties by row id"
        );
        assert_eq!(ev.by_end(), &[(4, 2), (9, 3), (10, 0), (16, 1)]);
        assert_eq!(ev.begin_order().collect::<Vec<_>>(), vec![2, 0, 1, 3]);
    }

    #[test]
    fn empty() {
        let ev = EventList::build(&[], 0, 1);
        assert!(ev.is_empty());
        assert_eq!(ev.begin_order().count(), 0);
    }
}
