//! Endpoint event lists: the sweep-line backbone.
//!
//! An [`EventList`] stores a period relation's rows twice, once ordered by
//! interval begin and once by interval end. Every sweep-line algorithm in
//! this subsystem (sort-merge temporal join, timeslice pre-filtering,
//! coalescing) starts from one of these orders; building them once per
//! table and reusing them replaces the per-operator `O(n log n)` sorts of
//! the naive paths with `O(n)` merges.

use storage::Row;

/// Sorted endpoint views of a multiset of period rows.
///
/// Row ids are positions in the original row slice; intervals are the
/// half-open `[begin, end)` values of the period columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventList {
    /// `(begin, row id)`, ascending.
    by_begin: Vec<(i64, u32)>,
    /// `(end, row id)`, ascending.
    by_end: Vec<(i64, u32)>,
}

impl EventList {
    /// Builds the event list for `rows`, reading the period from columns
    /// `ts`/`te`.
    ///
    /// # Panics
    /// Panics when a row's period columns are not integers, or when the
    /// relation has more than `u32::MAX` rows.
    pub fn build(rows: &[Row], ts: usize, te: usize) -> EventList {
        assert!(
            u32::try_from(rows.len()).is_ok(),
            "EventList supports at most u32::MAX rows"
        );
        let mut by_begin: Vec<(i64, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.int(ts), i as u32))
            .collect();
        let mut by_end: Vec<(i64, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.int(te), i as u32))
            .collect();
        by_begin.sort_unstable();
        by_end.sort_unstable();
        EventList { by_begin, by_end }
    }

    /// The event list for `rows` given that `rows[0..old_len]` is exactly
    /// the multiset this list was built over, in the same order: the new
    /// rows' events are sorted (`O(k log k)`) and merged with the existing
    /// orders (`O(n + k)`), replacing the full `O(n log n)` re-sort of
    /// [`EventList::build`].
    ///
    /// # Panics
    /// Panics when `old_len` disagrees with the indexed length, the period
    /// columns are not integers, or the result exceeds `u32::MAX` rows.
    pub fn extended(&self, rows: &[Row], ts: usize, te: usize, old_len: usize) -> EventList {
        assert_eq!(old_len, self.len(), "extended from a different prefix");
        assert!(
            u32::try_from(rows.len()).is_ok(),
            "EventList supports at most u32::MAX rows"
        );
        let fresh = &rows[old_len..];
        let mut new_begin: Vec<(i64, u32)> = fresh
            .iter()
            .enumerate()
            .map(|(i, r)| (r.int(ts), (old_len + i) as u32))
            .collect();
        let mut new_end: Vec<(i64, u32)> = fresh
            .iter()
            .enumerate()
            .map(|(i, r)| (r.int(te), (old_len + i) as u32))
            .collect();
        new_begin.sort_unstable();
        new_end.sort_unstable();
        EventList {
            by_begin: merge_sorted(&self.by_begin, &new_begin),
            by_end: merge_sorted(&self.by_end, &new_end),
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.by_begin.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.by_begin.is_empty()
    }

    /// `(begin, row id)` pairs, ascending by begin (ties by row id).
    pub fn by_begin(&self) -> &[(i64, u32)] {
        &self.by_begin
    }

    /// `(end, row id)` pairs, ascending by end (ties by row id).
    pub fn by_end(&self) -> &[(i64, u32)] {
        &self.by_end
    }

    /// Row ids in begin order — the input order of every sweep.
    pub fn begin_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.by_begin.iter().map(|&(_, id)| id as usize)
    }
}

/// Linear merge of two `(key, id)` lists sorted ascending (ties broken by
/// id, which the inputs already respect because new ids are larger).
fn merge_sorted(a: &[(i64, u32)], b: &[(i64, u32)]) -> Vec<(i64, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::row;

    fn rows() -> Vec<Row> {
        vec![
            row!["a", 3, 10],
            row!["b", 8, 16],
            row!["c", 0, 4],
            row!["d", 8, 9],
        ]
    }

    #[test]
    fn orders_are_sorted() {
        let ev = EventList::build(&rows(), 1, 2);
        assert_eq!(ev.len(), 4);
        assert_eq!(
            ev.by_begin(),
            &[(0, 2), (3, 0), (8, 1), (8, 3)],
            "begin order with ties by row id"
        );
        assert_eq!(ev.by_end(), &[(4, 2), (9, 3), (10, 0), (16, 1)]);
        assert_eq!(ev.begin_order().collect::<Vec<_>>(), vec![2, 0, 1, 3]);
    }

    #[test]
    fn empty() {
        let ev = EventList::build(&[], 0, 1);
        assert!(ev.is_empty());
        assert_eq!(ev.begin_order().count(), 0);
    }

    #[test]
    fn extended_matches_full_build() {
        let mut all = rows();
        let ev_prefix = EventList::build(&all, 1, 2);
        all.push(row!["e", 1, 20]);
        all.push(row!["f", 8, 12]);
        all.push(row!["g", 0, 1]);
        let merged = ev_prefix.extended(&all, 1, 2, 4);
        assert_eq!(merged, EventList::build(&all, 1, 2));

        // Extending by nothing is the identity.
        assert_eq!(ev_prefix.extended(&rows(), 1, 2, 4), ev_prefix);
    }
}
