//! Per-table index bundles and the catalog-level index registry.

use crate::{CoalesceIndex, EventList, IntervalTree};
use storage::{Catalog, Row, Table};

/// The full index bundle of one stored period table:
///
/// * an [`EventList`] — sorted begin/end event lists, the sweep-line
///   backbone reused by the sort-merge temporal join,
/// * an [`IntervalTree`] — `O(log n + k)` timeslice stabbing and overlap
///   probes,
/// * a [`CoalesceIndex`] — presorted per-group events for the coalescing
///   accelerator (only when the period is stored in the trailing two
///   columns, the engine's temporal-operator convention).
///
/// An index is a snapshot of the table at one [`Table::version`];
/// [`TableIndex::is_fresh`] detects staleness and [`IndexCatalog::ensure`]
/// rebuilds on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct TableIndex {
    version: u64,
    period: (usize, usize),
    events: EventList,
    tree: IntervalTree,
    coalesce: Option<CoalesceIndex>,
}

impl TableIndex {
    /// Builds the index bundle for a period table; returns `None` for
    /// non-temporal tables (nothing to index).
    pub fn build(table: &Table) -> Option<TableIndex> {
        let (ts, te) = table.period()?;
        let rows = table.rows();
        let events = EventList::build(rows, ts, te);
        let intervals: Vec<(i64, i64)> = rows.iter().map(|r| (r.int(ts), r.int(te))).collect();
        let tree = IntervalTree::build(&intervals);
        let arity = table.schema().arity();
        let coalesce = (arity >= 2 && (ts, te) == (arity - 2, arity - 1))
            .then(|| CoalesceIndex::build(rows, arity));
        Some(TableIndex {
            version: table.version(),
            period: (ts, te),
            events,
            tree,
            coalesce,
        })
    }

    /// Whether the index still matches the table contents (version-based:
    /// every mutation of [`Table`] bumps its version).
    pub fn is_fresh(&self, table: &Table) -> bool {
        self.version == table.version() && Some(self.period) == table.period()
    }

    /// The table version the index was built at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The indexed period columns.
    pub fn period(&self) -> (usize, usize) {
        self.period
    }

    /// The endpoint event lists.
    pub fn events(&self) -> &EventList {
        &self.events
    }

    /// The interval tree.
    pub fn tree(&self) -> &IntervalTree {
        &self.tree
    }

    /// The coalescing accelerator (period-last tables only).
    pub fn coalesce(&self) -> Option<&CoalesceIndex> {
        self.coalesce.as_ref()
    }

    /// The timeslice at `t`: clones of all rows valid at `t`, in table
    /// order. `O(log n + k)` via interval-tree stabbing.
    pub fn timeslice_rows(&self, table: &Table, t: i64) -> Vec<Row> {
        debug_assert!(self.is_fresh(table));
        let rows = table.rows();
        self.tree
            .stab(t)
            .into_iter()
            .map(|id| rows[id].clone())
            .collect()
    }
}

/// The namespace of table indexes, mirroring [`storage::Catalog`].
///
/// The registry is deliberately separate from the catalog (the storage
/// layer stays index-agnostic); the engine consults it at dispatch time and
/// silently falls back to the naive operators for unindexed or stale
/// entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexCatalog {
    indexes: std::collections::BTreeMap<String, TableIndex>,
}

impl IndexCatalog {
    /// An empty registry.
    pub fn new() -> Self {
        IndexCatalog::default()
    }

    /// Builds indexes for every period table of the catalog.
    pub fn build_all(catalog: &Catalog) -> Self {
        let mut reg = IndexCatalog::new();
        for name in catalog.table_names().collect::<Vec<_>>() {
            let table = catalog.get(name).unwrap();
            if let Some(idx) = TableIndex::build(table) {
                reg.indexes.insert(name.to_string(), idx);
            }
        }
        reg
    }

    /// Registers (or replaces) an index for `name`.
    pub fn register(&mut self, name: impl Into<String>, index: TableIndex) {
        self.indexes.insert(name.into(), index);
    }

    /// A fresh index for `name`, or `None` when missing or stale.
    pub fn get_fresh(&self, name: &str, table: &Table) -> Option<&TableIndex> {
        self.indexes.get(name).filter(|idx| idx.is_fresh(table))
    }

    /// Index maintenance: rebuilds the entry when missing or stale, then
    /// returns it (`None` for non-temporal tables).
    pub fn ensure(&mut self, name: &str, table: &Table) -> Option<&TableIndex> {
        let stale = self
            .indexes
            .get(name)
            .map(|idx| !idx.is_fresh(table))
            .unwrap_or(true);
        if stale {
            match TableIndex::build(table) {
                Some(idx) => {
                    self.indexes.insert(name.to_string(), idx);
                }
                None => {
                    self.indexes.remove(name);
                }
            }
        }
        self.indexes.get(name)
    }

    /// Number of registered indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Names of all indexed tables, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.indexes.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{row, Schema, SqlType};

    fn works_table() -> Table {
        let schema = Schema::of(&[
            ("name", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let mut t = Table::with_period(schema, 2, 3);
        t.push(row!["Ann", "SP", 3, 10]);
        t.push(row!["Joe", "NS", 8, 16]);
        t.push(row!["Sam", "SP", 8, 16]);
        t.push(row!["Ann", "SP", 18, 20]);
        t
    }

    #[test]
    fn builds_for_period_tables_only() {
        let t = works_table();
        let idx = TableIndex::build(&t).unwrap();
        assert_eq!(idx.period(), (2, 3));
        assert_eq!(idx.events().len(), 4);
        assert!(idx.coalesce().is_some(), "trailing period: accelerator on");

        let plain = Table::new(Schema::of(&[("x", SqlType::Int)]));
        assert!(TableIndex::build(&plain).is_none());
    }

    #[test]
    fn timeslice_matches_scan() {
        let t = works_table();
        let idx = TableIndex::build(&t).unwrap();
        for at in -1..25 {
            let via_index = idx.timeslice_rows(&t, at);
            let via_scan: Vec<Row> = t
                .rows()
                .iter()
                .filter(|r| r.int(2) <= at && at < r.int(3))
                .cloned()
                .collect();
            assert_eq!(via_index, via_scan, "timeslice at {at}");
        }
    }

    #[test]
    fn staleness_detected_and_repaired() {
        let mut t = works_table();
        let idx = TableIndex::build(&t).unwrap();
        assert!(idx.is_fresh(&t));
        t.push(row!["Eve", "SP", 0, 2]);
        assert!(!idx.is_fresh(&t), "mutation must invalidate");

        let mut c = Catalog::new();
        c.register("works", t.clone());
        let mut reg = IndexCatalog::build_all(&c);
        assert_eq!(reg.len(), 1);
        assert!(reg.get_fresh("works", &t).is_some());

        t.push(row!["Zed", "NS", 1, 3]);
        assert!(reg.get_fresh("works", &t).is_none(), "stale after push");
        let rebuilt = reg.ensure("works", &t).unwrap();
        assert_eq!(rebuilt.version(), t.version());
        assert_eq!(rebuilt.events().len(), 6);
    }

    #[test]
    fn begin_order_is_begin_sorted() {
        let t = works_table();
        let idx = TableIndex::build(&t).unwrap();
        let rows = t.rows();
        let begins: Vec<i64> = idx.events().begin_order().map(|i| rows[i].int(2)).collect();
        let mut sorted = begins.clone();
        sorted.sort_unstable();
        assert_eq!(begins, sorted);
    }

    #[test]
    fn build_all_skips_non_temporal() {
        let mut c = Catalog::new();
        c.register("works", works_table());
        c.register("plain", Table::new(Schema::of(&[("x", SqlType::Int)])));
        let reg = IndexCatalog::build_all(&c);
        assert_eq!(reg.table_names().collect::<Vec<_>>(), vec!["works"]);
    }
}
