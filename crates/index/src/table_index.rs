//! Per-table index bundles and the catalog-level index registry.

use crate::{CoalesceIndex, EventList, IntervalTree};
use snapshot_obs::{self as obs, LazyCounter, LazyHistogram};
use storage::{Catalog, Row, Table};

/// Index-maintenance telemetry: the repair split mirrors
/// [`MaintenanceStats`] in the global registry, and the histograms time the
/// two repair paths (an `ensure` hitting a fresh entry records nothing).
static FULL_BUILDS: LazyCounter = LazyCounter::new("index_full_builds_total");
static INCREMENTAL_BUILDS: LazyCounter = LazyCounter::new("index_incremental_builds_total");
static FULL_BUILD_SECONDS: LazyHistogram = LazyHistogram::new("index_full_build_seconds");
static INCREMENTAL_SECONDS: LazyHistogram = LazyHistogram::new("index_incremental_build_seconds");

/// The full index bundle of one stored period table:
///
/// * an [`EventList`] — sorted begin/end event lists, the sweep-line
///   backbone reused by the sort-merge temporal join,
/// * an [`IntervalTree`] — `O(log n + k)` timeslice stabbing and overlap
///   probes,
/// * a [`CoalesceIndex`] — presorted per-group events for the coalescing
///   accelerator (only when the period is stored in the trailing two
///   columns, the engine's temporal-operator convention).
///
/// An index is a snapshot of the table at one [`Table::version`];
/// [`TableIndex::is_fresh`] detects staleness and [`IndexCatalog::ensure`]
/// rebuilds on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct TableIndex {
    version: u64,
    period: (usize, usize),
    events: EventList,
    tree: IntervalTree,
    coalesce: Option<CoalesceIndex>,
}

impl TableIndex {
    /// Builds the index bundle for a period table; returns `None` for
    /// non-temporal tables (nothing to index).
    pub fn build(table: &Table) -> Option<TableIndex> {
        let (ts, te) = table.period()?;
        let rows = table.rows();
        let events = EventList::build(rows, ts, te);
        let intervals: Vec<(i64, i64)> = rows.iter().map(|r| (r.int(ts), r.int(te))).collect();
        let tree = IntervalTree::build(&intervals);
        let arity = table.schema().arity();
        let coalesce = (arity >= 2 && (ts, te) == (arity - 2, arity - 1))
            .then(|| CoalesceIndex::build(rows, arity));
        Some(TableIndex {
            version: table.version(),
            period: (ts, te),
            events,
            tree,
            coalesce,
        })
    }

    /// Incremental maintenance: the index for `table` given that this index
    /// covers exactly `table.rows()[0..old_len]` (i.e. only appends happened
    /// since it was built — the caller establishes this via
    /// [`Table::appended_since`]). The endpoint event lists and the
    /// coalescing accelerator *merge* the new rows' events into the existing
    /// sorted structures instead of re-sorting everything; only the static
    /// interval tree is rebuilt. Returns `None` when the table's period
    /// moved or `old_len` is inconsistent — callers then fall back to
    /// [`TableIndex::build`].
    pub fn extend_appended(&self, table: &Table, old_len: usize) -> Option<TableIndex> {
        let (ts, te) = table.period()?;
        if (ts, te) != self.period || old_len != self.events.len() || old_len > table.len() {
            return None;
        }
        let rows = table.rows();
        let events = self.events.extended(rows, ts, te, old_len);
        let intervals: Vec<(i64, i64)> = rows.iter().map(|r| (r.int(ts), r.int(te))).collect();
        let tree = IntervalTree::build(&intervals);
        let arity = table.schema().arity();
        let coalesce = self
            .coalesce
            .as_ref()
            .map(|c| c.merged_with(&rows[old_len..], arity));
        Some(TableIndex {
            version: table.version(),
            period: self.period,
            events,
            tree,
            coalesce,
        })
    }

    /// Whether the index still matches the table contents (version-based:
    /// every mutation of [`Table`] bumps its version).
    pub fn is_fresh(&self, table: &Table) -> bool {
        self.version == table.version() && Some(self.period) == table.period()
    }

    /// The table version the index was built at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The indexed period columns.
    pub fn period(&self) -> (usize, usize) {
        self.period
    }

    /// The endpoint event lists.
    pub fn events(&self) -> &EventList {
        &self.events
    }

    /// The interval tree.
    pub fn tree(&self) -> &IntervalTree {
        &self.tree
    }

    /// The coalescing accelerator (period-last tables only).
    pub fn coalesce(&self) -> Option<&CoalesceIndex> {
        self.coalesce.as_ref()
    }

    /// The timeslice at `t`: clones of all rows valid at `t`, in table
    /// order. `O(log n + k)` via interval-tree stabbing.
    pub fn timeslice_rows(&self, table: &Table, t: i64) -> Vec<Row> {
        debug_assert!(self.is_fresh(table));
        let rows = table.rows();
        self.tree
            .stab(t)
            .into_iter()
            .map(|id| rows[id].clone())
            .collect()
    }

    /// All rows whose validity interval overlaps the half-open query
    /// `[b, e)`, in table order. `O(log n + k)` via interval-tree overlap
    /// probing — the physical backbone of range-restricted
    /// (`SEQ VT BETWEEN`) evaluation.
    ///
    /// # Panics
    /// Panics when the query interval is empty.
    pub fn overlapping_rows(&self, table: &Table, b: i64, e: i64) -> Vec<Row> {
        debug_assert!(self.is_fresh(table));
        let rows = table.rows();
        self.tree
            .overlapping(b, e)
            .into_iter()
            .map(|id| rows[id].clone())
            .collect()
    }
}

/// Counters describing how [`IndexCatalog::ensure`] repaired stale entries
/// — the observable split between full rebuilds and the append-only
/// incremental fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Indexes built from scratch (first build, or structural mutation).
    pub full_builds: u64,
    /// Indexes extended in place after pure appends.
    pub incremental_builds: u64,
}

/// The namespace of table indexes, mirroring [`storage::Catalog`].
///
/// The registry is deliberately separate from the catalog (the storage
/// layer stays index-agnostic); the engine consults it at dispatch time and
/// silently falls back to the naive operators for unindexed or stale
/// entries.
///
/// Entries are held behind [`std::sync::Arc`], so cloning the registry is
/// cheap — an MVCC snapshot pins the index registry together with the
/// catalog and keeps serving index-accelerated reads no matter how the
/// committed registry evolves. Repairs ([`IndexCatalog::ensure`]) swap in
/// a fresh `Arc`; pinned clones keep the entry they saw.
#[derive(Debug, Clone, Default)]
pub struct IndexCatalog {
    indexes: std::collections::BTreeMap<String, std::sync::Arc<TableIndex>>,
    maintenance: MaintenanceStats,
}

// Equality compares the registered indexes only; the maintenance counters
// are observability, not state.
impl PartialEq for IndexCatalog {
    fn eq(&self, other: &Self) -> bool {
        self.indexes == other.indexes
    }
}

impl IndexCatalog {
    /// An empty registry.
    pub fn new() -> Self {
        IndexCatalog::default()
    }

    /// Builds indexes for every period table of the catalog.
    pub fn build_all(catalog: &Catalog) -> Self {
        let mut reg = IndexCatalog::new();
        for name in catalog.table_names().collect::<Vec<_>>() {
            let table = catalog.get(name).unwrap();
            if let Some(idx) = TableIndex::build(table) {
                reg.indexes
                    .insert(name.to_string(), std::sync::Arc::new(idx));
            }
        }
        reg
    }

    /// Registers (or replaces) an index for `name`.
    pub fn register(&mut self, name: impl Into<String>, index: TableIndex) {
        self.indexes.insert(name.into(), std::sync::Arc::new(index));
    }

    /// A fresh index for `name`, or `None` when missing or stale.
    pub fn get_fresh(&self, name: &str, table: &Table) -> Option<&TableIndex> {
        self.indexes
            .get(name)
            .map(std::sync::Arc::as_ref)
            .filter(|idx| idx.is_fresh(table))
    }

    /// Index maintenance: repairs the entry when missing or stale, then
    /// returns it (`None` for non-temporal tables).
    ///
    /// When the table's [`Table::appended_since`] history shows that only
    /// appends happened since the indexed version, the existing index is
    /// *extended* ([`TableIndex::extend_appended`] — sorted structures
    /// merge instead of re-sorting); deletes, updates, and replaced tables
    /// fall back to a full [`TableIndex::build`]. The split is observable
    /// via [`IndexCatalog::maintenance`].
    pub fn ensure(&mut self, name: &str, table: &Table) -> Option<&TableIndex> {
        let stale = self
            .indexes
            .get(name)
            .map(|idx| !idx.is_fresh(table))
            .unwrap_or(true);
        if stale {
            let _span = obs::Span::enter("index.ensure");
            let started = std::time::Instant::now();
            let incremental = self.indexes.get(name).and_then(|idx| {
                table
                    .appended_since(idx.version())
                    .and_then(|old_len| idx.extend_appended(table, old_len))
            });
            let (built, was_incremental) = match incremental {
                Some(idx) => (Some(idx), true),
                None => (TableIndex::build(table), false),
            };
            match built {
                Some(idx) => {
                    if was_incremental {
                        self.maintenance.incremental_builds += 1;
                        INCREMENTAL_BUILDS.inc();
                        INCREMENTAL_SECONDS.observe_duration(started.elapsed());
                    } else {
                        self.maintenance.full_builds += 1;
                        FULL_BUILDS.inc();
                        FULL_BUILD_SECONDS.observe_duration(started.elapsed());
                    }
                    self.indexes
                        .insert(name.to_string(), std::sync::Arc::new(idx));
                }
                None => {
                    self.indexes.remove(name);
                }
            }
        }
        self.indexes.get(name).map(std::sync::Arc::as_ref)
    }

    /// Drops the index for `name` (table dropped or replaced).
    pub fn remove(&mut self, name: &str) -> Option<std::sync::Arc<TableIndex>> {
        self.indexes.remove(name)
    }

    /// How `ensure` repaired stale entries so far.
    pub fn maintenance(&self) -> MaintenanceStats {
        self.maintenance
    }

    /// Look up the registered index for `name` regardless of freshness
    /// (introspection: the `snapshot_stat_indexes` virtual table reports
    /// stale entries as such instead of hiding them).
    pub fn get(&self, name: &str) -> Option<&TableIndex> {
        self.indexes.get(name).map(|arc| arc.as_ref())
    }

    /// Number of registered indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Names of all indexed tables, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.indexes.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{row, Schema, SqlType};

    fn works_table() -> Table {
        let schema = Schema::of(&[
            ("name", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let mut t = Table::with_period(schema, 2, 3);
        t.push(row!["Ann", "SP", 3, 10]);
        t.push(row!["Joe", "NS", 8, 16]);
        t.push(row!["Sam", "SP", 8, 16]);
        t.push(row!["Ann", "SP", 18, 20]);
        t
    }

    #[test]
    fn builds_for_period_tables_only() {
        let t = works_table();
        let idx = TableIndex::build(&t).unwrap();
        assert_eq!(idx.period(), (2, 3));
        assert_eq!(idx.events().len(), 4);
        assert!(idx.coalesce().is_some(), "trailing period: accelerator on");

        let plain = Table::new(Schema::of(&[("x", SqlType::Int)]));
        assert!(TableIndex::build(&plain).is_none());
    }

    #[test]
    fn timeslice_matches_scan() {
        let t = works_table();
        let idx = TableIndex::build(&t).unwrap();
        for at in -1..25 {
            let via_index = idx.timeslice_rows(&t, at);
            let via_scan: Vec<Row> = t
                .rows()
                .iter()
                .filter(|r| r.int(2) <= at && at < r.int(3))
                .cloned()
                .collect();
            assert_eq!(via_index, via_scan, "timeslice at {at}");
        }
    }

    #[test]
    fn staleness_detected_and_repaired() {
        let mut t = works_table();
        let idx = TableIndex::build(&t).unwrap();
        assert!(idx.is_fresh(&t));
        t.push(row!["Eve", "SP", 0, 2]);
        assert!(!idx.is_fresh(&t), "mutation must invalidate");

        let mut c = Catalog::new();
        c.register("works", t.clone());
        let mut reg = IndexCatalog::build_all(&c);
        assert_eq!(reg.len(), 1);
        assert!(reg.get_fresh("works", &t).is_some());

        t.push(row!["Zed", "NS", 1, 3]);
        assert!(reg.get_fresh("works", &t).is_none(), "stale after push");
        let rebuilt = reg.ensure("works", &t).unwrap();
        assert_eq!(rebuilt.version(), t.version());
        assert_eq!(rebuilt.events().len(), 6);
    }

    #[test]
    fn begin_order_is_begin_sorted() {
        let t = works_table();
        let idx = TableIndex::build(&t).unwrap();
        let rows = t.rows();
        let begins: Vec<i64> = idx.events().begin_order().map(|i| rows[i].int(2)).collect();
        let mut sorted = begins.clone();
        sorted.sort_unstable();
        assert_eq!(begins, sorted);
    }

    #[test]
    fn append_only_mutations_take_the_incremental_path() {
        let mut t = works_table();
        let mut c = Catalog::new();
        c.register("works", t.clone());
        let mut reg = IndexCatalog::build_all(&c);
        assert_eq!(reg.maintenance(), MaintenanceStats::default());

        // Pure appends: the repaired index must equal a full rebuild, via
        // the incremental path.
        t.push(row!["Eve", "SP", 0, 2]);
        t.extend(vec![row!["Zed", "NS", 1, 3], row!["Pam", "SP", 2, 19]]);
        let repaired = reg.ensure("works", &t).unwrap().clone();
        assert_eq!(repaired, TableIndex::build(&t).unwrap());
        assert_eq!(repaired.version(), t.version());
        assert_eq!(
            reg.maintenance(),
            MaintenanceStats {
                full_builds: 0,
                incremental_builds: 1
            }
        );

        // The incremental index answers probes exactly like a fresh one.
        for at in -1..21 {
            let via_index = repaired.timeslice_rows(&t, at);
            let via_scan: Vec<Row> = t
                .rows()
                .iter()
                .filter(|r| r.int(2) <= at && at < r.int(3))
                .cloned()
                .collect();
            assert_eq!(via_index, via_scan, "timeslice at {at}");
        }

        // A structural mutation forces the full rebuild path.
        t.delete_where(|r| r.int(2) >= 18);
        reg.ensure("works", &t).unwrap();
        assert_eq!(
            reg.maintenance(),
            MaintenanceStats {
                full_builds: 1,
                incremental_builds: 1
            }
        );
    }

    #[test]
    fn replaced_table_never_takes_the_incremental_path() {
        // A look-alike table replacing the catalog entry must not be
        // treated as "the indexed table plus appends".
        let t = works_table();
        let mut c = Catalog::new();
        c.register("works", t.clone());
        let mut reg = IndexCatalog::build_all(&c);

        let mut replacement = works_table();
        replacement.push(row!["Eve", "SP", 0, 2]);
        let repaired = reg.ensure("works", &replacement).unwrap();
        assert_eq!(repaired.version(), replacement.version());
        assert_eq!(reg.maintenance().full_builds, 1);
        assert_eq!(reg.maintenance().incremental_builds, 0);
    }

    #[test]
    fn overlapping_rows_matches_scan() {
        let t = works_table();
        let idx = TableIndex::build(&t).unwrap();
        for b in -2..22 {
            for e in (b + 1)..23 {
                let via_index = idx.overlapping_rows(&t, b, e);
                let via_scan: Vec<Row> = t
                    .rows()
                    .iter()
                    .filter(|r| r.int(2) < e && b < r.int(3))
                    .cloned()
                    .collect();
                assert_eq!(via_index, via_scan, "overlap [{b}, {e})");
            }
        }
    }

    #[test]
    fn build_all_skips_non_temporal() {
        let mut c = Catalog::new();
        c.register("works", works_table());
        c.register("plain", Table::new(Schema::of(&[("x", SqlType::Int)])));
        let reg = IndexCatalog::build_all(&c);
        assert_eq!(reg.table_names().collect::<Vec<_>>(), vec!["works"]);
    }
}
