//! Parallel endpoint-sweep temporal join: elementary-interval slab
//! partitioning over the proven sequential kernel.
//!
//! The sequenced-join reduction makes the interval-overlap join the
//! dominant cost of every `SEQ VT` query, and the elementary-interval
//! decomposition underlying the paper's split/alignment operators gives a
//! natural disjoint partitioning for data-parallel execution: the distinct
//! interval endpoints of both inputs cut the time line into elementary
//! intervals, and any grouping of those into `P` contiguous *slabs*
//! partitions the endpoint domain. Each slab is handed to a scoped worker
//! thread that runs the ordinary [`sweep_join_presorted`](crate::join::sweep_join_presorted) kernel over the
//! rows overlapping the slab.
//!
//! A pair of intervals whose overlap straddles a slab cut would be found
//! by both workers, so duplicates are suppressed by a *credit rule*: a
//! pair is emitted only by the slab containing the overlap's start
//! `max(lb, rb)`. Slabs partition the time line, so exactly one slab
//! contains that point, and both intervals of the pair overlap that slab
//! (each contains the overlap's start) — every overlapping pair is
//! emitted exactly once, making the parallel join bag-equivalent to the
//! sequential sweep by construction. The differential tests hold it to
//! that against the sequential routes and the point-wise oracle.

use crate::events::EventList;
use crate::join::try_sweep_join_presorted;
use storage::Row;

/// Counters describing one parallel join execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelJoinStats {
    /// Slabs the endpoint domain was partitioned into (1 = sequential).
    pub slabs: usize,
    /// Boundary-straddling pairs found in a slab other than the one the
    /// credit rule assigns them to, and therefore suppressed.
    pub suppressed: u64,
}

/// The distinct interval endpoints of both join sides, ascending — the
/// elementary-interval boundaries of the join's endpoint domain. Inputs
/// are row sequences (begin-sorted or not; only the multiset of endpoint
/// values matters). `O(n log n)`; prefer
/// [`elementary_boundaries_from_events`] when both sides carry prebuilt
/// event lists.
pub fn elementary_boundaries(
    left: &[&Row],
    (lts, lte): (usize, usize),
    right: &[&Row],
    (rts, rte): (usize, usize),
) -> Vec<i64> {
    let mut b: Vec<i64> = Vec::with_capacity(2 * (left.len() + right.len()));
    // lint:allow(cancellation) linear endpoint collection, no pair blowup
    for r in left {
        b.push(r.int(lts));
        b.push(r.int(lte));
    }
    // lint:allow(cancellation) linear endpoint collection, no pair blowup
    for r in right {
        b.push(r.int(rts));
        b.push(r.int(rte));
    }
    b.sort_unstable();
    b.dedup();
    b
}

/// [`elementary_boundaries`] from two prebuilt [`EventList`]s: the four
/// endpoint streams are already sorted, so the boundaries come out of
/// three linear merges — `O(n)`, no re-sort.
pub fn elementary_boundaries_from_events(l: &EventList, r: &EventList) -> Vec<i64> {
    let keys = |evs: &[(i64, u32)]| evs.iter().map(|&(k, _)| k).collect::<Vec<_>>();
    let lb = merge_dedup(&keys(l.by_begin()), &keys(l.by_end()));
    let rb = merge_dedup(&keys(r.by_begin()), &keys(r.by_end()));
    merge_dedup(&lb, &rb)
}

/// Linear merge of two ascending lists, deduplicated.
fn merge_dedup(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut out: Vec<i64> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let push = |out: &mut Vec<i64>, v: i64| {
        if out.last() != Some(&v) {
            out.push(v);
        }
    };
    // lint:allow(cancellation) linear merge of already-materialized lists
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            push(&mut out, a[i]);
            i += 1;
        } else {
            push(&mut out, b[j]);
            j += 1;
        }
    }
    // lint:allow(cancellation) linear merge tail
    for &v in &a[i..] {
        push(&mut out, v);
    }
    // lint:allow(cancellation) linear merge tail
    for &v in &b[j..] {
        push(&mut out, v);
    }
    out
}

/// Picks up to `slabs - 1` interior cut points from the ascending
/// elementary-interval `boundaries`, spaced evenly *by boundary count* (so
/// endpoint-dense regions get proportionally more slabs than sparse ones
/// — the balance heuristic). Cuts are strictly increasing; slab `k`
/// covers `[cuts[k-1], cuts[k])` with the first and last slab unbounded.
/// Fewer cuts than requested come back when the domain has fewer distinct
/// endpoints than slabs (the `P > #endpoints` degenerate case).
pub fn choose_cuts(boundaries: &[i64], slabs: usize) -> Vec<i64> {
    if slabs <= 1 || boundaries.len() < 2 {
        return Vec::new();
    }
    let mut cuts = Vec::with_capacity(slabs - 1);
    // lint:allow(cancellation) bounded by the requested slab count
    for i in 1..slabs {
        let idx = (i * boundaries.len() / slabs).min(boundaries.len() - 1);
        let c = boundaries[idx];
        // Skip degenerate cuts: a repeat produces an empty slab with no
        // possible overlap start, and the minimum boundary would make
        // slab 0 vacuous.
        if c != boundaries[0] && cuts.last() != Some(&c) {
            cuts.push(c);
        }
    }
    cuts
}

/// The parallel endpoint-sweep join over begin-sorted sides.
///
/// `cuts` are strictly increasing slab boundaries (see [`choose_cuts`]);
/// `cuts.len() + 1` slabs run on scoped worker threads (the calling
/// thread takes the first slab), each sweeping the rows overlapping its
/// slab with the sequential kernel and emitting only the pairs whose
/// overlap start lies inside the slab. `map` is applied to every
/// surviving pair in the worker (so per-pair work — row construction,
/// residual predicates — parallelizes too); `None` results are dropped.
/// Output order is slab-major (deterministic for fixed cuts).
///
/// With `cuts` empty this *is* the sequential sweep (no threads spawned).
pub fn parallel_sweep_join_presorted<'a, R, F>(
    left: &[&'a Row],
    right: &[&'a Row],
    lcols: (usize, usize),
    rcols: (usize, usize),
    cuts: &[i64],
    map: F,
) -> (Vec<R>, ParallelJoinStats)
where
    R: Send,
    F: Fn(&'a Row, &'a Row) -> Option<R> + Sync,
{
    let infallible: Result<_, std::convert::Infallible> =
        try_parallel_sweep_join_presorted(left, right, lcols, rcols, cuts, |l, r| Ok(map(l, r)));
    let Ok(out) = infallible;
    out
}

/// The fallible form of [`parallel_sweep_join_presorted`]: `map` may
/// return an error (e.g. a cooperative-cancellation check tripping inside
/// a slab worker), which aborts that slab's sweep immediately and fails
/// the whole join. All workers are scoped, so every thread has finished
/// before the first error is returned; with multiple failing slabs the
/// lowest slab's error wins (deterministic for fixed cuts).
pub fn try_parallel_sweep_join_presorted<'a, R, E, F>(
    left: &[&'a Row],
    right: &[&'a Row],
    (lts, lte): (usize, usize),
    (rts, rte): (usize, usize),
    cuts: &[i64],
    map: F,
) -> Result<(Vec<R>, ParallelJoinStats), E>
where
    R: Send,
    E: Send,
    F: Fn(&'a Row, &'a Row) -> Result<Option<R>, E> + Sync,
{
    if cuts.is_empty() {
        let mut out = Vec::new();
        try_sweep_join_presorted(left, right, (lts, lte), (rts, rte), |l, r| {
            if let Some(v) = map(l, r)? {
                out.push(v);
            }
            Ok(())
        })?;
        return Ok((
            out,
            ParallelJoinStats {
                slabs: 1,
                suppressed: 0,
            },
        ));
    }
    debug_assert!(
        cuts.windows(2).all(|w| w[0] < w[1]),
        "slab cuts must be strictly increasing"
    );
    let slabs = cuts.len() + 1;
    let run_slab = |k: usize| -> Result<(Vec<R>, u64), E> {
        let lo = (k > 0).then(|| cuts[k - 1]);
        let hi = (k < cuts.len()).then(|| cuts[k]);
        let l_slab = slab_rows(left, (lts, lte), lo, hi);
        let r_slab = slab_rows(right, (rts, rte), lo, hi);
        let mut out = Vec::new();
        let mut suppressed = 0u64;
        try_sweep_join_presorted(&l_slab, &r_slab, (lts, lte), (rts, rte), |l, r| {
            // Credit rule: the overlap's start is below this slab exactly
            // when a lower slab already emitted the pair. (It cannot be
            // at or above `hi`: both begins are < `hi` by construction.)
            let start = l.int(lts).max(r.int(rts));
            if lo.is_some_and(|lo| start < lo) {
                suppressed += 1;
                return Ok(());
            }
            if let Some(v) = map(l, r)? {
                out.push(v);
            }
            Ok(())
        })?;
        Ok((out, suppressed))
    };
    let results: Vec<Result<(Vec<R>, u64), E>> = std::thread::scope(|scope| {
        let run_slab = &run_slab;
        let handles: Vec<_> = (1..slabs)
            .map(|k| scope.spawn(move || run_slab(k)))
            .collect();
        // The calling thread works slab 0 instead of idling on join().
        let first = run_slab(0);
        let mut all = Vec::with_capacity(slabs);
        all.push(first);
        all.extend(
            handles
                .into_iter()
                .map(|h| h.join().expect("slab worker panicked")),
        );
        all
    });
    let mut stats = ParallelJoinStats {
        slabs,
        suppressed: 0,
    };
    let mut out = Vec::new();
    // lint:allow(cancellation) bounded by slab count; workers already checked
    for r in results {
        let (v, s) = r?;
        out.extend(v);
        stats.suppressed += s;
    }
    Ok((out, stats))
}

/// The rows of a begin-sorted side whose interval overlaps the slab
/// `[lo, hi)` (`None` = unbounded): the begin-order prefix with
/// `begin < hi`, filtered to `end > lo` — still begin-sorted.
fn slab_rows<'a>(
    side: &[&'a Row],
    (ts, te): (usize, usize),
    lo: Option<i64>,
    hi: Option<i64>,
) -> Vec<&'a Row> {
    let prefix = match hi {
        Some(hi) => &side[..side.partition_point(|r| r.int(ts) < hi)],
        None => side,
    };
    match lo {
        Some(lo) => prefix.iter().copied().filter(|r| r.int(te) > lo).collect(),
        None => prefix.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::sweep_join;
    use storage::row;

    fn sequential_pairs(
        left: &[Row],
        right: &[Row],
        lcols: (usize, usize),
        rcols: (usize, usize),
    ) -> Vec<(Row, Row)> {
        let mut out = Vec::new();
        sweep_join(left, right, lcols, rcols, |l, r| {
            out.push((l.clone(), r.clone()));
        });
        out.sort();
        out
    }

    fn parallel_pairs(
        left: &[Row],
        right: &[Row],
        lcols: (usize, usize),
        rcols: (usize, usize),
        slabs: usize,
    ) -> (Vec<(Row, Row)>, ParallelJoinStats) {
        let mut l: Vec<&Row> = left.iter().collect();
        let mut r: Vec<&Row> = right.iter().collect();
        l.sort_by_key(|row| row.int(lcols.0));
        r.sort_by_key(|row| row.int(rcols.0));
        let cuts = choose_cuts(&elementary_boundaries(&l, lcols, &r, rcols), slabs);
        let (mut out, stats) =
            parallel_sweep_join_presorted(&l, &r, lcols, rcols, &cuts, |a, b| {
                Some((a.clone(), b.clone()))
            });
        out.sort();
        (out, stats)
    }

    #[test]
    fn merge_dedup_merges_and_dedups() {
        assert_eq!(merge_dedup(&[1, 3, 3, 5], &[0, 3, 6]), vec![0, 1, 3, 5, 6]);
        assert_eq!(merge_dedup(&[], &[2, 2]), vec![2]);
        assert_eq!(merge_dedup(&[], &[]), Vec::<i64>::new());
    }

    #[test]
    fn boundaries_from_events_match_sorted_collect() {
        let rows = vec![row![1, 3, 10], row![2, 8, 16], row![3, 0, 4], row![4, 8, 9]];
        let refs: Vec<&Row> = rows.iter().collect();
        let ev = EventList::build(&rows, 1, 2);
        assert_eq!(
            elementary_boundaries_from_events(&ev, &ev),
            elementary_boundaries(&refs, (1, 2), &refs, (1, 2)),
        );
    }

    #[test]
    fn choose_cuts_handles_degenerate_domains() {
        assert!(choose_cuts(&[], 4).is_empty());
        assert!(choose_cuts(&[7], 4).is_empty(), "one endpoint, no cut");
        assert!(choose_cuts(&[3, 9], 1).is_empty(), "one slab, no cut");
        // More slabs than endpoints: cuts collapse, stay strictly
        // increasing, and never include the minimum.
        let cuts = choose_cuts(&[3, 9], 8);
        assert_eq!(cuts, vec![9]);
        let cuts = choose_cuts(&[0, 5, 9], 5);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        assert!(!cuts.contains(&0));
    }

    #[test]
    fn single_slab_equals_sequential() {
        let l = vec![row![1, 0, 10], row![2, 5, 7]];
        let r = vec![row![3, 6, 12]];
        let (got, stats) = parallel_pairs(&l, &r, (1, 2), (1, 2), 1);
        assert_eq!(got, sequential_pairs(&l, &r, (1, 2), (1, 2)));
        assert_eq!(stats.slabs, 1);
        assert_eq!(stats.suppressed, 0);
    }

    #[test]
    fn straddling_pairs_are_emitted_exactly_once() {
        // Every interval covers the whole domain: every pair overlaps in
        // every slab, so all the dedup pressure is on the credit rule.
        let l = vec![row![1, 0, 100], row![2, 0, 100], row![3, 0, 100]];
        let r = l.clone();
        for slabs in [1, 2, 3, 4, 8] {
            let (got, _) = parallel_pairs(&l, &r, (1, 2), (1, 2), slabs);
            assert_eq!(got.len(), 9, "{slabs} slabs");
            assert_eq!(got, sequential_pairs(&l, &r, (1, 2), (1, 2)));
        }
    }

    #[test]
    fn duplicates_multiply_like_the_sequential_sweep() {
        let l = vec![row![1, 0, 10], row![1, 0, 10]];
        let r = vec![row![2, 5, 6], row![2, 5, 6], row![2, 5, 6]];
        for slabs in [1, 2, 4, 16] {
            let (got, _) = parallel_pairs(&l, &r, (1, 2), (1, 2), slabs);
            assert_eq!(got.len(), 6, "{slabs} slabs");
        }
    }

    #[test]
    fn empty_inputs_and_empty_slabs() {
        let l: Vec<Row> = Vec::new();
        let r = vec![row![1, 0, 5]];
        let (got, _) = parallel_pairs(&l, &r, (1, 2), (1, 2), 4);
        assert!(got.is_empty());
        // Gappy data: slabs in the gap have no rows at all.
        let l = vec![row![1, 0, 2], row![2, 1000, 1002]];
        let (got, stats) = parallel_pairs(&l, &l, (1, 2), (1, 2), 4);
        assert_eq!(got, sequential_pairs(&l, &l, (1, 2), (1, 2)));
        assert!(stats.slabs >= 2);
    }

    #[test]
    fn try_variant_propagates_worker_errors_across_slab_counts() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let l: Vec<Row> = (0..40).map(|k| row![k as i64, 0, 100]).collect();
        let refs: Vec<&Row> = l.iter().collect();
        for slabs in [1, 2, 4, 8] {
            let cuts = choose_cuts(&elementary_boundaries(&refs, (1, 2), &refs, (1, 2)), slabs);
            let pairs = AtomicU64::new(0);
            let err =
                try_parallel_sweep_join_presorted(&refs, &refs, (1, 2), (1, 2), &cuts, |a, b| {
                    if pairs.fetch_add(1, Ordering::Relaxed) >= 10 {
                        Err(format!("cancelled at {slabs}"))
                    } else {
                        Ok(Some((a.clone(), b.clone())))
                    }
                })
                .unwrap_err();
            assert_eq!(err, format!("cancelled at {slabs}"));
            // Each slab stops at its first error, so pair work is bounded
            // well below the 1600 the full join would consider.
            assert!(pairs.load(Ordering::Relaxed) < 10 + slabs as u64 + 1);
        }
        // And the infallible wrapper still agrees with the sequential path.
        let (got, _) = parallel_pairs(&l, &l, (1, 2), (1, 2), 4);
        assert_eq!(got, sequential_pairs(&l, &l, (1, 2), (1, 2)));
    }

    #[test]
    fn agrees_with_sequential_on_pseudorandom_input_across_slab_counts() {
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut gen_side = |n: usize| -> Vec<Row> {
            (0..n)
                .map(|k| {
                    let b = (next() % 50) as i64;
                    let len = 1 + (next() % 20) as i64;
                    row![k as i64, b, b + len]
                })
                .collect()
        };
        let l = gen_side(150);
        let r = gen_side(110);
        let want = sequential_pairs(&l, &r, (1, 2), (1, 2));
        for slabs in [1, 2, 3, 4, 7, 8, 64] {
            let (got, stats) = parallel_pairs(&l, &r, (1, 2), (1, 2), slabs);
            assert_eq!(got, want, "{slabs} slabs");
            if slabs > 1 {
                assert!(stats.suppressed > 0, "straddlers exist at {slabs} slabs");
            }
        }
    }
}
