//! Bug detection: comparing an approach's output against the oracle.
//!
//! The harness uses these helpers to fill in Table 1 (which approaches are
//! AG-/BD-bug free, which have a unique encoding) and the "Bug" column of
//! Table 3 *experimentally*: instead of asserting what the paper claims, we
//! run each approach and diff it against the point-wise oracle.

use rewrite::periodenc::decode_rows;
use storage::Row;
use timeline::TimeDomain;

/// The outcome of diffing an approach against the oracle on one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discrepancy {
    /// Distinct tuples whose temporal annotation is missing or too small in
    /// the approach's output (e.g. gap rows the AG bug drops, multiplicity
    /// the BD bug swallows).
    pub missing: Vec<Row>,
    /// Distinct tuples the approach reports but the oracle does not (or
    /// with too large an annotation).
    pub spurious: Vec<Row>,
}

impl Discrepancy {
    /// Whether the approach matched the oracle exactly (up to snapshot
    /// equivalence).
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.spurious.is_empty()
    }
}

/// Compares two `PERIODENC`-encoded results (period = last two columns)
/// for *snapshot equivalence* and reports per-tuple discrepancies.
pub fn diff_against_oracle(
    approach: &[Row],
    oracle: &[Row],
    arity: usize,
    domain: TimeDomain,
) -> Discrepancy {
    let a = decode_rows(approach, arity, domain);
    let o = decode_rows(oracle, arity, domain);
    let mut missing = Vec::new();
    let mut spurious = Vec::new();
    for (tuple, ann) in o.iter() {
        if &a.annotation(tuple) != ann {
            let approx = a.annotation(tuple);
            // Tuple underrepresented in the approach?
            if !semiring::NaturallyOrdered::natural_leq(ann, &approx) {
                missing.push(tuple.clone());
            }
        }
    }
    for (tuple, ann) in a.iter() {
        let oracle_ann = o.annotation(tuple);
        if !semiring::NaturallyOrdered::natural_leq(ann, &oracle_ann) {
            spurious.push(tuple.clone());
        }
    }
    Discrepancy { missing, spurious }
}

/// Whether two encodings denote the same snapshot history.
pub fn snapshot_equivalent(a: &[Row], b: &[Row], arity: usize, domain: TimeDomain) -> bool {
    decode_rows(a, arity, domain) == decode_rows(b, arity, domain)
}

/// Whether an approach produced a *unique* (coalesced, canonical) encoding:
/// re-encoding its decoded logical content reproduces the rows exactly.
pub fn encoding_is_unique(rows: &[Row], arity: usize, domain: TimeDomain) -> bool {
    let mut sorted = rows.to_vec();
    sorted.sort_unstable();
    rewrite::periodenc::encode_relation(&decode_rows(rows, arity, domain)) == sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::row;

    #[test]
    fn clean_diff_on_identical_histories() {
        let domain = TimeDomain::new(0, 24);
        let a = vec![row!["x", 0, 10]];
        let b = vec![row!["x", 0, 5], row!["x", 5, 10]];
        let d = diff_against_oracle(&a, &b, 3, domain);
        assert!(d.is_clean());
        assert!(snapshot_equivalent(&a, &b, 3, domain));
    }

    #[test]
    fn missing_gap_rows_detected() {
        let domain = TimeDomain::new(0, 24);
        // Oracle has a count-0 row over [0,3); the approach misses it.
        let oracle = vec![row![0, 0, 3], row![1, 3, 10]];
        let approach = vec![row![1, 3, 10]];
        let d = diff_against_oracle(&approach, &oracle, 3, domain);
        assert_eq!(d.missing, vec![row![0]]);
        assert!(d.spurious.is_empty());
    }

    #[test]
    fn swallowed_multiplicity_detected() {
        let domain = TimeDomain::new(0, 24);
        // Oracle keeps 2 copies; the BD-buggy approach returns none.
        let oracle = vec![row!["SP", 6, 8], row!["SP", 6, 8]];
        let approach: Vec<Row> = vec![];
        let d = diff_against_oracle(&approach, &oracle, 3, domain);
        assert_eq!(d.missing, vec![row!["SP"]]);
    }

    #[test]
    fn spurious_rows_detected() {
        let domain = TimeDomain::new(0, 24);
        let oracle = vec![row!["x", 0, 5]];
        let approach = vec![row!["x", 0, 5], row!["y", 0, 5]];
        let d = diff_against_oracle(&approach, &oracle, 3, domain);
        assert_eq!(d.spurious, vec![row!["y"]]);
    }

    #[test]
    fn uniqueness_check() {
        let domain = TimeDomain::new(0, 24);
        // Coalesced + sorted: unique.
        assert!(encoding_is_unique(&[row!["x", 0, 10]], 3, domain));
        // Split encoding of the same content: not the canonical form.
        assert!(!encoding_is_unique(
            &[row!["x", 0, 5], row!["x", 5, 10]],
            3,
            domain
        ));
    }
}
