//! The point-wise oracle: snapshot semantics by definition.
//!
//! Evaluates a snapshot plan by materializing the database snapshot at
//! *every* time point of the domain (Definition 4.4), running the
//! non-temporal query over it with the ordinary engine, and encoding the
//! per-point results into the logical model. `O(|T| · query)` — usable for
//! verification on small domains, and as the SQL/TP-style comparator the
//! paper's related work discusses.

use crate::native::snapshot_to_plain_plan;
use algebra::SnapshotPlan;
use engine::Engine;
use semiring::Natural;
use snapshot_core::{PeriodRelation, SnapshotRelation};
use storage::{Catalog, Row, Table};
use timeline::TimeDomain;

/// The oracle evaluator.
#[derive(Debug, Clone)]
pub struct PointwiseOracle {
    domain: TimeDomain,
}

impl PointwiseOracle {
    /// Oracle over the given time domain.
    pub fn new(domain: TimeDomain) -> Self {
        PointwiseOracle { domain }
    }

    /// Evaluates the snapshot plan per time point, returning the logical
    /// model of the result (the unique coalesced encoding).
    pub fn eval(
        &self,
        plan: &SnapshotPlan,
        catalog: &Catalog,
    ) -> Result<PeriodRelation<Row, Natural>, String> {
        let engine = Engine::new();
        let mut result: SnapshotRelation<Row, Natural> = SnapshotRelation::empty(self.domain);
        for t in self.domain.points() {
            // Materialize the snapshot database at t: data columns of every
            // row whose interval contains t.
            let mut snapshot_catalog = Catalog::new();
            for name in catalog.table_names().collect::<Vec<_>>() {
                let table = catalog.get(name).unwrap();
                let Some((b, e)) = table.period() else {
                    snapshot_catalog.register(name, table.clone());
                    continue;
                };
                let mut snap = Table::new(table.schema().clone());
                for row in table.rows() {
                    if row.int(b) <= t.value() && t.value() < row.int(e) {
                        snap.push(row.clone());
                    }
                }
                snapshot_catalog.register(name, snap);
            }
            // The snapshot query as a plain plan over the materialized
            // snapshot (period columns projected away at the leaves).
            let plain = snapshot_to_plain_plan(plan, &snapshot_catalog)?;
            let out = engine.execute(&plain, &snapshot_catalog)?;
            for row in out.rows() {
                result.add_at(t, row.clone(), Natural(1));
            }
        }
        Ok(PeriodRelation::encode(&result))
    }

    /// Evaluates and returns the `PERIODENC` row encoding (sorted).
    pub fn eval_rows(&self, plan: &SnapshotPlan, catalog: &Catalog) -> Result<Vec<Row>, String> {
        Ok(rewrite::periodenc::encode_relation(
            &self.eval(plan, catalog)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql::{bind_statement, parse_statement, BoundStatement};
    use storage::{row, Schema, SqlType};

    fn catalog() -> Catalog {
        let works = Schema::of(&[
            ("name", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let mut w = Table::with_period(works, 2, 3);
        w.push(row!["Ann", "SP", 3, 10]);
        w.push(row!["Joe", "NS", 8, 16]);
        w.push(row!["Sam", "SP", 8, 16]);
        w.push(row!["Ann", "SP", 18, 20]);
        let mut c = Catalog::new();
        c.register("works", w);
        c
    }

    fn snapshot_plan(sql: &str, c: &Catalog) -> SnapshotPlan {
        let stmt = parse_statement(sql).unwrap();
        match bind_statement(&stmt, c).unwrap() {
            BoundStatement::Snapshot { plan, .. } => plan,
            _ => panic!("expected snapshot query"),
        }
    }

    #[test]
    fn oracle_reproduces_figure_1b() {
        let c = catalog();
        let plan = snapshot_plan(
            "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')",
            &c,
        );
        let rows = PointwiseOracle::new(TimeDomain::new(0, 24))
            .eval_rows(&plan, &c)
            .unwrap();
        assert_eq!(
            rows,
            vec![
                row![0, 0, 3],
                row![0, 16, 18],
                row![0, 20, 24],
                row![1, 3, 8],
                row![1, 10, 16],
                row![1, 18, 20],
                row![2, 8, 10],
            ]
        );
    }

    #[test]
    fn oracle_matches_rewrite_pipeline() {
        let c = catalog();
        let domain = TimeDomain::new(0, 24);
        let queries = [
            "SEQ VT (SELECT skill FROM works)",
            "SEQ VT (SELECT name, skill FROM works WHERE skill = 'SP')",
            "SEQ VT (SELECT skill, count(*) AS c FROM works GROUP BY skill)",
        ];
        for q in queries {
            let plan = snapshot_plan(q, &c);
            let oracle = PointwiseOracle::new(domain).eval_rows(&plan, &c).unwrap();
            let compiled = rewrite::SnapshotCompiler::new(domain)
                .compile(&plan, &c)
                .unwrap();
            let engine_out = Engine::new()
                .execute(&compiled, &c)
                .unwrap()
                .canonicalized();
            assert_eq!(oracle, engine_out.rows().to_vec(), "mismatch for {q}");
        }
    }
}
