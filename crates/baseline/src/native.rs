//! "Native"-style snapshot evaluators with the AG and BD bugs.
//!
//! These reproduce, inside our engine, the two classes of approaches the
//! paper benchmarks against and catalogues in Table 1:
//!
//! * [`BaselineKind::Alignment`] — temporal alignment as in the PG-Nat
//!   kernel patches (paper refs [16, 18]): every binary operator first
//!   *aligns* its inputs (splits each side at the other side's interval
//!   endpoints within matching groups), aggregation splits its input and
//!   aggregates per fragment without pre-aggregation, and difference is
//!   evaluated with **set** semantics. Snapshot aggregation yields no rows
//!   for gaps (AG bug) and difference ignores multiplicities (BD bug).
//! * [`BaselineKind::IntervalPreservation`] — ATSQL-style evaluation
//!   (paper ref \[9\]): joins intersect intervals pairwise, inputs survive
//!   fragmentarily into outputs, no coalescing — so the output encoding
//!   depends on the input encoding (non-unique). Shares the AG and BD bugs.
//!
//! Both evaluators optionally append our multiset coalescing as a final
//! step, matching the experimental setup of Section 10 ("paired with our
//! implementation of coalescing to produce a coalesced result").

use algebra::{BinOp, Expr, Plan, SnapshotNode, SnapshotPlan};
use engine::coalesce::coalesce_rows;
use engine::sliding::{Partial, SlidingAgg};
use engine::split::split_rows;
use engine::{eval_expr, eval_predicate};
use std::collections::HashMap;
use storage::{Catalog, Column, Row, Schema, SqlType, Table, Value};

/// Which native approach to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Temporal alignment (PG-Nat-like).
    Alignment,
    /// Interval preservation (ATSQL-like).
    IntervalPreservation,
}

/// A native-style evaluator for snapshot plans.
#[derive(Debug, Clone)]
pub struct NativeEvaluator {
    kind: BaselineKind,
    /// Coalesce the final result (the Section 10 experimental setup).
    coalesce_result: bool,
}

impl NativeEvaluator {
    /// Evaluator of the given kind with final coalescing enabled.
    pub fn new(kind: BaselineKind) -> Self {
        NativeEvaluator {
            kind,
            coalesce_result: true,
        }
    }

    /// Controls whether the final result is coalesced.
    pub fn with_final_coalesce(mut self, coalesce: bool) -> Self {
        self.coalesce_result = coalesce;
        self
    }

    /// Evaluates a snapshot plan, returning rows `data ++ [ts, te]` as a
    /// table (schema = plan data schema plus the period columns).
    pub fn eval(&self, plan: &SnapshotPlan, catalog: &Catalog) -> Result<Table, String> {
        let rows = self.eval_rows(plan, catalog)?;
        let arity = plan.schema.arity() + 2;
        let rows = if self.coalesce_result {
            coalesce_rows(&rows, arity)
        } else {
            rows
        };
        let mut schema_cols: Vec<Column> = plan.schema.columns().to_vec();
        schema_cols.push(Column::new("__ts", SqlType::Int));
        schema_cols.push(Column::new("__te", SqlType::Int));
        let mut out = Table::new(Schema::new(schema_cols));
        out.extend(rows);
        Ok(out)
    }

    fn eval_rows(&self, plan: &SnapshotPlan, catalog: &Catalog) -> Result<Vec<Row>, String> {
        match &plan.node {
            SnapshotNode::Access {
                table,
                data_cols,
                period,
            } => {
                let stored = catalog.require(table)?;
                Ok(stored
                    .rows()
                    .iter()
                    .map(|r| {
                        let mut values: Vec<Value> =
                            data_cols.iter().map(|&i| r.get(i).clone()).collect();
                        values.push(r.get(period.0).clone());
                        values.push(r.get(period.1).clone());
                        Row::new(values)
                    })
                    .collect())
            }
            SnapshotNode::Filter { input, predicate } => {
                let rows = self.eval_rows(input, catalog)?;
                Ok(rows
                    .into_iter()
                    .filter(|r| eval_predicate(predicate, r))
                    .collect())
            }
            SnapshotNode::Project { input, exprs } => {
                let rows = self.eval_rows(input, catalog)?;
                let d = input.schema.arity();
                Ok(rows
                    .iter()
                    .map(|r| {
                        let mut values: Vec<Value> =
                            exprs.iter().map(|e| eval_expr(e, r)).collect();
                        values.push(r.get(d).clone());
                        values.push(r.get(d + 1).clone());
                        Row::new(values)
                    })
                    .collect())
            }
            SnapshotNode::Join {
                left,
                right,
                condition,
            } => {
                let l = self.eval_rows(left, catalog)?;
                let r = self.eval_rows(right, catalog)?;
                let (ld, rd) = (left.schema.arity(), right.schema.arity());
                let keys = equi_pairs(condition, ld, rd);
                match self.kind {
                    BaselineKind::Alignment => Ok(aligned_join(&l, &r, ld, rd, &keys, condition)),
                    BaselineKind::IntervalPreservation => {
                        Ok(intersect_join(&l, &r, ld, rd, &keys, condition))
                    }
                }
            }
            SnapshotNode::Union { left, right } => {
                let mut l = self.eval_rows(left, catalog)?;
                l.extend(self.eval_rows(right, catalog)?);
                Ok(l)
            }
            SnapshotNode::ExceptAll { left, right } => {
                // Both native families treat difference as NOT EXISTS over
                // time: a left tuple survives only while *no* value-equal
                // right tuple is valid — multiplicities are ignored.
                // This is the bag difference (BD) bug.
                let l = self.eval_rows(left, catalog)?;
                let r = self.eval_rows(right, catalog)?;
                Ok(set_minus_over_time(&l, &r, left.schema.arity()))
            }
            SnapshotNode::Aggregate {
                input,
                group_cols,
                aggs,
            } => {
                // Split at the group's endpoints, then aggregate each
                // fragment group. No gap rows are produced — fragments only
                // exist where input tuples exist (the AG bug) — and the
                // split output is fully materialized (no pre-aggregation).
                let rows = self.eval_rows(input, catalog)?;
                let arity = input.schema.arity() + 2;
                let fragments = split_rows(&rows, &rows, group_cols, arity);
                let (ts, te) = (arity - 2, arity - 1);
                let mut input_schema_cols = input.schema.columns().to_vec();
                input_schema_cols.push(Column::new("__ts", SqlType::Int));
                input_schema_cols.push(Column::new("__te", SqlType::Int));
                let input_schema = Schema::new(input_schema_cols);
                let arg_types = engine::temporal::agg_arg_types(aggs, &input_schema)?;

                let mut groups: HashMap<Vec<Value>, Vec<SlidingAgg>> = HashMap::new();
                for r in &fragments {
                    let mut key: Vec<Value> =
                        group_cols.iter().map(|&i| r.get(i).clone()).collect();
                    key.push(r.get(ts).clone());
                    key.push(r.get(te).clone());
                    let state = groups.entry(key).or_insert_with(|| {
                        aggs.iter()
                            .zip(&arg_types)
                            .map(|(a, ty)| SlidingAgg::new(a.func.clone(), *ty))
                            .collect()
                    });
                    for (a, s) in aggs.iter().zip(state.iter_mut()) {
                        let mut p = Partial::new();
                        let v = match &a.arg {
                            Some(e) => eval_expr(e, r),
                            None => Value::Int(1),
                        };
                        p.add_value(&v);
                        s.add(&p);
                    }
                }
                let g = group_cols.len();
                Ok(groups
                    .into_iter()
                    .map(|(key, state)| {
                        // key = [G..., ts, te] → output [G..., aggs..., ts, te]
                        let mut values: Vec<Value> = key[..g].to_vec();
                        values.extend(state.iter().map(|s| s.current()));
                        values.push(key[g].clone());
                        values.push(key[g + 1].clone());
                        Row::new(values)
                    })
                    .collect())
            }
        }
    }
}

/// Maps a snapshot plan to a plain (non-temporal) plan over a catalog of
/// *snapshot* tables — used by the point-wise oracle, where each table
/// already contains only the rows valid at the current time point.
pub fn snapshot_to_plain_plan(plan: &SnapshotPlan, catalog: &Catalog) -> Result<Plan, String> {
    match &plan.node {
        SnapshotNode::Access {
            table, data_cols, ..
        } => {
            let stored = catalog.require(table)?;
            let scan = Plan::scan(table.clone(), stored.schema().clone());
            let names = plan
                .schema
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect();
            scan.project(data_cols.iter().map(|&i| Expr::Col(i)).collect(), names)
        }
        SnapshotNode::Filter { input, predicate } => {
            Ok(snapshot_to_plain_plan(input, catalog)?.filter(predicate.clone()))
        }
        SnapshotNode::Project { input, exprs } => {
            let names = plan
                .schema
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect();
            snapshot_to_plain_plan(input, catalog)?.project(exprs.clone(), names)
        }
        SnapshotNode::Join {
            left,
            right,
            condition,
        } => Ok(snapshot_to_plain_plan(left, catalog)?
            .join(snapshot_to_plain_plan(right, catalog)?, condition.clone())),
        SnapshotNode::Union { left, right } => {
            snapshot_to_plain_plan(left, catalog)?.union(snapshot_to_plain_plan(right, catalog)?)
        }
        SnapshotNode::ExceptAll { left, right } => snapshot_to_plain_plan(left, catalog)?
            .except_all(snapshot_to_plain_plan(right, catalog)?),
        SnapshotNode::Aggregate {
            input,
            group_cols,
            aggs,
        } => snapshot_to_plain_plan(input, catalog)?.aggregate(group_cols.clone(), aggs.clone()),
    }
}

/// `left_col = right_col` pairs from a snapshot join condition (indices in
/// the concatenated *data* schemas).
fn equi_pairs(condition: &Expr, ld: usize, _rd: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    fn walk(e: &Expr, ld: usize, out: &mut Vec<(usize, usize)>) {
        match e {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                walk(left, ld, out);
                walk(right, ld, out);
            }
            Expr::Binary {
                op: BinOp::Eq,
                left,
                right,
            } => {
                if let (Expr::Col(i), Expr::Col(j)) = (left.as_ref(), right.as_ref()) {
                    if *i < ld && *j >= ld {
                        out.push((*i, *j - ld));
                    } else if *j < ld && *i >= ld {
                        out.push((*j, *i - ld));
                    }
                }
            }
            _ => {}
        }
    }
    walk(condition, ld, &mut out);
    out
}

fn row_interval(r: &Row, data: usize) -> (i64, i64) {
    (r.int(data), r.int(data + 1))
}

/// Condition evaluation layout: `ldata ++ rdata` (+ period appended after).
fn joined_row(l: &Row, r: &Row, ld: usize, rd: usize, b: i64, e: i64) -> Row {
    let mut values = Vec::with_capacity(ld + rd + 2);
    values.extend_from_slice(&l.values()[..ld]);
    values.extend_from_slice(&r.values()[..rd]);
    values.push(Value::Int(b));
    values.push(Value::Int(e));
    Row::new(values)
}

/// ATSQL-style join: hash (or loop) on the equality columns, intersect
/// overlapping validity intervals pairwise.
fn intersect_join(
    left: &[Row],
    right: &[Row],
    ld: usize,
    rd: usize,
    keys: &[(usize, usize)],
    condition: &Expr,
) -> Vec<Row> {
    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for r in right {
        let key: Vec<Value> = keys.iter().map(|&(_, j)| r.get(j).clone()).collect();
        table.entry(key).or_default().push(r);
    }
    let mut out = Vec::new();
    for l in left {
        let key: Vec<Value> = keys.iter().map(|&(i, _)| l.get(i).clone()).collect();
        let Some(candidates) = table.get(&key) else {
            continue;
        };
        let (lb, le) = row_interval(l, ld);
        for r in candidates {
            let (rb, re) = row_interval(r, rd);
            let (b, e) = (lb.max(rb), le.min(re));
            if b >= e {
                continue;
            }
            let row = joined_row(l, r, ld, rd, b, e);
            if eval_predicate(condition, &row) {
                out.push(row);
            }
        }
    }
    out
}

/// Alignment join: both sides are first split at the union of interval
/// endpoints of value-matching partners, after which overlapping fragments
/// have identical intervals and join with an equality on the period.
fn aligned_join(
    left: &[Row],
    right: &[Row],
    ld: usize,
    rd: usize,
    keys: &[(usize, usize)],
    condition: &Expr,
) -> Vec<Row> {
    // Endpoint sets per join-key group, from both sides.
    let mut endpoints: HashMap<Vec<Value>, Vec<i64>> = HashMap::new();
    for l in left {
        let key: Vec<Value> = keys.iter().map(|&(i, _)| l.get(i).clone()).collect();
        let (b, e) = row_interval(l, ld);
        let ep = endpoints.entry(key).or_default();
        ep.push(b);
        ep.push(e);
    }
    for r in right {
        let key: Vec<Value> = keys.iter().map(|&(_, j)| r.get(j).clone()).collect();
        let (b, e) = row_interval(r, rd);
        let ep = endpoints.entry(key).or_default();
        ep.push(b);
        ep.push(e);
    }
    for ep in endpoints.values_mut() {
        ep.sort_unstable();
        ep.dedup();
    }

    let fragment = |rows: &[Row], data: usize, key_cols: &dyn Fn(&Row) -> Vec<Value>| -> Vec<Row> {
        let mut out = Vec::new();
        for r in rows {
            let key = key_cols(r);
            let ep = &endpoints[&key];
            let (b, e) = row_interval(r, data);
            let mut cur = b;
            let start = ep.partition_point(|&p| p <= b);
            for &p in &ep[start..] {
                if p >= e {
                    break;
                }
                out.push(replace_period(r, data, cur, p));
                cur = p;
            }
            out.push(replace_period(r, data, cur, e));
        }
        out
    };
    let lfrag = fragment(left, ld, &|r: &Row| {
        keys.iter().map(|&(i, _)| r.get(i).clone()).collect()
    });
    let rfrag = fragment(right, rd, &|r: &Row| {
        keys.iter().map(|&(_, j)| r.get(j).clone()).collect()
    });

    // Equijoin on (key, ts, te): aligned fragments match exactly.
    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for r in &rfrag {
        let mut key: Vec<Value> = keys.iter().map(|&(_, j)| r.get(j).clone()).collect();
        let (b, e) = row_interval(r, rd);
        key.push(Value::Int(b));
        key.push(Value::Int(e));
        table.entry(key).or_default().push(r);
    }
    let mut out = Vec::new();
    for l in &lfrag {
        let mut key: Vec<Value> = keys.iter().map(|&(i, _)| l.get(i).clone()).collect();
        let (b, e) = row_interval(l, ld);
        key.push(Value::Int(b));
        key.push(Value::Int(e));
        let Some(candidates) = table.get(&key) else {
            continue;
        };
        for r in candidates {
            let row = joined_row(l, r, ld, rd, b, e);
            if eval_predicate(condition, &row) {
                out.push(row);
            }
        }
    }
    out
}

fn replace_period(r: &Row, data: usize, b: i64, e: i64) -> Row {
    let mut values = r.values().to_vec();
    values[data] = Value::Int(b);
    values[data + 1] = Value::Int(e);
    Row::new(values)
}

/// NOT-EXISTS-over-time difference (the BD bug): each left row keeps the
/// parts of its interval not covered by *any* value-equal right row.
fn set_minus_over_time(left: &[Row], right: &[Row], data: usize) -> Vec<Row> {
    // Merge right coverage per value-equivalent key.
    let mut coverage: HashMap<Vec<Value>, Vec<(i64, i64)>> = HashMap::new();
    for r in right {
        coverage
            .entry(r.values()[..data].to_vec())
            .or_default()
            .push(row_interval(r, data));
    }
    for intervals in coverage.values_mut() {
        intervals.sort_unstable();
        let mut merged: Vec<(i64, i64)> = Vec::with_capacity(intervals.len());
        for &(b, e) in intervals.iter() {
            match merged.last_mut() {
                Some(last) if b <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((b, e)),
            }
        }
        *intervals = merged;
    }

    let mut out = Vec::new();
    for l in left {
        let (mut cur, e) = row_interval(l, data);
        let key = l.values()[..data].to_vec();
        if let Some(cover) = coverage.get(&key) {
            for &(cb, ce) in cover {
                if ce <= cur {
                    continue;
                }
                if cb >= e {
                    break;
                }
                if cb > cur {
                    out.push(replace_period(l, data, cur, cb));
                }
                cur = cur.max(ce);
                if cur >= e {
                    break;
                }
            }
        }
        if cur < e {
            out.push(replace_period(l, data, cur, e));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sql::{bind_statement, parse_statement, BoundStatement};
    use storage::row;

    fn catalog() -> Catalog {
        let works = Schema::of(&[
            ("name", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let assign = Schema::of(&[
            ("mach", SqlType::Str),
            ("skill", SqlType::Str),
            ("ts", SqlType::Int),
            ("te", SqlType::Int),
        ]);
        let mut w = Table::with_period(works, 2, 3);
        w.push(row!["Ann", "SP", 3, 10]);
        w.push(row!["Joe", "NS", 8, 16]);
        w.push(row!["Sam", "SP", 8, 16]);
        w.push(row!["Ann", "SP", 18, 20]);
        let mut a = Table::with_period(assign, 2, 3);
        a.push(row!["M1", "SP", 3, 12]);
        a.push(row!["M2", "SP", 6, 14]);
        a.push(row!["M3", "NS", 3, 16]);
        let mut c = Catalog::new();
        c.register("works", w);
        c.register("assign", a);
        c
    }

    fn snapshot_plan(sql: &str, c: &Catalog) -> SnapshotPlan {
        let stmt = parse_statement(sql).unwrap();
        match bind_statement(&stmt, c).unwrap() {
            BoundStatement::Snapshot { plan, .. } => plan,
            _ => panic!("expected snapshot query"),
        }
    }

    /// The AG bug: the native evaluators return NO rows for the gaps of
    /// Figure 1b (times [0,3), [16,18), [20,24)).
    #[test]
    fn aggregation_gap_bug_reproduced() {
        let c = catalog();
        let plan = snapshot_plan(
            "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')",
            &c,
        );
        for kind in [BaselineKind::Alignment, BaselineKind::IntervalPreservation] {
            let out = NativeEvaluator::new(kind).eval(&plan, &c).unwrap();
            let rows = out.canonicalized();
            assert_eq!(
                rows.rows(),
                &[
                    row![1, 3, 8],
                    row![1, 10, 16],
                    row![1, 18, 20],
                    row![2, 8, 10],
                ],
                "{kind:?} must miss the gap rows (AG bug)"
            );
        }
    }

    /// The BD bug: NOT EXISTS-style difference drops the SP rows of
    /// Figure 1c entirely.
    #[test]
    fn bag_difference_bug_reproduced() {
        let c = catalog();
        let plan = snapshot_plan(
            "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)",
            &c,
        );
        for kind in [BaselineKind::Alignment, BaselineKind::IntervalPreservation] {
            let out = NativeEvaluator::new(kind).eval(&plan, &c).unwrap();
            let rows = out.canonicalized();
            assert_eq!(
                rows.rows(),
                &[row!["NS", 3, 8]],
                "{kind:?} must drop the SP rows (BD bug)"
            );
        }
    }

    /// Joins are snapshot-reducible in both baselines: they agree with the
    /// correct pipeline (positive relational algebra is safe, Section 2).
    #[test]
    fn joins_agree_with_rewrite() {
        let c = catalog();
        let domain = timeline::TimeDomain::new(0, 24);
        let q = "SEQ VT (SELECT w.name, a.mach FROM works w JOIN assign a \
                 ON w.skill = a.skill)";
        let plan = snapshot_plan(q, &c);
        let compiled = rewrite::SnapshotCompiler::new(domain)
            .compile(&plan, &c)
            .unwrap();
        let reference = engine::Engine::new()
            .execute(&compiled, &c)
            .unwrap()
            .canonicalized();
        for kind in [BaselineKind::Alignment, BaselineKind::IntervalPreservation] {
            let out = NativeEvaluator::new(kind).eval(&plan, &c).unwrap();
            assert_eq!(
                out.canonicalized().rows(),
                reference.rows(),
                "{kind:?} join diverges"
            );
        }
    }

    /// Without final coalescing, interval preservation's output encoding
    /// depends on the input encoding: the non-unique-encoding row of
    /// Table 1.
    #[test]
    fn interval_preservation_encoding_not_unique() {
        let mk_catalog = |split: bool| {
            let schema = Schema::of(&[
                ("name", SqlType::Str),
                ("skill", SqlType::Str),
                ("ts", SqlType::Int),
                ("te", SqlType::Int),
            ]);
            let mut w = Table::with_period(schema, 2, 3);
            if split {
                // (Ann, SP, [3,10)) presented as two adjacent rows.
                w.push(row!["Ann", "SP", 3, 8]);
                w.push(row!["Ann", "SP", 8, 10]);
            } else {
                w.push(row!["Ann", "SP", 3, 10]);
            }
            let mut c = Catalog::new();
            c.register("works", w);
            c
        };
        let q = "SEQ VT (SELECT name FROM works)";
        let eval = |c: &Catalog| {
            let plan = snapshot_plan(q, c);
            NativeEvaluator::new(BaselineKind::IntervalPreservation)
                .with_final_coalesce(false)
                .eval(&plan, c)
                .unwrap()
                .canonicalized()
        };
        let a = eval(&mk_catalog(false));
        let b = eval(&mk_catalog(true));
        assert_ne!(
            a.rows(),
            b.rows(),
            "outputs differ though inputs are equivalent"
        );
    }

    #[test]
    fn set_minus_over_time_edges() {
        // Coverage merging across adjacent right intervals.
        let left = vec![row!["x", 0, 10]];
        let right = vec![row!["x", 2, 5], row!["x", 5, 7]];
        let out = set_minus_over_time(&left, &right, 1);
        assert_eq!(out, vec![row!["x", 0, 2], row!["x", 7, 10]]);
        // Full coverage leaves nothing.
        let right = vec![row!["x", 0, 10]];
        assert!(set_minus_over_time(&left, &right, 1).is_empty());
        // Unrelated values untouched.
        let right = vec![row!["y", 0, 10]];
        assert_eq!(set_minus_over_time(&left, &right, 1), left);
    }
}
