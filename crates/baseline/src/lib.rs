//! Comparator implementations for the paper's evaluation.
//!
//! Three evaluators for snapshot queries, mirroring the systems compared in
//! Section 10 and the approach matrix of Table 1:
//!
//! * [`pointwise`] — the executable form of the *abstract model*: evaluate
//!   the query over every snapshot of the time domain and encode the result.
//!   Slow by construction (the paper notes the same about SQL/TP-style
//!   evaluation), but it is the ground truth every other implementation is
//!   tested against.
//! * [`native`] with [`BaselineKind::Alignment`] — a PG-Nat-style
//!   evaluator (temporal alignment, refs [16, 18] of the paper):
//!   per-operator input splitting, aggregation *without* gap rows (the AG
//!   bug), difference with *set* semantics (the BD bug), and no
//!   pre-aggregation.
//! * [`native`] with [`BaselineKind::IntervalPreservation`] — an
//!   ATSQL-style evaluator: intervals of input tuples survive into outputs,
//!   with the same AG and BD bugs and a non-unique output encoding.
//!
//! The bug-detection helpers in [`bugs`] compare any evaluator against the
//! oracle and report aggregation-gap and bag-difference discrepancies —
//! that is how the harness fills in the "Bug" column of Table 3 and the
//! matrix of Table 1 experimentally.

pub mod bugs;
pub mod native;
pub mod pointwise;

pub use native::{BaselineKind, NativeEvaluator};
pub use pointwise::PointwiseOracle;
