//! The shared database: one catalog, many concurrent sessions.
//!
//! [`SharedDatabase`] is the `Arc`-based handle that turns a [`Database`]
//! into a multi-session object: any number of threads hold clones of the
//! handle and open [`crate::Session`]s over it. Reads pin MVCC snapshots
//! from the [`snapshot_txn::TxnManager`] (readers never block and never
//! see in-flight writes); writes — bare statements wrapped in implicit
//! transactions, or explicit `BEGIN`…`COMMIT` blocks — go through the
//! serialized, first-committer-wins commit path.
//!
//! Durability composes at the commit boundary: the write-ahead log
//! receives each transaction as one atomic commit unit (single fsync —
//! group commit), written under the commit lock *after* conflict
//! validation and *before* publication, so the log contains exactly the
//! committed history in commit order. Recovery replays it through an
//! ordinary session; an unterminated unit at the tail was already
//! discarded by the persistence layer.

use crate::database::Database;
use crate::session::{RecoveryReport, Session, SessionOptions};
use index::MaintenanceStats;
use snapshot_txn::{CatalogSnapshot, CommitOutcome, Transaction, TxnManager};
use snapshot_wal::{Persistence, PersistenceOptions};
use sql::parse_sql_statement;
use std::path::Path;
use std::sync::{Arc, Mutex};
use storage::Table;

#[derive(Debug)]
struct Inner {
    txns: TxnManager,
    /// The database directory, when durable. Behind its own lock: the
    /// commit path appends under the transaction manager's commit lock,
    /// checkpoints snapshot the committed catalog.
    persistence: Mutex<Option<Persistence>>,
}

/// A shared, multi-session database handle (`Arc`-based; clone freely and
/// move clones across threads).
#[derive(Debug, Clone)]
pub struct SharedDatabase {
    inner: Arc<Inner>,
}

/// See [`snapshot_txn::manager`]: poisoning means a panic elsewhere, not
/// inconsistent data — the helper recovers the guard and enforces the
/// declared order (`docs/lock_order.md`) in debug builds.
fn persistence_guard(inner: &Inner) -> snapshot_obs::LockGuard<'_, Option<Persistence>> {
    snapshot_obs::lock::lock("session.persistence", &inner.persistence)
}

impl SharedDatabase {
    /// Promotes a database into a shared, multi-session object. An
    /// attached [`Persistence`] comes along: commits log their unit to its
    /// WAL and checkpoints snapshot the committed catalog.
    pub fn new(db: Database) -> Self {
        let (catalog, indexes, persistence) = db.into_parts();
        SharedDatabase {
            inner: Arc::new(Inner {
                txns: TxnManager::new(catalog, indexes),
                persistence: Mutex::new(persistence),
            }),
        }
    }

    /// An empty, in-memory shared database.
    pub fn in_memory() -> Self {
        SharedDatabase::new(Database::new())
    }

    /// Opens a *durable* shared database on a directory: recovery loads
    /// the newest valid checkpoint and replays the WAL tail through an
    /// ordinary session (commit units commit, the persistence layer
    /// already discarded any unterminated suffix), then attaches the log
    /// so every later commit is written ahead of publication.
    pub fn open_durable(
        dir: &Path,
        options: SessionOptions,
        persistence: PersistenceOptions,
    ) -> Result<(SharedDatabase, RecoveryReport), String> {
        let (persistence, recovery) = Persistence::open(dir, persistence)?;
        let db = match recovery.catalog {
            Some(catalog) => Database::from_catalog(catalog),
            None => Database::new(),
        };
        let shared = SharedDatabase::new(db); // no persistence yet: replay must not re-log
        let mut session = shared.session_with_options(options);
        for record in &recovery.replay {
            let stmt = parse_sql_statement(&record.sql)
                .map_err(|e| format!("WAL replay: cannot parse record {}: {e}", record.lsn))?;
            session
                .execute_statement(&stmt)
                .map_err(|e| format!("WAL replay failed at lsn {}: {e}", record.lsn))?;
        }
        drop(session);
        *persistence_guard(&shared.inner) = Some(persistence);
        Ok((
            shared,
            RecoveryReport {
                checkpoint_seq: recovery.checkpoint_seq,
                replayed: recovery.replay.len(),
                truncated_bytes: recovery.truncated_bytes,
                discarded_uncommitted: recovery.discarded_uncommitted,
            },
        ))
    }

    /// Opens a session over this database, with default options.
    pub fn session(&self) -> Session {
        self.session_with_options(SessionOptions::default())
    }

    /// Opens a session over this database, with explicit options.
    pub fn session_with_options(&self, options: SessionOptions) -> Session {
        Session::from_shared(self.clone(), options)
    }

    /// Pins a snapshot of the current committed state (readers never
    /// block; the snapshot never changes underneath its holder).
    pub fn snapshot(&self) -> CatalogSnapshot {
        self.inner.txns.snapshot()
    }

    /// The current commit sequence number.
    pub fn commit_seq(&self) -> u64 {
        self.inner.txns.commit_seq()
    }

    /// Whether a database directory is attached.
    pub fn is_durable(&self) -> bool {
        persistence_guard(&self.inner).is_some()
    }

    /// Opens a transaction over a freshly pinned snapshot.
    pub(crate) fn begin(&self) -> Transaction {
        self.inner.txns.begin()
    }

    /// Commits a transaction: validate first-committer-wins, append the
    /// commit unit to the WAL (one fsync), publish, auto-checkpoint.
    pub(crate) fn commit(&self, txn: Transaction) -> Result<CommitOutcome, String> {
        let inner = &*self.inner;
        let outcome =
            inner
                .txns
                .commit_with(txn, |stmts| match &mut *persistence_guard(inner) {
                    Some(p) => p.log_transaction(stmts),
                    None => Ok(()),
                })?;
        self.auto_checkpoint()?;
        Ok(outcome)
    }

    /// Checkpoints under [`snapshot_txn::TxnManager::with_committed_serialized`]:
    /// with the commit path locked out, every WAL unit the checkpoint's
    /// `covered_lsn` absorbs is also in the catalog it snapshots — a
    /// checkpoint racing a half-durable commit would otherwise cover the
    /// commit's LSNs (and reset the log) while writing a catalog that does
    /// not yet contain it, losing an acknowledged transaction on recovery.
    /// The persistence mutex is taken *inside* (commit lock → state lock →
    /// persistence — the same order as the commit path).
    fn checkpoint_serialized(&self, only_when_due: bool) -> Result<Option<u64>, String> {
        self.inner.txns.with_committed_serialized(|catalog, _| {
            let mut guard = persistence_guard(&self.inner);
            match &mut *guard {
                Some(p) if !only_when_due || p.should_checkpoint() => {
                    p.checkpoint(catalog).map(Some)
                }
                _ => Ok(None),
            }
        })
    }

    fn auto_checkpoint(&self) -> Result<(), String> {
        // Cheap pre-check without the commit lock; the authoritative check
        // repeats under it.
        let due = match &*persistence_guard(&self.inner) {
            Some(p) => p.should_checkpoint(),
            None => false,
        };
        if due {
            self.checkpoint_serialized(true)?;
        }
        Ok(())
    }

    /// Checkpoints the committed state now. Returns the checkpoint's
    /// sequence number, or `None` for an in-memory database.
    pub fn checkpoint(&self) -> Result<Option<u64>, String> {
        self.checkpoint_serialized(false)
    }

    /// Installs tables wholesale (the bulk-load path — no statement form):
    /// serialized against commits like a competing transaction that wins,
    /// then checkpointed immediately when durable (the WAL cannot replay a
    /// bulk load).
    pub fn register_tables<I>(&self, tables: I) -> Result<(), String>
    where
        I: IntoIterator<Item = (String, Table)>,
    {
        self.inner.txns.install_tables(tables);
        self.checkpoint_serialized(false).map(|_| ())
    }

    /// How committed-index maintenance repaired stale entries so far.
    pub fn index_maintenance(&self) -> MaintenanceStats {
        self.inner
            .txns
            .with_committed(|_, indexes| indexes.maintenance())
    }

    /// Repairs the committed indexes of the named tables (all when
    /// `None`).
    pub fn refresh_indexes(&self, tables: Option<&[String]>) {
        self.inner.txns.refresh_committed_indexes(tables);
    }
}
