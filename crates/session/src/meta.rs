//! Shell meta commands (`.tables`, `.kill`, `.dump`, …) as a library.
//!
//! The `snapshot_db` shell historically implemented these inline and
//! printed straight to stdout. The network server needs the exact same
//! verbs executed *server-side* against a connection's session (so
//! `snapshot_db --connect` behaves like the local shell), which means the
//! implementation must produce its output as a value instead of printing
//! it. [`run_meta`] is that implementation; the shell prints the returned
//! text, the server ships it back in a frame.
//!
//! Commands that take a `FILE` argument (`.dump FILE`, `.metrics FILE`,
//! `.profile FILE`) write the file from the process that runs them — the
//! server, for remote sessions. The remote shell rewrites those to the
//! bare (text-returning) form and writes the file client-side instead.

use crate::session::{Session, SessionOptions};
use crate::shared::SharedDatabase;
use std::fmt::Write as _;
use std::time::Instant;

/// What the surrounding loop should do after a meta command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaFlow {
    /// Keep reading input.
    Continue,
    /// `.quit` — end the session.
    Quit,
}

/// A successfully executed meta command: its printed output (newline
/// terminated unless empty) and the resulting control flow.
#[derive(Debug)]
pub struct MetaOutcome {
    /// What the shell would have printed to stdout.
    pub output: String,
    /// Whether the session goes on.
    pub flow: MetaFlow,
}

impl MetaOutcome {
    fn text(output: String) -> Self {
        MetaOutcome {
            output,
            flow: MetaFlow::Continue,
        }
    }
}

/// The `.help` text, shared by the local shell and remote sessions.
pub const HELP: &str = "statements end with ';' and may span lines. Transactions:
  BEGIN; ... COMMIT;  run statements against a private snapshot, publish
                      atomically (snapshot isolation, one WAL fsync);
                      ROLLBACK discards — the prompt shows * while open.
Meta commands:
  .help              this help
  .tables            list tables (rows, period, index state)
  .load employees N  load the synthetic Employees dataset (~N employees)
  .index [t]         refresh the index of table t (all tables when omitted)
  .parallel N SQL    run a query on N concurrent reader sessions and check
                     they all agree (the shared-database demo)
  .explain SQL       show the compiled physical plan of a query (use the
                     EXPLAIN ANALYZE SQL statement for actual row counts
                     and per-operator timings)
  .verify on|off     cross-check indexed queries against the naive route
  .metrics [FILE]    dump the global metrics registry (Prometheus text
                     format) to stdout or FILE
  .trace on|off      print the tracing-span tree after every statement
  .activity          list live sessions (id, state, phase, statement,
                     elapsed, rows) — the snapshot_stat_activity view
  .kill ID           cooperatively cancel session ID's running statement
                     (same as SELECT snapshot_cancel(ID); idle = no-op)
  .timeout [N|off]   cancel statements still executing after N ms; bare
                     .timeout shows the state (also: SET statement_timeout)
  .slow [N|off]      log statements taking >= N ms (with phase split and
                     operator actuals) to the slow-query log, queryable as
                     snapshot_stat_slow_queries; bare .slow shows the state
  .profile [on|off|FILE]
                     operator-level profiler: 'on' starts (resets) folded
                     stack collection, 'off' stops it, bare .profile prints
                     the folded stacks (flamegraph format), FILE writes them

Introspection: the snapshot_stat_* virtual tables (activity, progress,
metrics, statements, tables, indexes, transactions, slow_queries) answer
ordinary SELECTs, e.g.
  SELECT * FROM snapshot_stat_statements ORDER BY total_time_ms DESC;
  .checkpoint        write a checkpoint now (durable databases only)
  .dump [FILE]       write the catalog as a re-loadable SQL script
                     (to stdout when FILE is omitted)
  .quit              exit";

/// Execute one meta command (`meta` is the line without its leading dot).
///
/// `session` is the command's target session, `shared` the database handle
/// behind it (`.parallel` opens reader sessions over it), and `template`
/// the option set those readers inherit — `.timeout`/`.slow` update it
/// alongside the live session, exactly as the interactive shell always
/// did.
pub fn run_meta(
    meta: &str,
    session: &mut Session,
    shared: &SharedDatabase,
    template: &mut SessionOptions,
) -> Result<MetaOutcome, String> {
    let mut words = meta.split_whitespace();
    let cmd = words.next().unwrap_or("");
    let out = match cmd {
        "help" => format!("{HELP}\n"),
        "quit" | "exit" => {
            return Ok(MetaOutcome {
                output: String::new(),
                flow: MetaFlow::Quit,
            })
        }
        "tables" => show_tables(session),
        "load" => load_dataset(session, words.next(), words.next())?,
        "index" => refresh_index(session, words.next())?,
        "parallel" => {
            let rest = meta.strip_prefix("parallel").unwrap_or("").trim();
            parallel(session, shared, template, rest)?
        }
        "explain" => {
            let rest = meta.strip_prefix("explain").unwrap_or("").trim();
            explain(session, rest)?
        }
        "checkpoint" => checkpoint(session)?,
        "dump" => dump(session, words.next())?,
        "metrics" => metrics(words.next())?,
        "activity" => activity(session),
        "kill" => kill(words.next())?,
        "timeout" => timeout(session, template, words.next())?,
        "slow" => slow(session, template, words.next())?,
        "profile" => profile(words.next())?,
        "trace" => match words.next() {
            Some("on") => {
                snapshot_obs::set_tracing(true);
                "trace: on (span tree printed after every statement)\n".to_string()
            }
            Some("off") => {
                snapshot_obs::set_tracing(false);
                "trace: off\n".to_string()
            }
            _ => return Err("usage: .trace on|off".to_string()),
        },
        "verify" => match words.next() {
            Some("on") => {
                session.options_mut().verify_indexed = true;
                "verify: on (indexed queries are cross-checked)\n".to_string()
            }
            Some("off") => {
                session.options_mut().verify_indexed = false;
                "verify: off\n".to_string()
            }
            _ => return Err("usage: .verify on|off".to_string()),
        },
        other => return Err(format!("unknown meta command '.{other}' (try .help)")),
    };
    Ok(MetaOutcome::text(out))
}

fn show_tables(session: &Session) -> String {
    let view = session.read_view();
    let names: Vec<String> = view.catalog().table_names().map(String::from).collect();
    if names.is_empty() {
        return "(no tables)\n".to_string();
    }
    let mut out = String::new();
    for name in names {
        let t = view.catalog().get(&name).unwrap();
        let period = match t.period() {
            Some((b, e)) => format!(
                " PERIOD ({}, {})",
                t.schema().column(b).name,
                t.schema().column(e).name
            ),
            None => String::new(),
        };
        let index = match view.indexes().get_fresh(&name, t) {
            Some(_) => " [indexed]",
            None => "",
        };
        let _ = writeln!(
            out,
            "{name} {}{period} — {} rows{index}",
            t.schema(),
            t.len()
        );
    }
    out
}

/// `.parallel N SQL` — runs the query once per each of N concurrent
/// reader sessions over the shared database and checks that all of them
/// (and the target session) agree: the multi-session object, demonstrated
/// from the shell.
fn parallel(
    session: &mut Session,
    shared: &SharedDatabase,
    template: &SessionOptions,
    rest: &str,
) -> Result<String, String> {
    let (n_word, sql) = rest
        .split_once(char::is_whitespace)
        .ok_or("usage: .parallel N SELECT ...")?;
    let n: usize = n_word
        .parse()
        .map_err(|_| "usage: .parallel N SELECT ...".to_string())?;
    if n == 0 || n > 64 {
        return Err("reader count must be between 1 and 64".into());
    }
    let sql = sql.trim().trim_end_matches(';').to_string();
    // Refuse non-queries *before* executing anything: running a DML
    // statement N times in parallel is never what ".parallel" means.
    match sql::parse_sql_statement(&sql) {
        Ok(sql::SqlStatement::Query(_)) => {}
        Ok(_) => return Err("only query statements can run in parallel".into()),
        Err(e) => return Err(e),
    }
    let reference = session
        .execute(&sql)?
        .rows()
        .ok_or("only query statements can run in parallel")?
        .canonicalized();
    let started = Instant::now();
    let results: Vec<Result<storage::Table, String>> = std::thread::scope(|scope| {
        let sql = &sql;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let shared = shared.clone();
                let options = *template;
                scope.spawn(move || {
                    let mut session = shared.session_with_options(options);
                    session.execute(sql).and_then(|r| {
                        r.rows()
                            .map(|t| t.canonicalized())
                            .ok_or_else(|| "not a query".to_string())
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("reader panicked".into())))
            .collect()
    });
    let elapsed = started.elapsed();
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(t) if *t == reference => {}
            Ok(t) => {
                return Err(format!(
                    "reader {i} diverged: {} vs {} rows",
                    t.len(),
                    reference.len()
                ))
            }
            Err(e) => return Err(format!("reader {i} failed: {e}")),
        }
    }
    Ok(format!(
        "{n} concurrent reader(s) agree: {} row(s) each [{:.3} ms total]\n",
        reference.len(),
        elapsed.as_secs_f64() * 1e3
    ))
}

fn load_dataset(
    session: &mut Session,
    which: Option<&str>,
    size: Option<&str>,
) -> Result<String, String> {
    match which {
        Some("employees") => {
            let n: f64 = size
                .unwrap_or("600")
                .parse()
                .map_err(|_| "usage: .load employees N".to_string())?;
            let scale = n / 300_000.0;
            let started = Instant::now();
            let catalog = datagen::employees::generate(scale, 42);
            let total = catalog.total_rows();
            let names: Vec<String> = catalog.table_names().map(String::from).collect();
            // One batch registration: on a durable database this
            // checkpoints once for the whole load (bulk loads have no
            // statement form to log).
            let tables = names
                .iter()
                .map(|name| (name.clone(), catalog.get(name).unwrap().clone()));
            session.register_tables(tables)?;
            Ok(format!(
                "loaded employees (~{n} employees): {} tables, {total} rows [{:.1} ms]\n",
                names.len(),
                started.elapsed().as_secs_f64() * 1e3
            ))
        }
        _ => Err("usage: .load employees N".to_string()),
    }
}

fn refresh_index(session: &mut Session, table: Option<&str>) -> Result<String, String> {
    let before = session.index_maintenance();
    let started = Instant::now();
    let lowered = table.map(str::to_lowercase);
    session.refresh_indexes(lowered.as_deref())?;
    let after = session.index_maintenance();
    Ok(format!(
        "indexes: {} full build(s), {} incremental [{:.3} ms]\n",
        after.full_builds - before.full_builds,
        after.incremental_builds - before.incremental_builds,
        started.elapsed().as_secs_f64() * 1e3
    ))
}

fn checkpoint(session: &mut Session) -> Result<String, String> {
    let started = Instant::now();
    match session.checkpoint()? {
        Some(seq) => Ok(format!(
            "checkpoint #{seq} written [{:.3} ms]\n",
            started.elapsed().as_secs_f64() * 1e3
        )),
        None => Err("not a durable database (start with --db DIR)".to_string()),
    }
}

fn dump(session: &Session, file: Option<&str>) -> Result<String, String> {
    let sql = snapshot_wal::dump_sql(session.read_view().catalog());
    match file {
        Some(path) => {
            std::fs::write(path, &sql).map_err(|e| format!("cannot write '{path}': {e}"))?;
            Ok(format!("dumped {} byte(s) to {path}\n", sql.len()))
        }
        None => Ok(sql),
    }
}

fn explain(session: &mut Session, sql: &str) -> Result<String, String> {
    if sql.is_empty() {
        return Err("usage: .explain SELECT ...".to_string());
    }
    let plan = session.compile(sql.trim_end_matches(';'))?;
    // Compilation cost, split by phase (parse/bind/rewrite) — run the
    // query itself (or EXPLAIN ANALYZE) for execution timings.
    Ok(format!(
        "{}  ({})\n",
        plan.explain(),
        session.last_phase_timings().render()
    ))
}

/// `.activity` — list the live sessions of this process: who is running
/// what, since when, and how much work it has done (the shell rendering of
/// `snapshot_stat_activity`). The command's own session is marked.
fn activity(session: &Session) -> String {
    let own = session.session_id();
    let mut out = String::new();
    for s in snapshot_obs::sessions_snapshot() {
        let marker = if s.session_id == own {
            " (this shell)"
        } else {
            ""
        };
        let elapsed = s
            .elapsed_ms
            .map(|ms| format!("{ms:.1} ms"))
            .unwrap_or_else(|| "-".into());
        let statement = s.statement.as_deref().unwrap_or("-");
        let peer = s
            .remote_addr
            .as_deref()
            .map(|a| format!(" peer={a}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "session {} [{} {}]{}{} phase={} elapsed={} rows={} — {}",
            s.session_id,
            s.backend,
            s.state,
            marker,
            peer,
            s.phase.as_str(),
            elapsed,
            s.usage.rows_emitted,
            statement,
        );
    }
    out
}

/// `.kill <id>` — cooperatively cancel the running statement of another
/// session (same as `SELECT snapshot_cancel(<id>)`).
fn kill(id: Option<&str>) -> Result<String, String> {
    let id: u64 = id
        .and_then(|w| w.parse().ok())
        .ok_or("usage: .kill <session-id> (see .activity)")?;
    if Session::cancel_session(id) {
        Ok(format!("session {id}: cancellation signalled\n"))
    } else {
        Ok(format!(
            "session {id}: idle or unknown — nothing to cancel\n"
        ))
    }
}

/// `.timeout [N|off]` — set, clear, or show the statement timeout.
/// Updates both the live session and the option template `.parallel`
/// readers inherit.
fn timeout(
    session: &mut Session,
    template: &mut SessionOptions,
    arg: Option<&str>,
) -> Result<String, String> {
    match arg {
        None => Ok(match template.statement_timeout_ms {
            Some(ms) => format!("statement timeout: {ms} ms\n"),
            None => "statement timeout: off\n".to_string(),
        }),
        Some("off") => {
            session.options_mut().statement_timeout_ms = None;
            template.statement_timeout_ms = None;
            Ok("statement timeout: off\n".to_string())
        }
        Some(n) => match n.parse::<u64>() {
            Ok(ms) if ms > 0 => {
                session.options_mut().statement_timeout_ms = Some(ms);
                template.statement_timeout_ms = Some(ms);
                Ok(format!("statement timeout: {ms} ms\n"))
            }
            _ => Err("usage: .timeout [N|off] (N in milliseconds, > 0)".to_string()),
        },
    }
}

/// `.slow [N|off]` — set, clear, or show the slow-query threshold.
/// Updates both the live session and the option template `.parallel`
/// readers inherit.
fn slow(
    session: &mut Session,
    template: &mut SessionOptions,
    arg: Option<&str>,
) -> Result<String, String> {
    match arg {
        None => {
            let mut out = match template.slow_query_ms {
                Some(ms) => format!("slow-query log: on (threshold {ms} ms)\n"),
                None => "slow-query log: off\n".to_string(),
            };
            let logged = snapshot_obs::slow_queries().len();
            let _ = writeln!(
                out,
                "{logged} entr(ies) logged — SELECT * FROM snapshot_stat_slow_queries;"
            );
            Ok(out)
        }
        Some("off") => {
            session.options_mut().slow_query_ms = None;
            template.slow_query_ms = None;
            Ok("slow-query log: off\n".to_string())
        }
        Some(n) => match n.parse::<u64>() {
            Ok(ms) => {
                session.options_mut().slow_query_ms = Some(ms);
                template.slow_query_ms = Some(ms);
                Ok(format!("slow-query log: on (threshold {ms} ms)\n"))
            }
            Err(_) => Err("usage: .slow [N|off] (N in milliseconds)".to_string()),
        },
    }
}

/// `.profile [on|off|FILE]` — control the operator-level profiler and
/// print or save its folded-stack output.
fn profile(arg: Option<&str>) -> Result<String, String> {
    match arg {
        Some("on") => {
            snapshot_obs::reset_profile();
            snapshot_obs::set_profiling(true);
            Ok(
                "profile: on (folded operator stacks; .profile prints, .profile FILE saves)\n"
                    .to_string(),
            )
        }
        Some("off") => {
            snapshot_obs::set_profiling(false);
            Ok("profile: off\n".to_string())
        }
        arg => {
            let text = snapshot_obs::render_folded();
            if text.is_empty() {
                return Ok(
                    "(no profile samples — enable with .profile on, then run queries)\n"
                        .to_string(),
                );
            }
            match arg {
                Some(path) => {
                    std::fs::write(path, &text)
                        .map_err(|e| format!("cannot write '{path}': {e}"))?;
                    Ok(format!("wrote {} byte(s) to {path}\n", text.len()))
                }
                None => Ok(text),
            }
        }
    }
}

/// `.metrics [FILE]` — dump the global registry in Prometheus text
/// exposition format, to stdout or a file.
fn metrics(file: Option<&str>) -> Result<String, String> {
    snapshot_obs::refresh_process_metrics();
    let text = snapshot_obs::registry().render_text();
    match file {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write '{path}': {e}"))?;
            Ok(format!("wrote {} byte(s) to {path}\n", text.len()))
        }
        None => Ok(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedDatabase;

    fn setup() -> (SharedDatabase, Session, SessionOptions) {
        let shared = SharedDatabase::in_memory();
        let session = shared.session();
        (shared, session, SessionOptions::default())
    }

    fn run(
        meta: &str,
        session: &mut Session,
        shared: &SharedDatabase,
        template: &mut SessionOptions,
    ) -> String {
        run_meta(meta, session, shared, template).unwrap().output
    }

    #[test]
    fn tables_timeout_and_kill_render_like_the_shell() {
        let (shared, mut session, mut template) = setup();
        assert_eq!(
            run("tables", &mut session, &shared, &mut template),
            "(no tables)\n"
        );
        session
            .execute("CREATE TABLE works (name TEXT, ts INT, te INT) PERIOD (ts, te)")
            .unwrap();
        let out = run("tables", &mut session, &shared, &mut template);
        assert!(out.contains("works"), "{out}");
        assert!(out.contains("PERIOD (ts, te)"), "{out}");

        let out = run("timeout 250", &mut session, &shared, &mut template);
        assert_eq!(out, "statement timeout: 250 ms\n");
        assert_eq!(session.options().statement_timeout_ms, Some(250));
        assert_eq!(template.statement_timeout_ms, Some(250));
        let out = run("timeout off", &mut session, &shared, &mut template);
        assert_eq!(out, "statement timeout: off\n");
        assert_eq!(template.statement_timeout_ms, None);

        let out = run("kill 999999999", &mut session, &shared, &mut template);
        assert!(out.contains("idle or unknown"), "{out}");
    }

    #[test]
    fn quit_signals_and_unknown_commands_error() {
        let (shared, mut session, mut template) = setup();
        let outcome = run_meta("quit", &mut session, &shared, &mut template).unwrap();
        assert_eq!(outcome.flow, MetaFlow::Quit);
        assert!(run_meta("nonsense", &mut session, &shared, &mut template).is_err());
        assert!(run_meta("verify sideways", &mut session, &shared, &mut template).is_err());
    }

    #[test]
    fn activity_marks_the_calling_session_and_dump_roundtrips() {
        let (shared, mut session, mut template) = setup();
        session
            .execute("CREATE TABLE t (x INT, ts INT, te INT) PERIOD (ts, te)")
            .unwrap();
        session.execute("INSERT INTO t VALUES (1, 0, 5)").unwrap();
        let out = run("activity", &mut session, &shared, &mut template);
        assert!(out.contains("(this shell)"), "{out}");
        let dumped = run("dump", &mut session, &shared, &mut template);
        assert!(dumped.contains("CREATE TABLE t"), "{dumped}");
        assert!(dumped.contains("INSERT INTO t"), "{dumped}");
    }
}
