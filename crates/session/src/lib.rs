//! Statement-level database subsystem: sessions, temporal DDL/DML, and the
//! shell meta-command library.
//!
//! The paper's middleware (Section 9) exposes snapshot semantics as a SQL
//! language feature over a *live* database. This crate supplies the
//! "live" part on top of every other layer of the reproduction:
//!
//! * [`Database`] — owns the [`storage::Catalog`] and the
//!   [`index::IndexCatalog`], with validated mutation entry points; every
//!   mutation bumps [`storage::Table::version`], so indexes invalidate
//!   automatically and are repaired lazily (incrementally after pure
//!   appends) right before the next indexed query,
//! * [`Session`] — the `execute(sql) -> StatementResult` pipeline: DDL
//!   (`CREATE TABLE ... PERIOD (b, e)`, `DROP TABLE`), non-sequenced DML
//!   (`INSERT ... VALUES`/`... SELECT`, `DELETE`, `UPDATE`), and queries —
//!   plain, `SEQ VT (...)`, `SEQ VT AS OF t (...)` (timeslice pushdown,
//!   Theorem 6.3), and `SEQ VT BETWEEN t1 AND t2 (...)` (range-restricted
//!   compilation over interval-tree overlap probes),
//! * [`meta`] — the shell meta commands (`.tables`, `.kill`, `.dump`, …)
//!   as a library, shared by the `snapshot_db` shell and the network
//!   server (both live in the `snapshot_server` crate).
//!
//! Sessions are durable when opened on a database directory
//! ([`Session::open_durable`]): every executed DDL/DML statement is
//! appended to a write-ahead log and the catalog is checkpointed
//! periodically (see the `snapshot_wal` crate), so the database survives
//! restarts — and crashes: recovery loads the newest valid checkpoint,
//! replays the WAL tail through the same pipeline, and truncates torn
//! tails instead of failing.

pub mod database;
pub mod meta;
pub mod session;
pub mod shared;

pub use database::Database;
pub use session::{
    PhaseTimings, RecoveryReport, RetryStats, Session, SessionOptions, StatementResult,
};
pub use shared::SharedDatabase;
// Concurrency surface, re-exported so tests and the shell need not depend
// on `snapshot_txn` directly.
pub use snapshot_txn::CatalogSnapshot;
// Durability configuration, re-exported so shell/bench/tests need not
// depend on `snapshot_wal` directly.
pub use snapshot_wal::{PersistenceOptions, SyncPolicy};
