//! `snapshot_db` — a line-oriented shell over [`snapshot_session`].
//!
//! Statements in, pretty tables and timings out:
//!
//! ```text
//! $ snapshot_db
//! snapshot_db> CREATE TABLE works (name TEXT, skill TEXT, ts INT, te INT) PERIOD (ts, te);
//! CREATE TABLE works [0.1 ms]
//! snapshot_db> INSERT INTO works VALUES ('Ann', 'SP', 3, 10);
//! INSERT 1 INTO works [0.1 ms]
//! snapshot_db> SEQ VT (SELECT count(*) AS cnt FROM works);
//! ...
//! ```
//!
//! Usage: `snapshot_db [--db DIR] [--script FILE] [--sync POLICY]
//! [--checkpoint-every N] [--no-index] [--verify] [--quiet]`.
//! Without `--script`, reads statements from stdin (a statement runs once a
//! line ends with `;`). Lines starting with `.` are meta commands — see
//! `.help`. With `--db DIR`, the database is durable: statements are
//! write-ahead-logged into `DIR` and survive restarts.

use snapshot_session::{
    PersistenceOptions, Session, SessionOptions, SharedDatabase, StatementResult, SyncPolicy,
};
use std::io::{BufRead, Write};
use std::path::Path;
use std::time::Instant;

fn main() {
    let mut script: Option<String> = None;
    let mut db_dir: Option<String> = None;
    let mut options = SessionOptions::default();
    let mut persistence = PersistenceOptions::default();
    let mut durability_flag: Option<&str> = None;
    let mut quiet = false;
    let mut continue_on_error = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--script" => match args.next() {
                Some(path) => script = Some(path),
                None => die_usage("--script requires a file path"),
            },
            "--db" => match args.next() {
                Some(dir) => db_dir = Some(dir),
                None => die_usage("--db requires a directory path"),
            },
            "--sync" => {
                durability_flag = Some("--sync");
                match args.next().as_deref() {
                    Some("always") => persistence.sync = SyncPolicy::Always,
                    Some("checkpoint") => persistence.sync = SyncPolicy::OnCheckpoint,
                    _ => die_usage("--sync requires a policy: 'always' or 'checkpoint'"),
                }
            }
            "--checkpoint-every" => {
                durability_flag = Some("--checkpoint-every");
                match args.next().and_then(|n| n.parse().ok()) {
                    Some(n) => persistence.checkpoint_every = n,
                    None => die_usage("--checkpoint-every requires a statement count"),
                }
            }
            "--no-index" => options.use_indexes = false,
            "--verify" => options.verify_indexed = true,
            "--parallelism" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                // 0 = auto-detect: one worker per hardware thread.
                Some(n) => options.parallelism = engine::resolve_parallelism(n),
                None => die_usage("--parallelism requires a worker count (0 = auto)"),
            },
            "--slow-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => options.slow_query_ms = Some(n),
                None => die_usage("--slow-ms requires a threshold in milliseconds"),
            },
            "--timeout-ms" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => options.statement_timeout_ms = (n > 0).then_some(n),
                None => die_usage("--timeout-ms requires a limit in milliseconds"),
            },
            "--continue-on-error" => continue_on_error = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die_usage(&format!("unknown argument '{other}'")),
        }
    }
    if let (Some(flag), None) = (durability_flag, &db_dir) {
        die_usage(&format!("{flag} has no effect without --db DIR"));
    }

    // The shell always runs over a SharedDatabase: the single-user REPL is
    // simply the one-session case of the multi-session object, and
    // `.parallel` can fan reader sessions out over the same handle.
    let shared = match &db_dir {
        Some(dir) => match SharedDatabase::open_durable(Path::new(dir), options, persistence) {
            Ok((shared, report)) => {
                if !quiet {
                    let view = shared.snapshot();
                    let tables = view.catalog().table_names().count();
                    let rows = view.catalog().total_rows();
                    let source = match report.checkpoint_seq {
                        Some(seq) => format!("checkpoint #{seq}"),
                        None => "no checkpoint".to_string(),
                    };
                    let torn = if report.truncated_bytes > 0 {
                        format!(", {} torn byte(s) truncated", report.truncated_bytes)
                    } else {
                        String::new()
                    };
                    let discarded = if report.discarded_uncommitted > 0 {
                        format!(
                            ", {} uncommitted record(s) discarded",
                            report.discarded_uncommitted
                        )
                    } else {
                        String::new()
                    };
                    println!(
                        "opened {dir}: {source} + {} replayed statement(s){torn}{discarded} \
                         — {tables} table(s), {rows} row(s)",
                        report.replayed
                    );
                }
                shared
            }
            Err(e) => die(&format!("cannot open database '{dir}': {e}")),
        },
        None => SharedDatabase::in_memory(),
    };
    let mut shell = Shell {
        session: shared.session_with_options(options),
        shared,
        options,
        quiet,
        interactive: script.is_none(),
        continue_on_error,
        pending: String::new(),
        trace: false,
    };

    match script {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => die(&format!("cannot read script '{path}': {e}")),
            };
            for line in text.lines() {
                match shell.feed_line(line) {
                    Flow::Continue => {}
                    Flow::Quit => return, // .quit ends the script successfully
                    Flow::Fail => std::process::exit(1),
                }
            }
            if shell.flush_pending() == Flow::Fail {
                std::process::exit(1);
            }
        }
        None => {
            println!("snapshot_db — temporal SQL shell (.help for help, .quit to exit)");
            let stdin = std::io::stdin();
            shell.prompt();
            for line in stdin.lock().lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => die(&format!("stdin error: {e}")),
                };
                if shell.feed_line(&line) == Flow::Quit {
                    break;
                }
                shell.prompt();
            }
        }
    }
}

/// What a processed line means for the surrounding loop. Interactive
/// sessions report errors and continue (never `Fail`); script mode turns
/// every error into `Fail` (exit status 1) while `.quit` stays a success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Continue,
    Quit,
    Fail,
}

const USAGE: &str = "usage: snapshot_db [--db DIR] [--script FILE] [--sync POLICY]
                   [--checkpoint-every N] [--parallelism N] [--no-index]
                   [--verify] [--slow-ms N] [--timeout-ms N]
                   [--continue-on-error] [--quiet]
  --db DIR              open a durable database in DIR (created if missing):
                        statements are write-ahead-logged and the catalog is
                        checkpointed, so the database survives restarts
  --script FILE         execute a .sql script (meta commands allowed) and exit
  --sync POLICY         WAL sync policy: 'always' (fsync per statement, the
                        default) or 'checkpoint' (fsync only at checkpoints)
  --checkpoint-every N  auto-checkpoint after N logged statements
                        (default 64; 0 disables auto-checkpointing)
  --parallelism N       worker threads for parallel operators (temporal joins
                        run slab-parallel when N > 1; 0 = one per hardware
                        thread; default 1 = sequential). `.parallel` reader
                        sessions inherit the setting
  --no-index            execute queries on the naive route only
  --verify              re-run every indexed query naively and fail on divergence
  --slow-ms N           log statements taking >= N ms to the slow-query log
                        (queryable as snapshot_stat_slow_queries)
  --timeout-ms N        cancel statements still executing after N ms
                        (cooperative; also per session via SET
                        statement_timeout = N, or .timeout)
  --continue-on-error   in script mode, report statement errors and carry
                        on instead of exiting with status 1
  --quiet               print summaries and timings but not result tables
  --help, -h            print this usage";

const HELP: &str = "statements end with ';' and may span lines. Transactions:
  BEGIN; ... COMMIT;  run statements against a private snapshot, publish
                      atomically (snapshot isolation, one WAL fsync);
                      ROLLBACK discards — the prompt shows * while open.
Meta commands:
  .help              this help
  .tables            list tables (rows, period, index state)
  .load employees N  load the synthetic Employees dataset (~N employees)
  .index [t]         refresh the index of table t (all tables when omitted)
  .parallel N SQL    run a query on N concurrent reader sessions and check
                     they all agree (the shared-database demo)
  .explain SQL       show the compiled physical plan of a query (use the
                     EXPLAIN ANALYZE SQL statement for actual row counts
                     and per-operator timings)
  .verify on|off     cross-check indexed queries against the naive route
  .metrics [FILE]    dump the global metrics registry (Prometheus text
                     format) to stdout or FILE
  .trace on|off      print the tracing-span tree after every statement
  .activity          list live sessions (id, state, phase, statement,
                     elapsed, rows) — the snapshot_stat_activity view
  .kill ID           cooperatively cancel session ID's running statement
                     (same as SELECT snapshot_cancel(ID); idle = no-op)
  .timeout [N|off]   cancel statements still executing after N ms; bare
                     .timeout shows the state (also: SET statement_timeout)
  .slow [N|off]      log statements taking >= N ms (with phase split and
                     operator actuals) to the slow-query log, queryable as
                     snapshot_stat_slow_queries; bare .slow shows the state
  .profile [on|off|FILE]
                     operator-level profiler: 'on' starts (resets) folded
                     stack collection, 'off' stops it, bare .profile prints
                     the folded stacks (flamegraph format), FILE writes them

Introspection: the snapshot_stat_* virtual tables (activity, progress,
metrics, statements, tables, indexes, transactions, slow_queries) answer
ordinary SELECTs, e.g.
  SELECT * FROM snapshot_stat_statements ORDER BY total_time_ms DESC;
  .checkpoint        write a checkpoint now (durable databases only)
  .dump [FILE]       write the catalog as a re-loadable SQL script
                     (to stdout when FILE is omitted)
  .quit              exit";

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1)
}

/// An argument error: the message plus the full usage string.
fn die_usage(msg: &str) -> ! {
    die(&format!("{msg}\n{USAGE}"))
}

struct Shell {
    session: Session,
    /// The shared handle behind `session` — `.parallel` opens more
    /// sessions over it.
    shared: SharedDatabase,
    options: SessionOptions,
    quiet: bool,
    interactive: bool,
    /// `--continue-on-error` — script mode reports statement errors and
    /// carries on instead of exiting (the CI smoke scripts drive expected
    /// cancellations through this).
    continue_on_error: bool,
    /// Multi-line statement accumulator (REPL and scripts alike).
    pending: String,
    /// `.trace on` — print the span tree after every statement.
    trace: bool,
}

impl Shell {
    fn prompt(&self) {
        // A `*` marks an open transaction (statements apply to its
        // private snapshot until COMMIT/ROLLBACK).
        if self.session.in_transaction() {
            print!("snapshot_db*> ");
        } else {
            print!("snapshot_db> ");
        }
        let _ = std::io::stdout().flush();
    }

    /// Handles one input line.
    fn feed_line(&mut self, line: &str) -> Flow {
        let trimmed = line.trim();
        if self.pending.is_empty() {
            if trimmed.is_empty() || trimmed.starts_with("--") {
                return Flow::Continue;
            }
            if let Some(meta) = trimmed.strip_prefix('.') {
                return self.run_meta(meta);
            }
        }
        self.pending.push_str(line);
        self.pending.push('\n');
        if trimmed.ends_with(';') {
            return self.flush_pending();
        }
        Flow::Continue
    }

    /// Reports an error; interactive sessions (and scripts run with
    /// `--continue-on-error`) carry on, other scripts fail.
    fn fail(&self, e: &str) -> Flow {
        eprintln!("error: {e}");
        if self.interactive || self.continue_on_error {
            Flow::Continue
        } else {
            Flow::Fail
        }
    }

    /// Executes the accumulated statement buffer, if any.
    fn flush_pending(&mut self) -> Flow {
        if self.pending.trim().is_empty() {
            self.pending.clear();
            return Flow::Continue;
        }
        let sql = std::mem::take(&mut self.pending);
        if !self.interactive {
            for line in sql.trim_end().lines() {
                println!("> {line}");
            }
        }
        let started = Instant::now();
        let retries_before = self.session.conflict_retries().total;
        if self.trace {
            snapshot_obs::reset_thread_trace();
        }
        match self.session.execute_script(&sql) {
            Ok(results) => {
                let elapsed = started.elapsed();
                for r in &results {
                    if let (false, StatementResult::Rows(t)) = (self.quiet, r) {
                        print!("{}", t.to_pretty_string());
                    }
                    println!("{r} [{:.3} ms]", elapsed.as_secs_f64() * 1e3);
                }
                // Per-phase breakdown of the buffer's last statement (the
                // common case is one statement per buffer) — the split of
                // the total above into parse/bind/rewrite/index/execute/
                // commit, from the session's span-fed timings.
                if !self.quiet {
                    println!("  ({})", self.session.last_phase_timings().render());
                }
                let retried = self.session.conflict_retries().total - retries_before;
                if retried > 0 {
                    println!("(retried {retried} time(s) after write-write conflicts)");
                }
                if self.trace {
                    print!("{}", snapshot_obs::take_thread_trace().render());
                }
                Flow::Continue
            }
            Err(e) => self.fail(&e),
        }
    }

    fn run_meta(&mut self, meta: &str) -> Flow {
        let mut words = meta.split_whitespace();
        let cmd = words.next().unwrap_or("");
        let ok = match cmd {
            "help" => {
                println!("{HELP}");
                Ok(())
            }
            "quit" | "exit" => return Flow::Quit,
            "tables" => {
                self.show_tables();
                Ok(())
            }
            "load" => self.load_dataset(words.next(), words.next()),
            "index" => self.refresh_index(words.next()),
            "parallel" => {
                let rest = meta.strip_prefix("parallel").unwrap_or("").trim();
                self.parallel(rest)
            }
            "explain" => {
                let rest = meta.strip_prefix("explain").unwrap_or("").trim();
                self.explain(rest)
            }
            "checkpoint" => self.checkpoint(),
            "dump" => self.dump(words.next()),
            "metrics" => self.metrics(words.next()),
            "activity" => {
                self.activity();
                Ok(())
            }
            "kill" => self.kill(words.next()),
            "timeout" => self.timeout(words.next()),
            "slow" => self.slow(words.next()),
            "profile" => self.profile(words.next()),
            "trace" => match words.next() {
                Some("on") => {
                    self.trace = true;
                    snapshot_obs::set_tracing(true);
                    println!("trace: on (span tree printed after every statement)");
                    Ok(())
                }
                Some("off") => {
                    self.trace = false;
                    snapshot_obs::set_tracing(false);
                    println!("trace: off");
                    Ok(())
                }
                _ => Err("usage: .trace on|off".to_string()),
            },
            "verify" => match words.next() {
                Some("on") => {
                    self.session.options_mut().verify_indexed = true;
                    println!("verify: on (indexed queries are cross-checked)");
                    Ok(())
                }
                Some("off") => {
                    self.session.options_mut().verify_indexed = false;
                    println!("verify: off");
                    Ok(())
                }
                _ => Err("usage: .verify on|off".to_string()),
            },
            other => Err(format!("unknown meta command '.{other}' (try .help)")),
        };
        match ok {
            Ok(()) => Flow::Continue,
            Err(e) => self.fail(&e),
        }
    }

    fn show_tables(&self) {
        let view = self.session.read_view();
        let names: Vec<String> = view.catalog().table_names().map(String::from).collect();
        if names.is_empty() {
            println!("(no tables)");
            return;
        }
        for name in names {
            let t = view.catalog().get(&name).unwrap();
            let period = match t.period() {
                Some((b, e)) => format!(
                    " PERIOD ({}, {})",
                    t.schema().column(b).name,
                    t.schema().column(e).name
                ),
                None => String::new(),
            };
            let index = match view.indexes().get_fresh(&name, t) {
                Some(_) => " [indexed]",
                None => "",
            };
            println!("{name} {}{period} — {} rows{index}", t.schema(), t.len());
        }
    }

    /// `.parallel N SQL` — runs the query once per each of N concurrent
    /// reader sessions over the shared database and checks that all of
    /// them (and the shell's own session) agree: the multi-session object,
    /// demonstrated from the shell.
    fn parallel(&mut self, rest: &str) -> Result<(), String> {
        let (n_word, sql) = rest
            .split_once(char::is_whitespace)
            .ok_or("usage: .parallel N SELECT ...")?;
        let n: usize = n_word
            .parse()
            .map_err(|_| "usage: .parallel N SELECT ...".to_string())?;
        if n == 0 || n > 64 {
            return Err("reader count must be between 1 and 64".into());
        }
        let sql = sql.trim().trim_end_matches(';').to_string();
        // Refuse non-queries *before* executing anything: running a DML
        // statement N times in parallel is never what ".parallel" means.
        match sql::parse_sql_statement(&sql) {
            Ok(sql::SqlStatement::Query(_)) => {}
            Ok(_) => return Err("only query statements can run in parallel".into()),
            Err(e) => return Err(e),
        }
        let reference = self
            .session
            .execute(&sql)?
            .rows()
            .ok_or("only query statements can run in parallel")?
            .canonicalized();
        let started = Instant::now();
        let results: Vec<Result<storage::Table, String>> = std::thread::scope(|scope| {
            let sql = &sql;
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let shared = self.shared.clone();
                    let options = self.options;
                    scope.spawn(move || {
                        let mut session = shared.session_with_options(options);
                        session.execute(sql).and_then(|r| {
                            r.rows()
                                .map(|t| t.canonicalized())
                                .ok_or_else(|| "not a query".to_string())
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("reader panicked".into())))
                .collect()
        });
        let elapsed = started.elapsed();
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(t) if *t == reference => {}
                Ok(t) => {
                    return Err(format!(
                        "reader {i} diverged: {} vs {} rows",
                        t.len(),
                        reference.len()
                    ))
                }
                Err(e) => return Err(format!("reader {i} failed: {e}")),
            }
        }
        println!(
            "{n} concurrent reader(s) agree: {} row(s) each [{:.3} ms total]",
            reference.len(),
            elapsed.as_secs_f64() * 1e3
        );
        Ok(())
    }

    fn load_dataset(&mut self, which: Option<&str>, size: Option<&str>) -> Result<(), String> {
        match which {
            Some("employees") => {
                let n: f64 = size
                    .unwrap_or("600")
                    .parse()
                    .map_err(|_| "usage: .load employees N".to_string())?;
                let scale = n / 300_000.0;
                let started = Instant::now();
                let catalog = datagen::employees::generate(scale, 42);
                let total = catalog.total_rows();
                let names: Vec<String> = catalog.table_names().map(String::from).collect();
                // One batch registration: on a durable database this
                // checkpoints once for the whole load (bulk loads have no
                // statement form to log).
                let tables = names
                    .iter()
                    .map(|name| (name.clone(), catalog.get(name).unwrap().clone()));
                self.session.register_tables(tables)?;
                println!(
                    "loaded employees (~{n} employees): {} tables, {total} rows [{:.1} ms]",
                    names.len(),
                    started.elapsed().as_secs_f64() * 1e3
                );
                Ok(())
            }
            _ => Err("usage: .load employees N".to_string()),
        }
    }

    fn refresh_index(&mut self, table: Option<&str>) -> Result<(), String> {
        let before = self.session.index_maintenance();
        let started = Instant::now();
        let lowered = table.map(str::to_lowercase);
        self.session.refresh_indexes(lowered.as_deref())?;
        let after = self.session.index_maintenance();
        println!(
            "indexes: {} full build(s), {} incremental [{:.3} ms]",
            after.full_builds - before.full_builds,
            after.incremental_builds - before.incremental_builds,
            started.elapsed().as_secs_f64() * 1e3
        );
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<(), String> {
        let started = Instant::now();
        match self.session.checkpoint()? {
            Some(seq) => {
                println!(
                    "checkpoint #{seq} written [{:.3} ms]",
                    started.elapsed().as_secs_f64() * 1e3
                );
                Ok(())
            }
            None => Err("not a durable database (start with --db DIR)".to_string()),
        }
    }

    fn dump(&self, file: Option<&str>) -> Result<(), String> {
        let sql = snapshot_wal::dump_sql(self.session.read_view().catalog());
        match file {
            Some(path) => {
                std::fs::write(path, &sql).map_err(|e| format!("cannot write '{path}': {e}"))?;
                println!("dumped {} byte(s) to {path}", sql.len());
            }
            None => print!("{sql}"),
        }
        Ok(())
    }

    fn explain(&mut self, sql: &str) -> Result<(), String> {
        if sql.is_empty() {
            return Err("usage: .explain SELECT ...".to_string());
        }
        let plan = self.session.compile(sql.trim_end_matches(';'))?;
        print!("{}", plan.explain());
        // Compilation cost, split by phase (parse/bind/rewrite) — run the
        // query itself (or EXPLAIN ANALYZE) for execution timings.
        println!("  ({})", self.session.last_phase_timings().render());
        Ok(())
    }

    /// `.activity` — list the live sessions of this process: who is
    /// running what, since when, and how much work it has done (the shell
    /// rendering of `snapshot_stat_activity`).
    fn activity(&self) {
        let own = self.session.session_id();
        for s in snapshot_obs::sessions_snapshot() {
            let marker = if s.session_id == own {
                " (this shell)"
            } else {
                ""
            };
            let elapsed = s
                .elapsed_ms
                .map(|ms| format!("{ms:.1} ms"))
                .unwrap_or_else(|| "-".into());
            let statement = s.statement.as_deref().unwrap_or("-");
            println!(
                "session {} [{} {}]{} phase={} elapsed={} rows={} — {}",
                s.session_id,
                s.backend,
                s.state,
                marker,
                s.phase.as_str(),
                elapsed,
                s.usage.rows_emitted,
                statement,
            );
        }
    }

    /// `.kill <id>` — cooperatively cancel the running statement of
    /// another session (same as `SELECT snapshot_cancel(<id>)`).
    fn kill(&self, id: Option<&str>) -> Result<(), String> {
        let id: u64 = id
            .and_then(|w| w.parse().ok())
            .ok_or("usage: .kill <session-id> (see .activity)")?;
        if Session::cancel_session(id) {
            println!("session {id}: cancellation signalled");
        } else {
            println!("session {id}: idle or unknown — nothing to cancel");
        }
        Ok(())
    }

    /// `.timeout [N|off]` — set, clear, or show the statement timeout.
    /// Updates both the live session and the option template `.parallel`
    /// readers inherit.
    fn timeout(&mut self, arg: Option<&str>) -> Result<(), String> {
        match arg {
            None => {
                match self.options.statement_timeout_ms {
                    Some(ms) => println!("statement timeout: {ms} ms"),
                    None => println!("statement timeout: off"),
                }
                Ok(())
            }
            Some("off") => {
                self.session.options_mut().statement_timeout_ms = None;
                self.options.statement_timeout_ms = None;
                println!("statement timeout: off");
                Ok(())
            }
            Some(n) => match n.parse::<u64>() {
                Ok(ms) if ms > 0 => {
                    self.session.options_mut().statement_timeout_ms = Some(ms);
                    self.options.statement_timeout_ms = Some(ms);
                    println!("statement timeout: {ms} ms");
                    Ok(())
                }
                _ => Err("usage: .timeout [N|off] (N in milliseconds, > 0)".to_string()),
            },
        }
    }

    /// `.slow [N|off]` — set, clear, or show the slow-query threshold.
    /// Updates both the live session and the option template `.parallel`
    /// readers inherit.
    fn slow(&mut self, arg: Option<&str>) -> Result<(), String> {
        match arg {
            None => {
                match self.options.slow_query_ms {
                    Some(ms) => println!("slow-query log: on (threshold {ms} ms)"),
                    None => println!("slow-query log: off"),
                }
                let logged = snapshot_obs::slow_queries().len();
                println!("{logged} entr(ies) logged — SELECT * FROM snapshot_stat_slow_queries;");
                Ok(())
            }
            Some("off") => {
                self.session.options_mut().slow_query_ms = None;
                self.options.slow_query_ms = None;
                println!("slow-query log: off");
                Ok(())
            }
            Some(n) => match n.parse::<u64>() {
                Ok(ms) => {
                    self.session.options_mut().slow_query_ms = Some(ms);
                    self.options.slow_query_ms = Some(ms);
                    println!("slow-query log: on (threshold {ms} ms)");
                    Ok(())
                }
                Err(_) => Err("usage: .slow [N|off] (N in milliseconds)".to_string()),
            },
        }
    }

    /// `.profile [on|off|FILE]` — control the operator-level profiler and
    /// print or save its folded-stack output.
    fn profile(&self, arg: Option<&str>) -> Result<(), String> {
        match arg {
            Some("on") => {
                snapshot_obs::reset_profile();
                snapshot_obs::set_profiling(true);
                println!(
                    "profile: on (folded operator stacks; .profile prints, .profile FILE saves)"
                );
                Ok(())
            }
            Some("off") => {
                snapshot_obs::set_profiling(false);
                println!("profile: off");
                Ok(())
            }
            arg => {
                let text = snapshot_obs::render_folded();
                if text.is_empty() {
                    println!("(no profile samples — enable with .profile on, then run queries)");
                    return Ok(());
                }
                match arg {
                    Some(path) => {
                        std::fs::write(path, &text)
                            .map_err(|e| format!("cannot write '{path}': {e}"))?;
                        println!("wrote {} byte(s) to {path}", text.len());
                    }
                    None => print!("{text}"),
                }
                Ok(())
            }
        }
    }

    /// `.metrics [FILE]` — dump the global registry in Prometheus text
    /// exposition format, to stdout or a file.
    fn metrics(&self, file: Option<&str>) -> Result<(), String> {
        snapshot_obs::refresh_process_metrics();
        let text = snapshot_obs::registry().render_text();
        match file {
            Some(path) => {
                std::fs::write(path, &text).map_err(|e| format!("cannot write '{path}': {e}"))?;
                println!("wrote {} byte(s) to {path}", text.len());
            }
            None => print!("{text}"),
        }
        Ok(())
    }
}
