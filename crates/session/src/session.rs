//! Sessions: the statement-level execution pipeline.
//!
//! [`Session::execute`] runs one SQL statement end-to-end against a
//! [`Database`]: parse → (for queries) bind and `REWR`-compile → refresh
//! the indexes of the scanned tables → execute, or (for DDL/DML) validate
//! and apply the mutation through the storage layer's version-bumping API.
//! This is the paper's middleware picture (Section 9) made operational: the
//! `SEQ VT` language feature over a *live* database instead of a preloaded
//! one.

use crate::database::{conform_row, Database};
use algebra::Plan;
use engine::{eval_expr, eval_predicate, Engine};
use rewrite::{infer_domain, RewriteOptions, SnapshotCompiler};
use snapshot_wal::{Persistence, PersistenceOptions};
use sql::{
    bind_scalar_expr, bind_statement, parse_sql_statement, split_script, AstExpr, ColumnDef,
    InsertSource, SqlStatement, Statement,
};
use std::fmt;
use std::path::Path;
use storage::{Column, Row, Schema, SqlType, Table};

/// What executing one statement produced.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementResult {
    /// A query result.
    Rows(Table),
    /// `CREATE TABLE` succeeded.
    Created {
        /// The new table's name.
        table: String,
    },
    /// `DROP TABLE` succeeded.
    Dropped {
        /// The dropped table's name.
        table: String,
        /// Whether the table existed (`false` only under `IF EXISTS`).
        existed: bool,
    },
    /// `INSERT` succeeded.
    Inserted {
        /// Target table.
        table: String,
        /// Rows inserted.
        rows: usize,
    },
    /// `DELETE` succeeded.
    Deleted {
        /// Target table.
        table: String,
        /// Rows removed.
        rows: usize,
    },
    /// `UPDATE` succeeded.
    Updated {
        /// Target table.
        table: String,
        /// Rows changed.
        rows: usize,
    },
}

impl StatementResult {
    /// The result table, for query statements.
    pub fn rows(&self) -> Option<&Table> {
        match self {
            StatementResult::Rows(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for StatementResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatementResult::Rows(t) => write!(f, "SELECT {}", t.len()),
            StatementResult::Created { table } => write!(f, "CREATE TABLE {table}"),
            StatementResult::Dropped { table, existed } => {
                if *existed {
                    write!(f, "DROP TABLE {table}")
                } else {
                    write!(f, "DROP TABLE {table} (did not exist)")
                }
            }
            StatementResult::Inserted { table, rows } => write!(f, "INSERT {rows} INTO {table}"),
            StatementResult::Deleted { table, rows } => write!(f, "DELETE {rows} FROM {table}"),
            StatementResult::Updated { table, rows } => write!(f, "UPDATE {rows} IN {table}"),
        }
    }
}

/// Session configuration.
#[derive(Debug, Clone, Copy)]
pub struct SessionOptions {
    /// Route queries through the index registry (on by default; indexes
    /// are refreshed lazily before each indexed query).
    pub use_indexes: bool,
    /// After every indexed query, re-execute on the naive route and fail
    /// on divergence — the end-to-end check that version-based index
    /// invalidation works (used by the test suite and `.verify on`).
    pub verify_indexed: bool,
    /// Rewriting options for `SEQ VT` compilation.
    pub rewrite: RewriteOptions,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            use_indexes: true,
            verify_indexed: false,
            rewrite: RewriteOptions::default(),
        }
    }
}

/// What recovering a database directory found and did (see
/// [`Session::open_durable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint the catalog was loaded from
    /// (`None` when the directory had no valid checkpoint).
    pub checkpoint_seq: Option<u64>,
    /// WAL statements replayed through the execution pipeline on top of
    /// the checkpoint.
    pub replayed: usize,
    /// Bytes of torn/corrupt WAL tail truncated away during recovery.
    pub truncated_bytes: u64,
}

/// A statement-level connection to a [`Database`].
#[derive(Debug, Clone, Default)]
pub struct Session {
    db: Database,
    engine: Engine,
    options: SessionOptions,
}

impl Session {
    /// A session over a database, with default options.
    pub fn new(db: Database) -> Self {
        Session {
            db,
            engine: Engine::new(),
            options: SessionOptions::default(),
        }
    }

    /// A session with explicit options.
    pub fn with_options(db: Database, options: SessionOptions) -> Self {
        Session {
            db,
            engine: Engine::new(),
            options,
        }
    }

    /// Opens a *durable* session on a database directory, recovering
    /// whatever the directory holds: the newest valid checkpoint is
    /// loaded, the WAL tail beyond it is replayed through the ordinary
    /// parse → bind → execute pipeline (a torn or corrupt tail is
    /// truncated to the longest valid prefix first), and from then on
    /// every executed DDL/DML statement is logged before the session
    /// reports it done. An empty or missing directory starts an empty
    /// durable database.
    pub fn open_durable(
        dir: &Path,
        options: SessionOptions,
        persistence: PersistenceOptions,
    ) -> Result<(Session, RecoveryReport), String> {
        let (persistence, recovery) = Persistence::open(dir, persistence)?;
        let db = match recovery.catalog {
            Some(catalog) => Database::from_catalog(catalog),
            None => Database::new(),
        };
        let mut session = Session::with_options(db, options);
        // Replay before attaching the log, so replayed statements are not
        // logged a second time. Records were validated when first
        // executed; a replay failure means the directory does not match
        // this binary's dialect (or was tampered with) — surface it.
        for record in &recovery.replay {
            session
                .execute_statement(
                    &parse_sql_statement(&record.sql).map_err(|e| {
                        format!("WAL replay: cannot parse record {}: {e}", record.lsn)
                    })?,
                )
                .map_err(|e| format!("WAL replay failed at lsn {}: {e}", record.lsn))?;
        }
        session.db.attach_persistence(persistence);
        Ok((
            session,
            RecoveryReport {
                checkpoint_seq: recovery.checkpoint_seq,
                replayed: recovery.replay.len(),
                truncated_bytes: recovery.truncated_bytes,
            },
        ))
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The underlying database, mutably (bulk loads, direct inspection).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The session options.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// The session options, mutably (`.verify on`, pinned join routes...).
    pub fn options_mut(&mut self) -> &mut SessionOptions {
        &mut self.options
    }

    /// Parses and executes one statement. On a durable session (see
    /// [`Session::open_durable`]), a successful DDL/DML statement is
    /// appended to the write-ahead log before this returns.
    pub fn execute(&mut self, sql: &str) -> Result<StatementResult, String> {
        let stmt = parse_sql_statement(sql)?;
        self.apply(&stmt, sql)
    }

    /// Parses and executes a `;`-separated script, stopping at the first
    /// error. The whole script is parsed up front, so a syntax error
    /// anywhere prevents any statement from running; execution errors stop
    /// the script mid-way. Durable sessions log each successful DDL/DML
    /// statement individually.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<StatementResult>, String> {
        let pieces = split_script(sql);
        let mut stmts = Vec::with_capacity(pieces.len());
        for piece in &pieces {
            stmts.push(parse_sql_statement(piece)?);
        }
        let mut out = Vec::with_capacity(stmts.len());
        for (stmt, piece) in stmts.iter().zip(&pieces) {
            out.push(self.apply(stmt, piece)?);
        }
        Ok(out)
    }

    /// Executes one statement and, for successful mutations on a durable
    /// session, logs its text and runs the auto-checkpoint policy.
    fn apply(&mut self, stmt: &SqlStatement, text: &str) -> Result<StatementResult, String> {
        let result = self.execute_statement(stmt)?;
        if !matches!(stmt, SqlStatement::Query(_)) && self.db.is_durable() {
            let clean = text.trim().trim_end_matches(';').trim_end();
            self.db.log_statement(clean)?;
            self.db.auto_checkpoint()?;
        }
        Ok(result)
    }

    /// Executes one parsed statement.
    ///
    /// This is the raw pipeline entry point: it never touches the
    /// write-ahead log (there is no source text to record). Durable
    /// sessions should go through [`Session::execute`] /
    /// [`Session::execute_script`]; mutations applied here are captured
    /// on disk only at the next checkpoint.
    pub fn execute_statement(&mut self, stmt: &SqlStatement) -> Result<StatementResult, String> {
        match stmt {
            SqlStatement::Query(q) => Ok(StatementResult::Rows(self.run_query(q)?)),
            SqlStatement::CreateTable {
                name,
                columns,
                period,
            } => self.create_table(name, columns, period.as_ref()),
            SqlStatement::DropTable { name, if_exists } => {
                let existed = self.db.drop_table(name);
                if !existed && !if_exists {
                    return Err(format!("unknown table '{name}'"));
                }
                Ok(StatementResult::Dropped {
                    table: name.clone(),
                    existed,
                })
            }
            SqlStatement::Insert { table, source } => self.insert(table, source),
            SqlStatement::Delete {
                table,
                where_clause,
            } => self.delete(table, where_clause.as_ref()),
            SqlStatement::Update {
                table,
                assignments,
                where_clause,
            } => self.update(table, assignments, where_clause.as_ref()),
        }
    }

    /// Compiles a query statement to its physical plan without executing it
    /// (the `.explain` entry point).
    pub fn compile(&self, sql: &str) -> Result<Plan, String> {
        let stmt = parse_sql_statement(sql)?;
        let SqlStatement::Query(q) = stmt else {
            return Err("only query statements have plans to explain".into());
        };
        self.compile_query(&q)
    }

    fn compile_query(&self, stmt: &Statement) -> Result<Plan, String> {
        let catalog = self.db.catalog();
        let bound = bind_statement(stmt, catalog)?;
        let compiler = SnapshotCompiler::with_options(infer_domain(catalog), self.options.rewrite);
        compiler.compile_statement(&bound, catalog)
    }

    fn run_query(&mut self, stmt: &Statement) -> Result<Table, String> {
        let plan = self.compile_query(stmt)?;
        if !self.options.use_indexes {
            return self.engine.execute(&plan, self.db.catalog());
        }
        self.db.refresh_indexes(&plan.referenced_tables());
        let indexed = self
            .engine
            .execute_indexed(&plan, self.db.catalog(), self.db.indexes())?;
        if self.options.verify_indexed {
            let naive = self.engine.execute(&plan, self.db.catalog())?;
            if naive.canonicalized() != indexed.canonicalized() {
                return Err(format!(
                    "indexed and naive results diverge: {} vs {} rows — index invalidation bug",
                    indexed.len(),
                    naive.len()
                ));
            }
        }
        Ok(indexed)
    }

    fn create_table(
        &mut self,
        name: &str,
        columns: &[ColumnDef],
        period: Option<&(String, String)>,
    ) -> Result<StatementResult, String> {
        let schema = Schema::new(
            columns
                .iter()
                .map(|c| Column::new(c.name.clone(), c.ty))
                .collect(),
        );
        let period = period
            .map(|(b, e)| Ok::<_, String>((schema.resolve(None, b)?, schema.resolve(None, e)?)))
            .transpose()?;
        self.db.create_table(name, schema, period)?;
        Ok(StatementResult::Created {
            table: name.to_string(),
        })
    }

    fn insert(&mut self, table: &str, source: &InsertSource) -> Result<StatementResult, String> {
        let rows = match source {
            InsertSource::Values(value_rows) => {
                // Constant rows: bind against the empty schema (so stray
                // column references are rejected) and evaluate.
                let empty = Schema::default();
                let mut rows = Vec::with_capacity(value_rows.len());
                for exprs in value_rows {
                    let mut values = Vec::with_capacity(exprs.len());
                    for ast in exprs {
                        let e = bind_scalar_expr(ast, &empty)?;
                        values.push(eval_expr(&e, &Row::default()));
                    }
                    rows.push(Row::new(values));
                }
                rows
            }
            InsertSource::Query(q) => self.run_query(q)?.rows().to_vec(),
        };
        let n = self.db.insert_rows(table, rows)?;
        Ok(StatementResult::Inserted {
            table: table.to_string(),
            rows: n,
        })
    }

    /// Binds an optional WHERE clause against the table's schema (columns
    /// resolvable bare or qualified by the table name) and checks it is
    /// boolean. `None` means "all rows".
    fn bind_where(
        &self,
        table: &str,
        where_clause: Option<&AstExpr>,
    ) -> Result<(Schema, Option<algebra::Expr>), String> {
        let stored = self
            .db
            .catalog()
            .get(table)
            .ok_or_else(|| format!("unknown table '{table}'"))?;
        let schema = stored.schema().with_qualifier(table);
        let pred = where_clause
            .map(|ast| {
                let e = bind_scalar_expr(ast, &schema)?;
                if e.infer_type(&schema)? != SqlType::Bool {
                    return Err("WHERE predicate must be boolean".into());
                }
                Ok::<_, String>(e)
            })
            .transpose()?;
        Ok((schema, pred))
    }

    fn delete(
        &mut self,
        table: &str,
        where_clause: Option<&AstExpr>,
    ) -> Result<StatementResult, String> {
        let (_, pred) = self.bind_where(table, where_clause)?;
        let rows = self.db.delete_where(table, |r| {
            pred.as_ref().is_none_or(|p| eval_predicate(p, r))
        })?;
        Ok(StatementResult::Deleted {
            table: table.to_string(),
            rows,
        })
    }

    fn update(
        &mut self,
        table: &str,
        assignments: &[(String, AstExpr)],
        where_clause: Option<&AstExpr>,
    ) -> Result<StatementResult, String> {
        let (schema, pred) = self.bind_where(table, where_clause)?;
        let mut bound: Vec<(usize, algebra::Expr)> = Vec::with_capacity(assignments.len());
        for (col, ast) in assignments {
            let idx = schema.resolve(None, col)?;
            bound.push((idx, bind_scalar_expr(ast, &schema)?));
        }
        let matches = |r: &Row| pred.as_ref().is_none_or(|p| eval_predicate(p, r));
        // One pass: evaluate the assignments and conform each replacement to
        // the schema; `Table::update_where` folds in the arity/period check
        // and applies atomically (any error leaves the table untouched).
        let stored_schema = self
            .db
            .catalog()
            .get(table)
            .expect("bound above")
            .schema()
            .clone();
        let rows = self.db.update_where(table, matches, |r| {
            let mut values = r.values().to_vec();
            for (idx, e) in &bound {
                values[*idx] = eval_expr(e, r);
            }
            conform_row(&stored_schema, Row::new(values))
        })?;
        Ok(StatementResult::Updated {
            table: table.to_string(),
            rows,
        })
    }
}
